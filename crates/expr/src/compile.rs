//! Compilation of [`BoundExpr`] trees into flat bytecode (DESIGN.md D11).
//!
//! [`CompiledExpr::compile`] lowers a bound expression into a stack-based
//! program evaluated by a tight loop, applying three optimizations the
//! tree-walking interpreter cannot:
//!
//! 1. **Constant folding** — any field-free subtree (literal arithmetic,
//!    `BETWEEN` bounds, function calls over constants) is evaluated once
//!    at compile time and replaced by a single `Const`. If the constant
//!    evaluation would *error*, the subtree is kept as code so the error
//!    surfaces at runtime exactly as the interpreter would raise it.
//! 2. **Conjunct reordering** — the top-level `AND` chain is split into
//!    blocks; within each maximal run of adjacent *infallible* blocks,
//!    cheap blocks (numeric comparisons) are moved before expensive ones
//!    (`LIKE`, function calls). Blocks that can raise errors are
//!    immovable barriers, so error precedence is bit-identical to the
//!    interpreter. [`CompiledExpr::resequence`] optionally re-sorts runs
//!    by observed pass rate (most selective first).
//! 3. **Allocation-free evaluation** — operands are `Cow<'_, Value>`
//!    borrowing from the record and the constant pool; comparisons and
//!    `LIKE` never clone strings; the operand stack lives in a fixed
//!    inline buffer (heap fallback only for pathologically deep
//!    expressions); constant `LIKE` patterns are pre-classified
//!    ([`LikePattern`]). The numeric-predicate path performs **zero**
//!    heap allocation per event (asserted by `tests/alloc_free.rs`).
//!
//! Semantics are defined by the interpreter ([`crate::eval`]): both
//! engines share the same helper functions (`three_and`, `three_cmp`,
//! `arith`, …) and a differential proptest (`tests/prop_compiled.rs`)
//! asserts value-and-error agreement on random trees × records.
//!
//! Global compile statistics (`evdb_expr_compiled_total`, fold counters)
//! are exported via [`compiler_stats`] and bridged into the obs registry
//! by the server, per the D9 no-silent-caps rule.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use evdb_types::{Error, Record, Result, Value};

use crate::ast::{BinaryOp, UnaryOp};
use crate::bind::BoundExpr;
use crate::eval::{
    arith, like_values, neg_value, not_value, three_and, three_cmp, three_negate, three_or, NULL,
};
use crate::functions::Function;
use crate::like::LikePattern;

/// Operand-stack slots held inline (no heap) during evaluation. Small
/// on purpose: the array is initialized per `eval`, and after peephole
/// fusion almost every predicate runs in a handful of slots — deeper
/// programs take the heap-allocated fallback.
const INLINE_STACK: usize = 8;

/// Minimum observations before feedback outranks the static cost model.
const FEEDBACK_MIN_EVALS: u64 = 64;

// ---- global compile statistics (D9: no silent behavior) ----------------

static COMPILED_TOTAL: AtomicU64 = AtomicU64::new(0);
static FOLDED_SUBTREES_TOTAL: AtomicU64 = AtomicU64::new(0);
static FOLDED_NODES_TOTAL: AtomicU64 = AtomicU64::new(0);
static LIKE_PRECOMPILED_TOTAL: AtomicU64 = AtomicU64::new(0);
static BATCHES_TOTAL: AtomicU64 = AtomicU64::new(0);
static BATCHED_RECORDS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Snapshot of process-wide compiler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompilerStats {
    /// Expressions compiled since process start.
    pub compiled_total: u64,
    /// Constant subtrees replaced by a single `Const`.
    pub folded_subtrees: u64,
    /// Tree nodes eliminated by folding.
    pub folded_nodes: u64,
    /// Constant LIKE patterns pre-classified into shape matchers.
    pub like_precompiled: u64,
}

/// Read the process-wide compiler statistics.
pub fn compiler_stats() -> CompilerStats {
    CompilerStats {
        compiled_total: COMPILED_TOTAL.load(Ordering::Relaxed),
        folded_subtrees: FOLDED_SUBTREES_TOTAL.load(Ordering::Relaxed),
        folded_nodes: FOLDED_NODES_TOTAL.load(Ordering::Relaxed),
        like_precompiled: LIKE_PRECOMPILED_TOTAL.load(Ordering::Relaxed),
    }
}

/// Process-wide batch-evaluation counters: `(batches, records)` pushed
/// through [`CompiledExpr::eval_batch`]. Bridged into the obs registry
/// as `evdb_expr_batches_total` (D9: batched work is still counted).
pub fn batch_stats() -> (u64, u64) {
    (
        BATCHES_TOTAL.load(Ordering::Relaxed),
        BATCHED_RECORDS_TOTAL.load(Ordering::Relaxed),
    )
}

/// Per-compile folding statistics (for tests and introspection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Constant subtrees folded in this compile.
    pub folded_subtrees: u64,
    /// Nodes eliminated in this compile.
    pub folded_nodes: u64,
    /// Constant LIKE patterns precompiled in this compile.
    pub like_precompiled: u64,
}

// ---- instruction set ---------------------------------------------------

/// One bytecode instruction. Jump targets are absolute instruction
/// indices within the owning block.
#[derive(Debug)]
enum Inst {
    /// Push constant-pool entry (borrowed).
    Const(u32),
    /// Push record field (borrowed; `NULL` if absent).
    Field(u32),
    /// Kleene NOT on the top slot.
    Not,
    /// Checked numeric negation of the top slot.
    Neg,
    /// Replace top with `IS [NOT] NULL` test.
    IsNull { negated: bool },
    /// Pop two, push three-valued comparison.
    Cmp(BinaryOp),
    /// Pop two, push checked arithmetic.
    Arith(BinaryOp),
    /// Pop two, push Kleene AND.
    And,
    /// Pop two, push Kleene OR.
    Or,
    /// Peek: jump if top is FALSE (value stays).
    JumpIfFalse(u32),
    /// Peek: jump if top is TRUE (value stays).
    JumpIfTrue(u32),
    /// Peek: jump if top is NULL (value stays).
    JumpIfNull(u32),
    /// Unconditional jump.
    Jump(u32),
    /// Discard the top slot.
    Pop,
    /// Pop high, low, value; push `[NOT] BETWEEN` result.
    Between { negated: bool },
    /// Pop pattern, value; push `[NOT] LIKE` result.
    Like { negated: bool },
    /// Pop value; push match against a precompiled constant pattern.
    /// `pat` indexes the pattern text in the const pool (error messages).
    LikeConst {
        pat: u32,
        matcher: LikePattern,
        negated: bool,
    },
    /// Pop `argc` arguments, call, push result.
    Call {
        func: &'static Function,
        argc: u32,
    },
    /// Pop condition; jump unless it is TRUE (searched CASE).
    BranchNotTrue(u32),
    /// Pop WHEN value; peek scrutinee below; jump unless equal
    /// (operand CASE; a NULL scrutinee matches nothing).
    CaseNeJump(u32),
    /// IN-list item test. Stack is `[v, saw_null, item]`: pop item; if
    /// item is NULL set `saw_null`; if it equals `v`, replace all three
    /// with the hit result and jump to `target`.
    InCmp { negated: bool, target: u32 },
    /// Pop `saw_null` and `v`; push the IN-list miss result.
    InFinish { negated: bool },
    /// Fused `field ⋈ const`: no operand-stack traffic (peephole;
    /// straight-line blocks only).
    FieldCmpConst {
        field: u32,
        konst: u32,
        op: BinaryOp,
    },
    /// Fused `field [NOT] BETWEEN const AND const` (peephole).
    FieldBetweenConst {
        field: u32,
        lo: u32,
        hi: u32,
        negated: bool,
    },
}

impl Inst {
    /// Static cost estimate (relative units) for conjunct ordering.
    fn cost(&self) -> u32 {
        match self {
            Inst::Const(_) | Inst::Field(_) => 1,
            Inst::Not | Inst::Neg | Inst::IsNull { .. } => 1,
            Inst::Cmp(_) | Inst::And | Inst::Or => 1,
            Inst::Arith(_) => 2,
            Inst::Jump(_)
            | Inst::JumpIfFalse(_)
            | Inst::JumpIfTrue(_)
            | Inst::JumpIfNull(_)
            | Inst::Pop
            | Inst::BranchNotTrue(_)
            | Inst::CaseNeJump(_) => 1,
            Inst::Between { .. } => 2,
            Inst::FieldCmpConst { .. } => 1,
            Inst::FieldBetweenConst { .. } => 2,
            Inst::InCmp { .. } | Inst::InFinish { .. } => 2,
            Inst::LikeConst { matcher, .. } => {
                if matcher.is_specialized() {
                    6
                } else {
                    8
                }
            }
            Inst::Like { .. } => 10,
            Inst::Call { .. } => 12,
        }
    }

    /// Can this instruction raise an [`Error`] on a record that conforms
    /// to the schema the expression was bound against? (Comparisons and
    /// LIKE are made infallible by bind-time type checking; arithmetic
    /// and negation can overflow; `abs`/`round`/`substr` can reject
    /// runtime values.)
    fn fallible(&self) -> bool {
        match self {
            Inst::Neg | Inst::Arith(_) => true,
            Inst::Call { func, .. } => matches!(func.name, "abs" | "round" | "substr"),
            _ => false,
        }
    }
}

/// Mirror a comparison so its operands can swap sides:
/// `c ⋈ f  ≡  f ⋈⁻¹ c`. `sql_cmp` is antisymmetric and NULL/incomparable
/// handling is side-symmetric, so the mirrored form is equivalent.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other, // Eq / Ne are symmetric
    }
}

/// Fuse `Field/Const + Cmp` and `Field + two Consts + Between` into
/// single stack-free instructions. Straight-line blocks only: rewriting
/// indices under a jump would corrupt its target, so any block with
/// control flow is left as emitted. Stack discipline guarantees the
/// matched prefix instructions are exactly the fused operation's
/// operands (each push is consumed by the adjacent pop).
fn peephole(insts: &mut Vec<Inst>) {
    if has_control_flow(insts) {
        return;
    }
    let mut out: Vec<Inst> = Vec::with_capacity(insts.len());
    for inst in insts.drain(..) {
        out.push(inst);
        let n = out.len();
        let fused = match &out[..] {
            [.., Inst::Field(f), Inst::Const(k), Inst::Cmp(op)] => Some((
                3,
                Inst::FieldCmpConst {
                    field: *f,
                    konst: *k,
                    op: *op,
                },
            )),
            [.., Inst::Const(k), Inst::Field(f), Inst::Cmp(op)] => Some((
                3,
                Inst::FieldCmpConst {
                    field: *f,
                    konst: *k,
                    op: mirror(*op),
                },
            )),
            [.., Inst::Field(f), Inst::Const(a), Inst::Const(b), Inst::Between { negated }] => {
                Some((
                    4,
                    Inst::FieldBetweenConst {
                        field: *f,
                        lo: *a,
                        hi: *b,
                        negated: *negated,
                    },
                ))
            }
            _ => None,
        };
        if let Some((width, fused)) = fused {
            out.truncate(n - width);
            out.push(fused);
        }
    }
    *insts = out;
}

/// Does the block contain any pc-manipulating instruction? Such blocks
/// cannot be peephole-fused (targets would shift) and take the
/// record-at-a-time fallback in [`CompiledExpr::eval_batch`] (records
/// diverge at a branch, so there is no common instruction stream to
/// amortize).
fn has_control_flow(insts: &[Inst]) -> bool {
    insts.iter().any(|i| {
        matches!(
            i,
            Inst::Jump(_)
                | Inst::JumpIfFalse(_)
                | Inst::JumpIfTrue(_)
                | Inst::JumpIfNull(_)
                | Inst::BranchNotTrue(_)
                | Inst::CaseNeJump(_)
                | Inst::InCmp { .. }
        )
    })
}

// ---- program structure -------------------------------------------------

/// One top-level AND conjunct, compiled to straight-line bytecode.
#[derive(Debug)]
struct Block {
    insts: Vec<Inst>,
    /// Static cost estimate.
    cost: u32,
    /// Reorder-run id: blocks may be permuted only within a run.
    run: u32,
    /// Operand-stack depth this block needs.
    max_stack: usize,
    /// No control flow: eligible for the vectorized batch interpreter.
    straight: bool,
    /// Feedback: times evaluated.
    evals: AtomicU64,
    /// Feedback: times the result was not FALSE.
    passes: AtomicU64,
}

/// A bound expression lowered to bytecode, ready for repeated evaluation.
///
/// Construction never fails: compilation is a semantics-preserving
/// lowering, and anything it cannot optimize it emits as-is.
#[derive(Debug)]
pub struct CompiledExpr {
    consts: Vec<Value>,
    /// Blocks in execution order (post-reordering).
    blocks: Vec<Block>,
    /// Max operand-stack depth over all blocks.
    max_stack: usize,
    /// Per-compile folding statistics.
    fold: FoldStats,
    /// When set, `matches` records per-block pass rates for
    /// [`CompiledExpr::resequence`].
    feedback: AtomicBool,
}

impl CompiledExpr {
    /// Lower `expr` to bytecode. Infallible; semantics are preserved
    /// exactly (see module docs and DESIGN.md D11).
    pub fn compile(expr: &BoundExpr) -> CompiledExpr {
        let empty = Record::empty();
        let mut consts = Vec::new();
        let mut fold = FoldStats::default();

        let mut conjuncts = Vec::new();
        flatten_and(expr, &mut conjuncts);

        let mut blocks: Vec<Block> = conjuncts
            .iter()
            .map(|c| {
                let mut cg = Codegen {
                    consts: &mut consts,
                    insts: Vec::new(),
                    depth: 0,
                    max_depth: 0,
                    fold: &mut fold,
                    empty: &empty,
                };
                cg.compile(c);
                debug_assert_eq!(cg.depth, 1, "block must leave exactly one value");
                peephole(&mut cg.insts);
                let cost = cg.insts.iter().map(Inst::cost).sum();
                let max_stack = cg.max_depth;
                let straight = !has_control_flow(&cg.insts);
                Block {
                    insts: cg.insts,
                    cost,
                    run: 0,
                    max_stack,
                    straight,
                    evals: AtomicU64::new(0),
                    passes: AtomicU64::new(0),
                }
            })
            .collect();

        // Assign reorder runs: each fallible block is its own run
        // (immovable barrier); maximal stretches of adjacent infallible
        // blocks share a run and may be permuted within it.
        let mut run = 0u32;
        let mut in_infallible_run = false;
        for b in &mut blocks {
            let fallible = b.insts.iter().any(Inst::fallible);
            if fallible {
                if in_infallible_run {
                    run += 1;
                }
                b.run = run;
                run += 1;
                in_infallible_run = false;
            } else {
                if !in_infallible_run {
                    in_infallible_run = true;
                }
                b.run = run;
            }
        }
        // Cheapest first within each run (stable: ties keep source order).
        blocks.sort_by_key(|b| (b.run, b.cost));

        let max_stack = blocks.iter().map(|b| b.max_stack).max().unwrap_or(0);

        COMPILED_TOTAL.fetch_add(1, Ordering::Relaxed);
        FOLDED_SUBTREES_TOTAL.fetch_add(fold.folded_subtrees, Ordering::Relaxed);
        FOLDED_NODES_TOTAL.fetch_add(fold.folded_nodes, Ordering::Relaxed);
        LIKE_PRECOMPILED_TOTAL.fetch_add(fold.like_precompiled, Ordering::Relaxed);

        CompiledExpr {
            consts,
            blocks,
            max_stack,
            fold,
            feedback: AtomicBool::new(false),
        }
    }

    /// Evaluate against one record.
    pub fn eval(&self, record: &Record) -> Result<Value> {
        self.eval_ref(record).map(Cow::into_owned)
    }

    /// Evaluate as a predicate: `NULL` and `FALSE` are both "no match".
    pub fn matches(&self, record: &Record) -> Result<bool> {
        Ok(self.eval_ref(record)?.as_bool().unwrap_or(false))
    }

    /// Folding statistics for this compile.
    pub fn fold_stats(&self) -> FoldStats {
        self.fold
    }

    /// Number of top-level conjunct blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// True if no block contains arithmetic or function-call
    /// instructions (used by fold regression tests: folded constant
    /// subtrees leave no residual computation).
    pub fn is_computation_free(&self) -> bool {
        self.blocks.iter().all(|b| {
            b.insts
                .iter()
                .all(|i| !matches!(i, Inst::Arith(_) | Inst::Neg | Inst::Call { .. }))
        })
    }

    /// Enable per-block pass-rate recording in [`CompiledExpr::matches`]
    /// (two relaxed atomic increments per block per event).
    pub fn enable_feedback(&self) {
        self.feedback.store(true, Ordering::Relaxed);
    }

    /// Re-sort blocks within each reorder run by observed pass rate,
    /// most selective (lowest pass rate) first. Blocks with fewer than
    /// a minimum number of observations keep their static-cost order.
    /// No-op without prior [`CompiledExpr::enable_feedback`] traffic.
    pub fn resequence(&mut self) {
        self.blocks.sort_by(|a, b| {
            a.run.cmp(&b.run).then_with(|| {
                let ra = pass_rate(a);
                let rb = pass_rate(b);
                match (ra, rb) {
                    (Some(x), Some(y)) => x.total_cmp(&y),
                    // Unobserved blocks keep cost order after observed ones.
                    (Some(_), None) => std::cmp::Ordering::Less,
                    (None, Some(_)) => std::cmp::Ordering::Greater,
                    (None, None) => a.cost.cmp(&b.cost),
                }
            })
        });
    }

    /// Per-block `(evals, passes)` feedback counters, in execution order.
    pub fn block_feedback(&self) -> Vec<(u64, u64)> {
        self.blocks
            .iter()
            .map(|b| {
                (
                    b.evals.load(Ordering::Relaxed),
                    b.passes.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    fn eval_ref<'s>(&'s self, record: &'s Record) -> Result<Cow<'s, Value>> {
        if self.max_stack <= INLINE_STACK {
            let mut stack: [Cow<'s, Value>; INLINE_STACK] =
                std::array::from_fn(|_| Cow::Borrowed(&NULL));
            self.eval_blocks(record, &mut stack)
        } else {
            let mut stack: Vec<Cow<'s, Value>> =
                (0..self.max_stack).map(|_| Cow::Borrowed(&NULL)).collect();
            self.eval_blocks(record, &mut stack)
        }
    }

    fn eval_blocks<'s>(
        &'s self,
        record: &'s Record,
        stack: &mut [Cow<'s, Value>],
    ) -> Result<Cow<'s, Value>> {
        let feedback = self.feedback.load(Ordering::Relaxed);
        let mut acc: Option<Cow<'s, Value>> = None;
        for block in &self.blocks {
            let v = self.run_block(block, record, stack)?;
            if feedback {
                block.evals.fetch_add(1, Ordering::Relaxed);
                if v.as_bool() != Some(false) {
                    block.passes.fetch_add(1, Ordering::Relaxed);
                }
            }
            acc = Some(match acc {
                None => v,
                Some(a) => Cow::Owned(three_and(&a, &v)),
            });
            // Kleene AND short-circuits on FALSE only — identical to the
            // interpreter's left-fold over the original conjunct order
            // (see D11 for the reordering-safety argument).
            if acc.as_deref().and_then(Value::as_bool) == Some(false) {
                break;
            }
        }
        Ok(acc.unwrap_or(Cow::Borrowed(&NULL)))
    }

    fn run_block<'s>(
        &'s self,
        block: &'s Block,
        record: &'s Record,
        stack: &mut [Cow<'s, Value>],
    ) -> Result<Cow<'s, Value>> {
        let insts = &block.insts;
        let mut pc = 0usize;
        let mut sp = 0usize;
        while pc < insts.len() {
            match &insts[pc] {
                Inst::Const(i) => {
                    stack[sp] = Cow::Borrowed(&self.consts[*i as usize]);
                    sp += 1;
                }
                Inst::Field(i) => {
                    stack[sp] = Cow::Borrowed(record.get(*i as usize).unwrap_or(&NULL));
                    sp += 1;
                }
                Inst::Not => {
                    let v = not_value(&stack[sp - 1])?;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::Neg => {
                    let v = neg_value(&stack[sp - 1])?;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::IsNull { negated } => {
                    let b = stack[sp - 1].is_null() != *negated;
                    stack[sp - 1] = Cow::Owned(Value::Bool(b));
                }
                Inst::Cmp(op) => {
                    let v = three_cmp(&stack[sp - 2], &stack[sp - 1], *op)?;
                    sp -= 1;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::Arith(op) => {
                    let v = arith(*op, &stack[sp - 2], &stack[sp - 1])?;
                    sp -= 1;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::And => {
                    let v = three_and(&stack[sp - 2], &stack[sp - 1]);
                    sp -= 1;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::Or => {
                    let v = three_or(&stack[sp - 2], &stack[sp - 1]);
                    sp -= 1;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::JumpIfFalse(t) => {
                    if stack[sp - 1].as_bool() == Some(false) {
                        pc = *t as usize;
                        continue;
                    }
                }
                Inst::JumpIfTrue(t) => {
                    if stack[sp - 1].as_bool() == Some(true) {
                        pc = *t as usize;
                        continue;
                    }
                }
                Inst::JumpIfNull(t) => {
                    if stack[sp - 1].is_null() {
                        pc = *t as usize;
                        continue;
                    }
                }
                Inst::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Inst::Pop => {
                    sp -= 1;
                }
                Inst::Between { negated } => {
                    // Stack: [v, lo, hi]; evaluation order (v ≥ lo first)
                    // matches the interpreter.
                    let ge = three_cmp(&stack[sp - 3], &stack[sp - 2], BinaryOp::Ge)?;
                    let le = three_cmp(&stack[sp - 3], &stack[sp - 1], BinaryOp::Le)?;
                    let both = three_and(&ge, &le);
                    let out = three_negate(&both, *negated);
                    sp -= 2;
                    stack[sp - 1] = Cow::Owned(out);
                }
                Inst::Like { negated } => {
                    let v = like_values(&stack[sp - 2], &stack[sp - 1], *negated)?;
                    sp -= 1;
                    stack[sp - 1] = Cow::Owned(v);
                }
                Inst::LikeConst {
                    pat,
                    matcher,
                    negated,
                } => {
                    let out = match stack[sp - 1].as_str() {
                        Some(s) => Value::Bool(matcher.matches(s) != *negated),
                        None if stack[sp - 1].is_null() => Value::Null,
                        None => {
                            return Err(Error::Type(format!(
                                "LIKE applied to {} / {}",
                                &*stack[sp - 1],
                                &self.consts[*pat as usize]
                            )))
                        }
                    };
                    stack[sp - 1] = Cow::Owned(out);
                }
                Inst::Call { func, argc } => {
                    let argc = *argc as usize;
                    // Function implementations take owned `&[Value]`;
                    // cloning here is a refcount bump for strings and a
                    // copy for scalars. The scratch vec is per-thread and
                    // reused, so steady state allocates nothing.
                    let v = ARG_SCRATCH.with(|cell| {
                        let mut scratch = cell.borrow_mut();
                        scratch.clear();
                        for slot in &stack[sp - argc..sp] {
                            scratch.push((**slot).clone());
                        }
                        (func.call)(&scratch)
                    })?;
                    sp -= argc;
                    stack[sp] = Cow::Owned(v);
                    sp += 1;
                }
                Inst::BranchNotTrue(t) => {
                    sp -= 1;
                    if stack[sp].as_bool() != Some(true) {
                        pc = *t as usize;
                        continue;
                    }
                }
                Inst::CaseNeJump(t) => {
                    // Stack: [.., scrutinee, when]; NULL scrutinee never
                    // matches (sql_cmp yields None).
                    let eq = matches!(
                        stack[sp - 2].sql_cmp(&stack[sp - 1]),
                        Some(std::cmp::Ordering::Equal)
                    );
                    sp -= 1;
                    if !eq {
                        pc = *t as usize;
                        continue;
                    }
                }
                Inst::InCmp { negated, target } => {
                    // Stack: [v, saw_null, item].
                    if stack[sp - 1].is_null() {
                        stack[sp - 2] = Cow::Owned(Value::Bool(true));
                        sp -= 1;
                    } else if matches!(
                        stack[sp - 3].sql_cmp(&stack[sp - 1]),
                        Some(std::cmp::Ordering::Equal)
                    ) {
                        sp -= 3;
                        stack[sp] = Cow::Owned(Value::Bool(!*negated));
                        sp += 1;
                        pc = *target as usize;
                        continue;
                    } else {
                        sp -= 1;
                    }
                }
                Inst::FieldCmpConst { field, konst, op } => {
                    let v = record.get(*field as usize).unwrap_or(&NULL);
                    let out = three_cmp(v, &self.consts[*konst as usize], *op)?;
                    stack[sp] = Cow::Owned(out);
                    sp += 1;
                }
                Inst::FieldBetweenConst {
                    field,
                    lo,
                    hi,
                    negated,
                } => {
                    // Same evaluation order as `Between`: v ≥ lo, then
                    // v ≤ hi, then Kleene AND and optional negation.
                    let v = record.get(*field as usize).unwrap_or(&NULL);
                    let ge = three_cmp(v, &self.consts[*lo as usize], BinaryOp::Ge)?;
                    let le = three_cmp(v, &self.consts[*hi as usize], BinaryOp::Le)?;
                    let out = three_negate(&three_and(&ge, &le), *negated);
                    stack[sp] = Cow::Owned(out);
                    sp += 1;
                }
                Inst::InFinish { negated } => {
                    // Stack: [v, saw_null].
                    let saw = stack[sp - 1].as_bool() == Some(true);
                    sp -= 2;
                    stack[sp] = Cow::Owned(if saw { Value::Null } else { Value::Bool(*negated) });
                    sp += 1;
                }
            }
            pc += 1;
        }
        debug_assert_eq!(sp, 1, "block left {sp} values");
        sp -= 1;
        Ok(std::mem::replace(&mut stack[sp], Cow::Borrowed(&NULL)))
    }

    /// Evaluate this expression over a whole batch of records in one
    /// pass (DESIGN.md D15).
    ///
    /// Block-at-a-time with a **selection vector**: each bytecode block
    /// runs over every still-live record before the next block starts,
    /// so the per-instruction dispatch cost is paid once per block per
    /// batch instead of once per instruction per record. Records whose
    /// conjunction accumulator becomes definite `FALSE` (or whose block
    /// errored) drop out of the selection, exactly mirroring the
    /// short-circuit in per-event evaluation. Blocks with control flow
    /// (CASE, IN) diverge per record and take a record-at-a-time
    /// fallback through [`run_block`](Self::run_block) — semantics, not
    /// speed, are the invariant there.
    ///
    /// `out[i]` is byte-identical to `self.eval(get(&items[i]))` for
    /// every `i` — same values, same 3VL, same error and error order —
    /// which `tests/prop_batch_eval.rs` asserts differentially. Operand
    /// slots hold owned [`Value`]s (scalar copies; `Arc` bumps for
    /// strings), so `scratch` is reusable across batches of any
    /// lifetime and the steady state allocates nothing per event
    /// (asserted by `tests/alloc_free.rs`).
    pub fn eval_batch<'s, T, F>(
        &'s self,
        items: &'s [T],
        get: F,
        scratch: &mut BatchScratch,
        out: &mut Vec<Result<Value>>,
    ) where
        F: Fn(&'s T) -> &'s Record,
    {
        let n = items.len();
        out.clear();
        out.extend((0..n).map(|_| Ok(Value::Null)));
        if n == 0 {
            return;
        }
        BATCHES_TOTAL.fetch_add(1, Ordering::Relaxed);
        BATCHED_RECORDS_TOTAL.fetch_add(n as u64, Ordering::Relaxed);

        let mut live = std::mem::take(&mut scratch.live);
        let mut next = std::mem::take(&mut scratch.next);
        let mut acc = std::mem::take(&mut scratch.acc);
        let mut stack = std::mem::take(&mut scratch.stack);
        let mut dead = std::mem::take(&mut scratch.dead);
        live.clear();
        live.extend(0..n as u32);
        acc.clear();
        acc.resize(n, Value::Null);

        let feedback = self.feedback.load(Ordering::Relaxed);
        // Fallback operand stack for control-flow blocks; one (lazy)
        // allocation per call, shared by every record in the batch.
        let mut cow_stack: Vec<Cow<'s, Value>> = Vec::new();

        for (bi, block) in self.blocks.iter().enumerate() {
            if live.is_empty() {
                break;
            }
            let nlive = live.len();
            dead.clear();
            dead.resize(nlive, false);
            // Result slot for live position `p` is `stack[p * stride]`.
            // The stack grows but is never cleared: straight-line
            // discipline writes every slot before reading it, so stale
            // values from earlier batches are unobservable (and bounded
            // by the largest batch seen).
            let stride = if block.straight {
                let stride = block.max_stack.max(1);
                let need = nlive * stride;
                if stack.len() < need {
                    stack.resize(need, Value::Null);
                }
                self.run_block_batch(block, items, &get, &live, &mut dead, &mut stack, stride, out);
                stride
            } else {
                if cow_stack.len() < self.max_stack {
                    cow_stack.resize(self.max_stack, Cow::Borrowed(&NULL));
                }
                if stack.len() < nlive {
                    stack.resize(nlive, Value::Null);
                }
                for (p, &ri) in live.iter().enumerate() {
                    let record = get(&items[ri as usize]);
                    match self.run_block(block, record, &mut cow_stack) {
                        Ok(v) => stack[p] = v.into_owned(),
                        Err(e) => {
                            dead[p] = true;
                            out[ri as usize] = Err(e);
                        }
                    }
                }
                1
            };

            // Fold block results into the conjunction accumulator; the
            // Kleene AND short-circuits on FALSE only, as in
            // `eval_blocks`.
            let mut evals = 0u64;
            let mut passes = 0u64;
            next.clear();
            for (p, &ri) in live.iter().enumerate() {
                if dead[p] {
                    continue;
                }
                let v = std::mem::replace(&mut stack[p * stride], Value::Null);
                evals += 1;
                if v.as_bool() != Some(false) {
                    passes += 1;
                }
                let ri = ri as usize;
                let a = if bi == 0 { v } else { three_and(&acc[ri], &v) };
                if a.as_bool() == Some(false) {
                    out[ri] = Ok(a);
                } else {
                    acc[ri] = a;
                    next.push(ri as u32);
                }
            }
            if feedback {
                block.evals.fetch_add(evals, Ordering::Relaxed);
                block.passes.fetch_add(passes, Ordering::Relaxed);
            }
            std::mem::swap(&mut live, &mut next);
        }
        for &ri in &live {
            let ri = ri as usize;
            out[ri] = Ok(std::mem::replace(&mut acc[ri], Value::Null));
        }

        scratch.live = live;
        scratch.next = next;
        scratch.acc = acc;
        scratch.stack = stack;
        scratch.dead = dead;
    }

    /// Predicate form of [`eval_batch`](Self::eval_batch): `out[i]`
    /// matches `self.matches(get(&items[i]))` exactly, and
    /// [`BatchScratch::selection`] afterwards holds the indices of
    /// matching records (the selection vector downstream stages iterate
    /// instead of re-touching every record).
    pub fn matches_batch<'s, T, F>(
        &'s self,
        items: &'s [T],
        get: F,
        scratch: &mut BatchScratch,
        out: &mut Vec<Result<bool>>,
    ) where
        F: Fn(&'s T) -> &'s Record,
    {
        let mut vals = std::mem::take(&mut scratch.vals);
        self.eval_batch(items, get, scratch, &mut vals);
        out.clear();
        scratch.sel.clear();
        for (i, r) in vals.drain(..).enumerate() {
            out.push(match r {
                Ok(v) => {
                    let hit = v.as_bool().unwrap_or(false);
                    if hit {
                        scratch.sel.push(i as u32);
                    }
                    Ok(hit)
                }
                Err(e) => Err(e),
            });
        }
        scratch.vals = vals;
    }

    /// The vectorized interpreter for a straight-line block: one match
    /// per instruction, then a tight loop over the live records — the
    /// dispatch amortization the batch path exists for. Stack discipline
    /// is uniform across records (no branches), so a single `sp` serves
    /// the whole batch; a record that errors mid-block is marked dead
    /// and skipped by the remaining instructions (its error is already
    /// in `out`, at exactly the instruction per-event evaluation would
    /// have raised it).
    #[allow(clippy::too_many_arguments)]
    fn run_block_batch<'s, T, F>(
        &'s self,
        block: &Block,
        items: &'s [T],
        get: &F,
        live: &[u32],
        dead: &mut [bool],
        stack: &mut [Value],
        stride: usize,
        out: &mut [Result<Value>],
    ) where
        F: Fn(&'s T) -> &'s Record,
    {
        /// Iterate live, non-dead records: `$p` is the live position
        /// (stack base `$p * stride`), `$ri` the batch index.
        macro_rules! each {
            (|$p:ident, $ri:ident| $body:expr) => {
                for ($p, &$ri) in live.iter().enumerate() {
                    if dead[$p] {
                        continue;
                    }
                    let $ri = $ri as usize;
                    $body
                }
            };
        }
        /// Fold a fallible per-record result into the stack slot `$dst`,
        /// killing the record on error.
        macro_rules! fallible {
            ($p:ident, $ri:ident, $dst:expr, $res:expr) => {
                match $res {
                    Ok(v) => $dst = v,
                    Err(e) => {
                        dead[$p] = true;
                        out[$ri] = Err(e);
                    }
                }
            };
        }
        let mut sp = 0usize;
        for inst in &block.insts {
            match inst {
                Inst::Const(i) => {
                    let c = &self.consts[*i as usize];
                    each!(|p, _ri| stack[p * stride + sp] = c.clone());
                    sp += 1;
                }
                Inst::Field(i) => {
                    each!(|p, ri| {
                        let record = get(&items[ri]);
                        stack[p * stride + sp] =
                            record.get(*i as usize).cloned().unwrap_or(Value::Null);
                    });
                    sp += 1;
                }
                Inst::Not => {
                    each!(|p, ri| {
                        let b = p * stride;
                        fallible!(p, ri, stack[b + sp - 1], not_value(&stack[b + sp - 1]));
                    });
                }
                Inst::Neg => {
                    each!(|p, ri| {
                        let b = p * stride;
                        fallible!(p, ri, stack[b + sp - 1], neg_value(&stack[b + sp - 1]));
                    });
                }
                Inst::IsNull { negated } => {
                    each!(|p, _ri| {
                        let b = p * stride;
                        stack[b + sp - 1] = Value::Bool(stack[b + sp - 1].is_null() != *negated);
                    });
                }
                Inst::Cmp(op) => {
                    each!(|p, ri| {
                        let b = p * stride;
                        fallible!(
                            p,
                            ri,
                            stack[b + sp - 2],
                            three_cmp(&stack[b + sp - 2], &stack[b + sp - 1], *op)
                        );
                    });
                    sp -= 1;
                }
                Inst::Arith(op) => {
                    each!(|p, ri| {
                        let b = p * stride;
                        fallible!(
                            p,
                            ri,
                            stack[b + sp - 2],
                            arith(*op, &stack[b + sp - 2], &stack[b + sp - 1])
                        );
                    });
                    sp -= 1;
                }
                Inst::And => {
                    each!(|p, _ri| {
                        let b = p * stride;
                        stack[b + sp - 2] = three_and(&stack[b + sp - 2], &stack[b + sp - 1]);
                    });
                    sp -= 1;
                }
                Inst::Or => {
                    each!(|p, _ri| {
                        let b = p * stride;
                        stack[b + sp - 2] = three_or(&stack[b + sp - 2], &stack[b + sp - 1]);
                    });
                    sp -= 1;
                }
                Inst::Pop => {
                    sp -= 1;
                }
                Inst::Between { negated } => {
                    // Same evaluation order as `run_block`: v ≥ lo first,
                    // so an error there masks one in v ≤ hi.
                    each!(|p, ri| {
                        let b = p * stride;
                        let ge = three_cmp(&stack[b + sp - 3], &stack[b + sp - 2], BinaryOp::Ge);
                        match ge {
                            Ok(ge) => {
                                let le =
                                    three_cmp(&stack[b + sp - 3], &stack[b + sp - 1], BinaryOp::Le);
                                fallible!(
                                    p,
                                    ri,
                                    stack[b + sp - 3],
                                    le.map(|le| three_negate(&three_and(&ge, &le), *negated))
                                );
                            }
                            Err(e) => {
                                dead[p] = true;
                                out[ri] = Err(e);
                            }
                        }
                    });
                    sp -= 2;
                }
                Inst::Like { negated } => {
                    each!(|p, ri| {
                        let b = p * stride;
                        fallible!(
                            p,
                            ri,
                            stack[b + sp - 2],
                            like_values(&stack[b + sp - 2], &stack[b + sp - 1], *negated)
                        );
                    });
                    sp -= 1;
                }
                Inst::LikeConst {
                    pat,
                    matcher,
                    negated,
                } => {
                    each!(|p, ri| {
                        let b = p * stride;
                        let slot = &mut stack[b + sp - 1];
                        match slot.as_str() {
                            Some(s) => *slot = Value::Bool(matcher.matches(s) != *negated),
                            None if slot.is_null() => *slot = Value::Null,
                            None => {
                                dead[p] = true;
                                out[ri] = Err(Error::Type(format!(
                                    "LIKE applied to {} / {}",
                                    slot, &self.consts[*pat as usize]
                                )));
                            }
                        }
                    });
                }
                Inst::Call { func, argc } => {
                    let argc = *argc as usize;
                    each!(|p, ri| {
                        let b = p * stride;
                        let res = ARG_SCRATCH.with(|cell| {
                            let mut arg_scratch = cell.borrow_mut();
                            arg_scratch.clear();
                            arg_scratch.extend_from_slice(&stack[b + sp - argc..b + sp]);
                            (func.call)(&arg_scratch)
                        });
                        fallible!(p, ri, stack[b + sp - argc], res);
                    });
                    sp -= argc;
                    sp += 1;
                }
                Inst::InFinish { negated } => {
                    each!(|p, _ri| {
                        let b = p * stride;
                        let saw = stack[b + sp - 1].as_bool() == Some(true);
                        stack[b + sp - 2] =
                            if saw { Value::Null } else { Value::Bool(*negated) };
                    });
                    sp -= 1;
                }
                Inst::FieldCmpConst { field, konst, op } => {
                    let konst = &self.consts[*konst as usize];
                    // Numeric constants take a typed path: the constant's
                    // type is dispatched once per batch, so the loop
                    // compares scalars directly. Promotions mirror
                    // `Value::sql_cmp` exactly; anything non-numeric and
                    // non-null falls back to `three_cmp` for identical
                    // error text.
                    match NumConst::of(konst) {
                        Some(k) => {
                            each!(|p, ri| {
                                let record = get(&items[ri]);
                                let v = record.get(*field as usize).unwrap_or(&NULL);
                                match k.cmp_value(v) {
                                    Some(ord) => {
                                        stack[p * stride + sp] = Value::Bool(ord_holds(ord, *op));
                                    }
                                    None if v.is_null() => {
                                        stack[p * stride + sp] = Value::Null;
                                    }
                                    None => fallible!(
                                        p,
                                        ri,
                                        stack[p * stride + sp],
                                        three_cmp(v, konst, *op)
                                    ),
                                }
                            });
                        }
                        None => {
                            each!(|p, ri| {
                                let record = get(&items[ri]);
                                let v = record.get(*field as usize).unwrap_or(&NULL);
                                fallible!(p, ri, stack[p * stride + sp], three_cmp(v, konst, *op));
                            });
                        }
                    }
                    sp += 1;
                }
                Inst::FieldBetweenConst {
                    field,
                    lo,
                    hi,
                    negated,
                } => {
                    let lo = &self.consts[*lo as usize];
                    let hi = &self.consts[*hi as usize];
                    // Both bounds numeric → typed path (see FieldCmpConst);
                    // a null value stays NULL, a non-numeric one falls
                    // back for the exact per-event error (v ≥ lo raises
                    // first, masking v ≤ hi, as in `run_block`).
                    match (NumConst::of(lo), NumConst::of(hi)) {
                        (Some(klo), Some(khi)) => {
                            each!(|p, ri| {
                                let record = get(&items[ri]);
                                let v = record.get(*field as usize).unwrap_or(&NULL);
                                match (klo.cmp_value(v), khi.cmp_value(v)) {
                                    (Some(ge), Some(le)) => {
                                        let inside = ge != std::cmp::Ordering::Less
                                            && le != std::cmp::Ordering::Greater;
                                        stack[p * stride + sp] =
                                            Value::Bool(inside != *negated);
                                    }
                                    _ if v.is_null() => {
                                        stack[p * stride + sp] = Value::Null;
                                    }
                                    _ => {
                                        let e = three_cmp(v, lo, BinaryOp::Ge)
                                            .expect_err("non-numeric non-null vs numeric");
                                        dead[p] = true;
                                        out[ri] = Err(e);
                                    }
                                }
                            });
                        }
                        _ => {
                            each!(|p, ri| {
                                let record = get(&items[ri]);
                                let v = record.get(*field as usize).unwrap_or(&NULL);
                                match three_cmp(v, lo, BinaryOp::Ge) {
                                    Ok(ge) => fallible!(
                                        p,
                                        ri,
                                        stack[p * stride + sp],
                                        three_cmp(v, hi, BinaryOp::Le)
                                            .map(|le| three_negate(&three_and(&ge, &le), *negated))
                                    ),
                                    Err(e) => {
                                        dead[p] = true;
                                        out[ri] = Err(e);
                                    }
                                }
                            });
                        }
                    }
                    sp += 1;
                }
                Inst::Jump(_)
                | Inst::JumpIfFalse(_)
                | Inst::JumpIfTrue(_)
                | Inst::JumpIfNull(_)
                | Inst::BranchNotTrue(_)
                | Inst::CaseNeJump(_)
                | Inst::InCmp { .. } => {
                    unreachable!("control flow in straight-line block")
                }
            }
        }
        debug_assert_eq!(sp, 1, "block left {sp} values");
    }
}

/// A numeric constant with its type dispatched once per batch, so the
/// per-record loops of `FieldCmpConst` / `FieldBetweenConst` compare
/// scalars without re-matching the constant's variant.
#[derive(Clone, Copy)]
enum NumConst {
    I(i64),
    F(f64),
}

impl NumConst {
    #[inline]
    fn of(v: &Value) -> Option<NumConst> {
        match v {
            Value::Int(k) => Some(NumConst::I(*k)),
            Value::Float(k) => Some(NumConst::F(*k)),
            _ => None,
        }
    }

    /// `v` compared to the constant (`v ⋄ k`), with the same numeric
    /// promotions as [`Value::sql_cmp`]; `None` for anything non-numeric.
    #[inline]
    fn cmp_value(self, v: &Value) -> Option<std::cmp::Ordering> {
        match (v, self) {
            (Value::Int(x), NumConst::I(k)) => Some(x.cmp(&k)),
            (Value::Int(x), NumConst::F(k)) => Some((*x as f64).total_cmp(&k)),
            (Value::Float(x), NumConst::I(k)) => Some(x.total_cmp(&(k as f64))),
            (Value::Float(x), NumConst::F(k)) => Some(x.total_cmp(&k)),
            _ => None,
        }
    }
}

/// Does `ord` satisfy `op`? Mirrors the comparison table in `three_cmp`.
#[inline]
fn ord_holds(ord: std::cmp::Ordering, op: BinaryOp) -> bool {
    match op {
        BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
        BinaryOp::Ne => ord != std::cmp::Ordering::Equal,
        BinaryOp::Lt => ord == std::cmp::Ordering::Less,
        BinaryOp::Le => ord != std::cmp::Ordering::Greater,
        BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
        BinaryOp::Ge => ord != std::cmp::Ordering::Less,
        _ => unreachable!("non-comparison op in FieldCmpConst"),
    }
}

/// Reusable per-thread state for [`CompiledExpr::eval_batch`]: operand
/// stacks, selection vectors and the conjunction accumulator. Holding
/// one per evaluating thread and reusing it across batches keeps the
/// batch path allocation-free per event in the steady state.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Record-major operand stacks (live position `p` at `p * stride`).
    stack: Vec<Value>,
    /// Selection vector: batch indices still live.
    live: Vec<u32>,
    /// Selection vector under construction for the next block.
    next: Vec<u32>,
    /// Per-live-position "errored in this block" flags.
    dead: Vec<bool>,
    /// Per-batch-index conjunction accumulator.
    acc: Vec<Value>,
    /// Matching indices from the last `matches_batch` call.
    sel: Vec<u32>,
    /// Value-result buffer backing `matches_batch`.
    vals: Vec<Result<Value>>,
}

impl BatchScratch {
    /// Fresh scratch (all buffers empty; they grow to batch size on
    /// first use and are reused afterwards).
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Indices of matching records from the last
    /// [`CompiledExpr::matches_batch`] call, in record order.
    pub fn selection(&self) -> &[u32] {
        &self.sel
    }
}

thread_local! {
    /// Reusable argument buffer for `Inst::Call`.
    static ARG_SCRATCH: std::cell::RefCell<Vec<Value>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn pass_rate(b: &Block) -> Option<f64> {
    let evals = b.evals.load(Ordering::Relaxed);
    if evals < FEEDBACK_MIN_EVALS {
        return None;
    }
    Some(b.passes.load(Ordering::Relaxed) as f64 / evals as f64)
}

/// Split nested top-level ANDs into a conjunct list (left-to-right).
fn flatten_and<'e>(e: &'e BoundExpr, out: &mut Vec<&'e BoundExpr>) {
    match e {
        BoundExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(other),
    }
}

/// Is the subtree free of field references (and therefore constant)?
fn is_const(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Literal(_) => true,
        BoundExpr::Field(_) => false,
        BoundExpr::Unary { expr, .. } => is_const(expr),
        BoundExpr::Binary { left, right, .. } => is_const(left) && is_const(right),
        BoundExpr::IsNull { expr, .. } => is_const(expr),
        BoundExpr::Between {
            expr, low, high, ..
        } => is_const(expr) && is_const(low) && is_const(high),
        BoundExpr::InList { expr, list, .. } => is_const(expr) && list.iter().all(is_const),
        BoundExpr::Like { expr, pattern, .. } => is_const(expr) && is_const(pattern),
        BoundExpr::Func { args, .. } => args.iter().all(is_const),
        BoundExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().map(is_const).unwrap_or(true)
                && branches.iter().all(|(w, t)| is_const(w) && is_const(t))
                && else_expr.as_deref().map(is_const).unwrap_or(true)
        }
    }
}

/// Number of nodes in a subtree (fold accounting).
fn node_count(e: &BoundExpr) -> u64 {
    match e {
        BoundExpr::Literal(_) | BoundExpr::Field(_) => 1,
        BoundExpr::Unary { expr, .. } | BoundExpr::IsNull { expr, .. } => 1 + node_count(expr),
        BoundExpr::Binary { left, right, .. } => 1 + node_count(left) + node_count(right),
        BoundExpr::Between {
            expr, low, high, ..
        } => 1 + node_count(expr) + node_count(low) + node_count(high),
        BoundExpr::InList { expr, list, .. } => {
            1 + node_count(expr) + list.iter().map(node_count).sum::<u64>()
        }
        BoundExpr::Like { expr, pattern, .. } => 1 + node_count(expr) + node_count(pattern),
        BoundExpr::Func { args, .. } => 1 + args.iter().map(node_count).sum::<u64>(),
        BoundExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            1 + operand.as_deref().map(node_count).unwrap_or(0)
                + branches
                    .iter()
                    .map(|(w, t)| node_count(w) + node_count(t))
                    .sum::<u64>()
                + else_expr.as_deref().map(node_count).unwrap_or(0)
        }
    }
}

// ---- code generation ---------------------------------------------------

struct Codegen<'c> {
    consts: &'c mut Vec<Value>,
    insts: Vec<Inst>,
    /// Current operand-stack depth at this point in the program.
    depth: usize,
    max_depth: usize,
    fold: &'c mut FoldStats,
    /// Empty record for compile-time constant evaluation.
    empty: &'c Record,
}

impl Codegen<'_> {
    fn emit(&mut self, inst: Inst, pops: usize, pushes: usize) {
        debug_assert!(self.depth >= pops, "stack underflow in codegen");
        self.depth = self.depth - pops + pushes;
        self.max_depth = self.max_depth.max(self.depth);
        self.insts.push(inst);
    }

    /// Emit a placeholder jump; returns the index to patch.
    fn emit_jump(&mut self, make: fn(u32) -> Inst, pops: usize) -> usize {
        self.emit(make(u32::MAX), pops, 0);
        self.insts.len() - 1
    }

    /// Point the placeholder at `idx` to the next instruction.
    fn patch(&mut self, idx: usize) {
        let target = self.insts.len() as u32;
        match &mut self.insts[idx] {
            Inst::Jump(t)
            | Inst::JumpIfFalse(t)
            | Inst::JumpIfTrue(t)
            | Inst::JumpIfNull(t)
            | Inst::BranchNotTrue(t)
            | Inst::CaseNeJump(t)
            | Inst::InCmp { target: t, .. } => *t = target,
            other => unreachable!("patch of non-jump {other:?}"),
        }
    }

    fn intern(&mut self, v: Value) -> u32 {
        // Small pools; linear dedup is fine and keeps NaN literals
        // (which are never equal to themselves) as separate entries.
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn emit_const(&mut self, v: Value) {
        let i = self.intern(v);
        self.emit(Inst::Const(i), 0, 1);
    }

    /// Try to fold a field-free subtree into a single constant. Errors
    /// at compile time keep the subtree as code so they are raised at
    /// runtime by the interpreter-identical instruction sequence.
    fn try_fold(&mut self, e: &BoundExpr) -> bool {
        if matches!(e, BoundExpr::Literal(_)) || !is_const(e) {
            return false;
        }
        match e.eval(self.empty) {
            Ok(v) => {
                self.fold.folded_subtrees += 1;
                self.fold.folded_nodes += node_count(e).saturating_sub(1);
                self.emit_const(v);
                true
            }
            Err(_) => false,
        }
    }

    fn compile(&mut self, e: &BoundExpr) {
        if self.try_fold(e) {
            return;
        }
        match e {
            BoundExpr::Literal(v) => self.emit_const(v.clone()),
            BoundExpr::Field(i) => self.emit(Inst::Field(*i as u32), 0, 1),
            BoundExpr::Unary { op, expr } => {
                self.compile(expr);
                match op {
                    UnaryOp::Not => self.emit(Inst::Not, 1, 1),
                    UnaryOp::Neg => self.emit(Inst::Neg, 1, 1),
                }
            }
            BoundExpr::Binary { op, left, right } => match op {
                BinaryOp::And => {
                    self.compile(left);
                    let j = self.emit_jump(Inst::JumpIfFalse, 0);
                    self.compile(right);
                    self.emit(Inst::And, 2, 1);
                    self.patch(j);
                }
                BinaryOp::Or => {
                    self.compile(left);
                    let j = self.emit_jump(Inst::JumpIfTrue, 0);
                    self.compile(right);
                    self.emit(Inst::Or, 2, 1);
                    self.patch(j);
                }
                _ if op.is_comparison() => {
                    self.compile(left);
                    self.compile(right);
                    self.emit(Inst::Cmp(*op), 2, 1);
                }
                _ => {
                    self.compile(left);
                    self.compile(right);
                    self.emit(Inst::Arith(*op), 2, 1);
                }
            },
            BoundExpr::IsNull { expr, negated } => {
                self.compile(expr);
                self.emit(Inst::IsNull { negated: *negated }, 1, 1);
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.compile(expr);
                self.compile(low);
                self.compile(high);
                self.emit(Inst::Between { negated: *negated }, 3, 1);
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                self.compile(expr);
                // A NULL tested value yields NULL without evaluating any
                // list item (it is already on the stack as the result).
                let j_null = self.emit_jump(Inst::JumpIfNull, 0);
                self.emit_const(Value::Bool(false)); // saw_null flag
                let mut hits = Vec::with_capacity(list.len());
                for item in list {
                    self.compile(item);
                    // Net effect on the fallthrough path: pop the item.
                    self.emit(
                        Inst::InCmp {
                            negated: *negated,
                            target: u32::MAX,
                        },
                        1,
                        0,
                    );
                    hits.push(self.insts.len() - 1);
                }
                self.emit(Inst::InFinish { negated: *negated }, 2, 1);
                for h in hits {
                    self.patch(h);
                }
                self.patch(j_null);
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.compile(expr);
                let const_pat = if is_const(pattern) {
                    pattern.eval(self.empty).ok()
                } else {
                    None
                };
                match const_pat {
                    Some(Value::Str(s)) => {
                        let matcher = LikePattern::new(&s);
                        let pat = self.intern(Value::Str(s));
                        self.fold.like_precompiled += 1;
                        self.emit(
                            Inst::LikeConst {
                                pat,
                                matcher,
                                negated: *negated,
                            },
                            1,
                            1,
                        );
                    }
                    // Non-string constant patterns (e.g. NULL) and
                    // dynamic patterns take the generic two-operand path,
                    // which reproduces interpreter NULL/error behavior.
                    _ => {
                        self.compile(pattern);
                        self.emit(Inst::Like { negated: *negated }, 2, 1);
                    }
                }
            }
            BoundExpr::Func { func, args } => {
                for a in args {
                    self.compile(a);
                }
                self.emit(
                    Inst::Call {
                        func,
                        argc: args.len() as u32,
                    },
                    args.len(),
                    1,
                );
            }
            BoundExpr::Case {
                operand,
                branches,
                else_expr,
            } => match operand {
                None => {
                    // Searched CASE.
                    let base = self.depth;
                    let mut ends = Vec::with_capacity(branches.len());
                    for (w, t) in branches {
                        self.compile(w);
                        let j_next = self.emit_jump(Inst::BranchNotTrue, 1);
                        self.compile(t);
                        ends.push(self.emit_jump(Inst::Jump, 0));
                        self.patch(j_next);
                        self.depth = base; // branch-not-taken path
                    }
                    match else_expr {
                        Some(e) => self.compile(e),
                        None => self.emit_const(Value::Null),
                    }
                    for j in ends {
                        self.patch(j);
                    }
                    self.depth = base + 1;
                }
                Some(op) => {
                    // Operand CASE: scrutinee stays on the stack until a
                    // branch matches or the else arm runs.
                    self.compile(op);
                    let base = self.depth; // includes the scrutinee
                    let mut ends = Vec::with_capacity(branches.len());
                    for (w, t) in branches {
                        self.compile(w);
                        let j_next = self.emit_jump(Inst::CaseNeJump, 1);
                        self.emit(Inst::Pop, 1, 0); // drop the scrutinee
                        self.compile(t);
                        ends.push(self.emit_jump(Inst::Jump, 0));
                        self.patch(j_next);
                        self.depth = base; // not-taken: scrutinee remains
                    }
                    self.emit(Inst::Pop, 1, 0);
                    match else_expr {
                        Some(e) => self.compile(e),
                        None => self.emit_const(Value::Null),
                    }
                    for j in ends {
                        self.patch(j);
                    }
                    self.depth = base; // one result slot replaces scrutinee
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use evdb_types::{DataType, FieldDef, Schema};

    fn schema() -> std::sync::Arc<Schema> {
        Schema::new(vec![
            FieldDef::nullable("a", DataType::Int),
            FieldDef::nullable("f", DataType::Float),
            FieldDef::nullable("s", DataType::Str),
            FieldDef::nullable("b", DataType::Bool),
        ])
        .unwrap()
    }

    fn compile(src: &str) -> (BoundExpr, CompiledExpr) {
        let bound = parse(src).unwrap().bind(&schema()).unwrap();
        let compiled = CompiledExpr::compile(&bound);
        (bound, compiled)
    }

    fn record(a: i64, s: &str) -> Record {
        Record::from_iter([
            Value::Int(a),
            Value::Float(a as f64 / 2.0),
            Value::from(s),
            Value::Bool(a % 2 == 0),
        ])
    }

    fn assert_agree(src: &str, rec: &Record) {
        let (bound, compiled) = compile(src);
        let i = bound.eval(rec);
        let c = compiled.eval(rec);
        match (&i, &c) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "value mismatch for {src}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "error mismatch for {src}")
            }
            _ => panic!("divergence for {src}: interp={i:?} compiled={c:?}"),
        }
    }

    #[test]
    fn agrees_with_interpreter_on_fixtures() {
        let exprs = [
            "a + 1",
            "a * 2 - f",
            "a / 0",
            "a % 0",
            "-a",
            "NOT b",
            "a > 5",
            "a > 5 AND s LIKE 'ab%'",
            "a > 5 OR s LIKE 'zz%'",
            "a BETWEEN 2 AND 8",
            "a NOT BETWEEN 2 AND 8",
            "a IN (1, 2, 3)",
            "a NOT IN (1, 2, 3)",
            "a IN (1, NULL, 3)",
            "s LIKE '%b%'",
            "s NOT LIKE '_x%'",
            "s LIKE NULL",
            "s IS NULL",
            "s IS NOT NULL",
            "upper(s) = 'ABC'",
            "length(s) + a",
            "coalesce(NULL, a, 99)",
            "CASE WHEN a > 5 THEN 'big' ELSE 'small' END",
            "CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END",
            "CASE WHEN a > 100 THEN 1 END",
            "a > 1 AND a > 2 AND a > 3 AND s LIKE 'a%'",
            "(a > 1 OR b) AND (f < 100 OR s = 'x')",
            "abs(a - 10) < 3",
            "a BETWEEN 1 + 1 AND 10 * 2",
        ];
        let records = [
            record(1, "abc"),
            record(6, "abx"),
            record(10, "zzz"),
            Record::from_iter([Value::Null, Value::Null, Value::Null, Value::Null]),
        ];
        for src in exprs {
            for rec in &records {
                assert_agree(src, rec);
            }
        }
    }

    #[test]
    fn agrees_on_errors() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let rec = Record::from_iter([Value::Int(i64::MAX)]);
        for src in ["a + 1", "a * 2", "-(-a - 1)", "abs(a) + a"] {
            let bound = parse(src).unwrap().bind(&schema).unwrap();
            let compiled = CompiledExpr::compile(&bound);
            let i = bound.eval(&rec).unwrap_err().to_string();
            let c = compiled.eval(&rec).unwrap_err().to_string();
            assert_eq!(i, c, "error mismatch for {src}");
        }
    }

    #[test]
    fn folds_constant_subtrees() {
        let (_, c) = compile("a BETWEEN 1 + 1 AND 10 * 2");
        assert!(c.is_computation_free(), "BETWEEN bounds must fold");
        assert_eq!(c.fold_stats().folded_subtrees, 2);
        // upper('x') is field-free: folds to a constant.
        let (_, c) = compile("s = upper('x')");
        assert!(c.is_computation_free());
        // A fully constant predicate folds to a single Const.
        let (_, c) = compile("1 + 2 = 3");
        assert_eq!(c.inst_count(), 1);
    }

    #[test]
    fn erroring_constants_stay_as_code() {
        // 9223372036854775807 + 1 overflows; folding must not hide the
        // error nor raise it at compile time.
        let (bound, c) = compile("a > 0 AND 9223372036854775807 + 1 > 0");
        assert!(!c.is_computation_free());
        let rec = record(1, "x");
        assert_eq!(
            bound.eval(&rec).unwrap_err().to_string(),
            c.eval(&rec).unwrap_err().to_string()
        );
        // …and short-circuit still applies when the first conjunct fails.
        let rec0 = record(-1, "x");
        assert_eq!(bound.eval(&rec0).unwrap(), c.eval(&rec0).unwrap());
        assert_eq!(c.eval(&rec0).unwrap(), Value::Bool(false));
    }

    #[test]
    fn like_patterns_precompile() {
        let (_, c) = compile("s LIKE 'ab%'");
        assert_eq!(c.fold_stats().like_precompiled, 1);
        // Dynamic pattern: no precompile.
        let (_, c) = compile("s LIKE s");
        assert_eq!(c.fold_stats().like_precompiled, 0);
    }

    #[test]
    fn reorders_cheap_conjuncts_first() {
        // LIKE conjunct written first must still run after the cheap
        // numeric comparison (both infallible → same run).
        let (_, c) = compile("s LIKE '%needle%' AND a > 5");
        c.enable_feedback();
        // A record failing the numeric test must never evaluate LIKE.
        for _ in 0..10 {
            assert!(!c.matches(&record(1, "haystack")).unwrap());
        }
        let fb = c.block_feedback();
        assert_eq!(fb.len(), 2);
        assert_eq!(fb[0], (10, 0), "cheap numeric block runs first");
        assert_eq!(fb[1], (0, 0), "LIKE block short-circuited away");
    }

    #[test]
    fn fallible_conjuncts_are_barriers() {
        // `a + 1 > 0` can overflow ⇒ must not move relative to others.
        let (bound, c) = compile("a + 1 > 0 AND s LIKE 'x%'");
        let rec = Record::from_iter([
            Value::Int(i64::MAX),
            Value::Null,
            Value::from("xy"),
            Value::Null,
        ]);
        assert_eq!(
            bound.eval(&rec).unwrap_err().to_string(),
            c.eval(&rec).unwrap_err().to_string()
        );
    }

    #[test]
    fn resequence_uses_observed_pass_rates() {
        // Two cheap comparisons, equal static cost: feedback flips order.
        let (_, mut c) = compile("a < 100 AND a > 5");
        c.enable_feedback();
        // a<100 passes always, a>5 fails always → a>5 is more selective.
        for i in 0..100 {
            let _ = c.matches(&record(i % 5, "x"));
        }
        c.resequence();
        let fb = c.block_feedback();
        // After resequence the most selective block is first.
        let first_pass_rate = fb[0].1 as f64 / fb[0].0 as f64;
        let second_pass_rate = fb[1].1 as f64 / fb[1].0 as f64;
        assert!(first_pass_rate <= second_pass_rate);
    }

    #[test]
    fn matches_and_stats() {
        let before = compiler_stats();
        let (_, c) = compile("a > 5 AND s LIKE 'ab%'");
        let after = compiler_stats();
        assert_eq!(after.compiled_total, before.compiled_total + 1);
        assert!(after.like_precompiled > before.like_precompiled);
        assert!(c.matches(&record(6, "abx")).unwrap());
        assert!(!c.matches(&record(6, "zzz")).unwrap());
        assert!(!c.matches(&record(1, "abx")).unwrap());
        // NULL predicate is a non-match.
        let nulls = Record::from_iter([Value::Null, Value::Null, Value::Null, Value::Null]);
        assert!(!c.matches(&nulls).unwrap());
    }

    #[test]
    fn deep_expressions_use_heap_stack() {
        // Build a right-nested arithmetic chain deeper than the inline
        // stack: a + (1 + (2 + (…))).
        let mut src = String::from("a");
        for _ in 0..40 {
            src = format!("a + ({src})");
        }
        let (bound, c) = compile(&src);
        let rec = record(3, "x");
        assert_eq!(bound.eval(&rec).unwrap(), c.eval(&rec).unwrap());
    }

    #[test]
    fn compiled_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledExpr>();
    }

    #[test]
    fn peephole_fuses_field_const_patterns() {
        let s = schema();
        // Each conjunct collapses to a single fused instruction:
        // FieldCmpConst ×2 (one mirrored) + FieldBetweenConst.
        let bound = parse("a > 10 AND 5 < a AND a BETWEEN 1 AND 9")
            .unwrap()
            .bind_predicate(&s)
            .unwrap();
        let c = CompiledExpr::compile(&bound);
        assert_eq!(c.block_count(), 3);
        assert_eq!(c.inst_count(), 3, "expected full fusion, got {c:?}");
        // Fused and unfused programs agree, including on NULL.
        for v in [Value::Int(7), Value::Int(11), Value::Int(3), Value::Null] {
            let r = Record::new(vec![
                v,
                Value::Float(0.0),
                Value::from(""),
                Value::Bool(false),
            ]);
            assert_eq!(c.matches(&r).unwrap(), bound.matches(&r).unwrap());
        }
        // Control flow disables fusion (jump targets must stay valid).
        let ored = parse("a > 10 OR a < 2").unwrap().bind_predicate(&s).unwrap();
        assert!(CompiledExpr::compile(&ored).inst_count() > 3);
    }

    #[test]
    fn non_boolean_projection_exprs_compile() {
        let (bound, c) = compile("a * 2 + length(s)");
        let rec = record(4, "abc");
        assert_eq!(bound.eval(&rec).unwrap(), c.eval(&rec).unwrap());
        assert_eq!(c.eval(&rec).unwrap(), Value::Int(11));
    }
}
