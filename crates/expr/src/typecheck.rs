//! Static type checking of expressions against a schema.
//!
//! `infer` returns `Ok(Some(t))` for a well-typed expression of type `t`,
//! `Ok(None)` when the type is unknowable statically (a bare `NULL`
//! literal, or `coalesce(NULL, NULL)`), and `Err` for type errors. The
//! checker is strict about *categories* (you cannot compare a BOOL to an
//! INT) but permissive inside the numeric category (INT and FLOAT mix
//! freely, as the evaluator promotes).

use evdb_types::{DataType, Error, Result, Schema, Value};

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::functions;

/// Infer the result type of `expr` over records of `schema`.
pub fn infer(expr: &Expr, schema: &Schema) -> Result<Option<DataType>> {
    match expr {
        Expr::Literal(v) => Ok(v.data_type()),
        Expr::Field(name) => {
            let f = schema
                .field(name)
                .ok_or_else(|| Error::Type(format!("unknown field '{name}'")))?;
            Ok(Some(f.dtype))
        }
        Expr::Unary { op, expr } => {
            let t = infer(expr, schema)?;
            match op {
                UnaryOp::Not => {
                    expect_category(t, Category::Bool, "NOT")?;
                    Ok(Some(DataType::Bool))
                }
                UnaryOp::Neg => {
                    expect_category(t, Category::Numeric, "unary -")?;
                    Ok(t.or(Some(DataType::Float)))
                }
            }
        }
        Expr::Binary { op, left, right } => {
            let lt = infer(left, schema)?;
            let rt = infer(right, schema)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    expect_category(lt, Category::Bool, op.symbol())?;
                    expect_category(rt, Category::Bool, op.symbol())?;
                    Ok(Some(DataType::Bool))
                }
                _ if op.is_comparison() => {
                    expect_comparable(lt, rt, op.symbol())?;
                    Ok(Some(DataType::Bool))
                }
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                    expect_category(lt, Category::Numeric, op.symbol())?;
                    expect_category(rt, Category::Numeric, op.symbol())?;
                    // INT op INT stays INT except true division.
                    match (lt, rt, op) {
                        (_, _, BinaryOp::Div) => Ok(Some(DataType::Float)),
                        (Some(DataType::Int), Some(DataType::Int), _) => Ok(Some(DataType::Int)),
                        (None, None, _) => Ok(None),
                        _ => Ok(Some(DataType::Float)),
                    }
                }
                _ => unreachable!("comparison handled above"),
            }
        }
        Expr::IsNull { expr, .. } => {
            infer(expr, schema)?; // operand just has to be well-typed
            Ok(Some(DataType::Bool))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            let t = infer(expr, schema)?;
            let lo = infer(low, schema)?;
            let hi = infer(high, schema)?;
            expect_comparable(t, lo, "BETWEEN")?;
            expect_comparable(t, hi, "BETWEEN")?;
            Ok(Some(DataType::Bool))
        }
        Expr::InList { expr, list, .. } => {
            let t = infer(expr, schema)?;
            for e in list {
                let et = infer(e, schema)?;
                expect_comparable(t, et, "IN")?;
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Like { expr, pattern, .. } => {
            let t = infer(expr, schema)?;
            let pt = infer(pattern, schema)?;
            expect_category(t, Category::Str, "LIKE")?;
            expect_category(pt, Category::Str, "LIKE pattern")?;
            Ok(Some(DataType::Bool))
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_ty = match operand {
                Some(o) => Some(infer(o, schema)?),
                None => None,
            };
            let mut result: Option<DataType> = None;
            for (w, t) in branches {
                let wt = infer(w, schema)?;
                match &op_ty {
                    Some(ot) => expect_comparable(*ot, wt, "CASE WHEN")?,
                    None => expect_category(wt, Category::Bool, "CASE WHEN")?,
                }
                let tt = infer(t, schema)?;
                unify_result(&mut result, tt)?;
            }
            if let Some(e) = else_expr {
                let et = infer(e, schema)?;
                unify_result(&mut result, et)?;
            }
            Ok(result)
        }
        Expr::Func { name, args } => {
            let f = functions::lookup(name).ok_or_else(|| {
                Error::Type(format!("unknown function '{name}'"))
            })?;
            if args.len() < f.min_args
                || (f.max_args != usize::MAX && args.len() > f.max_args)
            {
                return Err(Error::Type(format!(
                    "{name} expects {}..{} arguments, got {}",
                    f.min_args,
                    if f.max_args == usize::MAX {
                        "∞".to_string()
                    } else {
                        f.max_args.to_string()
                    },
                    args.len()
                )));
            }
            let arg_types: Vec<Option<DataType>> = args
                .iter()
                .map(|a| infer(a, schema))
                .collect::<Result<_>>()?;
            (f.ret)(&arg_types)
        }
    }
}

/// Require that the full expression is a boolean predicate (rule bodies,
/// WHERE clauses, trigger conditions).
pub fn check_predicate(expr: &Expr, schema: &Schema) -> Result<()> {
    match infer(expr, schema)? {
        Some(DataType::Bool) | None => Ok(()),
        Some(t) => Err(Error::Type(format!(
            "predicate must be BOOL, got {t}: {expr}"
        ))),
    }
}

/// Merge a branch result type into the CASE result type (numerics mix
/// to FLOAT; anything else must agree).
fn unify_result(acc: &mut Option<DataType>, t: Option<DataType>) -> Result<()> {
    match (&acc, t) {
        (_, None) => {}
        (None, Some(d)) => *acc = Some(d),
        (Some(a), Some(d)) if *a == d => {}
        (Some(a), Some(d)) if a.is_numeric() && d.is_numeric() => *acc = Some(DataType::Float),
        (Some(a), Some(d)) => {
            return Err(Error::Type(format!(
                "CASE branches disagree: {a} vs {d}"
            )))
        }
    }
    Ok(())
}

#[derive(Clone, Copy)]
enum Category {
    Bool,
    Numeric,
    Str,
}

fn expect_category(t: Option<DataType>, cat: Category, ctx: &str) -> Result<()> {
    let ok = match (t, cat) {
        (None, _) => true,
        (Some(DataType::Bool), Category::Bool) => true,
        (Some(d), Category::Numeric) if d.is_numeric() => true,
        (Some(DataType::Str), Category::Str) => true,
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(Error::Type(format!(
            "{ctx} applied to {}",
            t.map(|d| d.name()).unwrap_or("NULL")
        )))
    }
}

fn expect_comparable(a: Option<DataType>, b: Option<DataType>, ctx: &str) -> Result<()> {
    match (a, b) {
        (None, _) | (_, None) => Ok(()),
        (Some(x), Some(y)) if x == y => Ok(()),
        (Some(x), Some(y)) if x.is_numeric() && y.is_numeric() => Ok(()),
        (Some(x), Some(y)) => Err(Error::Type(format!(
            "{ctx}: cannot compare {x} with {y}"
        ))),
    }
}

/// Evaluate an expression that references no fields to a constant.
/// Used for constant folding in the analyzer and the CQL planner.
pub fn const_eval(expr: &Expr) -> Option<Value> {
    if !expr.referenced_fields().is_empty() {
        return None;
    }
    let empty_schema = Schema::of(&[]);
    let bound = expr.bind(&empty_schema).ok()?;
    bound.eval(&evdb_types::Record::empty()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::of(&[
            ("qty", DataType::Int),
            ("px", DataType::Float),
            ("sym", DataType::Str),
            ("ok", DataType::Bool),
            ("ts", DataType::Timestamp),
        ])
    }

    fn ty(src: &str) -> Result<Option<DataType>> {
        infer(&parse(src).unwrap(), &schema())
    }

    #[test]
    fn arithmetic_types() {
        assert_eq!(ty("qty + 1").unwrap(), Some(DataType::Int));
        assert_eq!(ty("qty + px").unwrap(), Some(DataType::Float));
        assert_eq!(ty("qty / 2").unwrap(), Some(DataType::Float));
        assert_eq!(ty("-px").unwrap(), Some(DataType::Float));
        assert!(ty("sym + 1").is_err());
        assert!(ty("-sym").is_err());
    }

    #[test]
    fn boolean_types() {
        assert_eq!(ty("ok AND qty > 0").unwrap(), Some(DataType::Bool));
        assert!(ty("qty AND ok").is_err());
        assert!(ty("NOT sym").is_err());
        assert_eq!(ty("NOT ok").unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn comparisons() {
        assert_eq!(ty("qty > px").unwrap(), Some(DataType::Bool));
        assert_eq!(ty("ts >= @100").unwrap(), Some(DataType::Bool));
        assert!(ty("sym = 1").is_err());
        assert!(ty("ok < 1").is_err());
        assert_eq!(ty("sym = NULL").unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn predicates() {
        assert_eq!(ty("qty BETWEEN 1 AND 10").unwrap(), Some(DataType::Bool));
        assert!(ty("qty BETWEEN 'a' AND 10").is_err());
        assert_eq!(ty("sym IN ('a', 'b')").unwrap(), Some(DataType::Bool));
        assert!(ty("sym IN (1, 2)").is_err());
        assert_eq!(ty("sym LIKE 'a%'").unwrap(), Some(DataType::Bool));
        assert!(ty("qty LIKE 'a%'").is_err());
        assert_eq!(ty("px IS NOT NULL").unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn functions_and_unknown_fields() {
        assert_eq!(ty("abs(qty)").unwrap(), Some(DataType::Int));
        assert_eq!(ty("sqrt(qty)").unwrap(), Some(DataType::Float));
        assert!(ty("sqrt(sym)").is_err());
        assert!(ty("nope(1)").is_err());
        assert!(ty("ghost > 1").is_err());
        assert!(ty("substr(sym)").is_err()); // arity
    }

    #[test]
    fn predicate_gate() {
        assert!(check_predicate(&parse("qty > 1").unwrap(), &schema()).is_ok());
        assert!(check_predicate(&parse("qty + 1").unwrap(), &schema()).is_err());
        assert!(check_predicate(&parse("NULL").unwrap(), &schema()).is_ok());
    }

    #[test]
    fn const_folding() {
        assert_eq!(const_eval(&parse("1 + 2 * 3").unwrap()), Some(Value::Int(7)));
        assert_eq!(const_eval(&parse("upper('ab')").unwrap()), Some(Value::from("AB")));
        assert_eq!(const_eval(&parse("qty + 1").unwrap()), None);
    }
}
