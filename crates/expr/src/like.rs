//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run of characters (including empty), `_` matches exactly
//! one character. Matching is performed over Unicode scalar values with the
//! classic greedy two-pointer algorithm — O(n·m) worst case, linear in
//! practice — so no regex engine or per-call allocation is needed.

/// Does `text` match the LIKE `pattern`?
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    // Position to backtrack to: index after the last '%', and the text
    // index where that '%' started absorbing characters.
    let mut star: Option<usize> = None;
    let mut star_t = 0usize;

    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(s) = star {
            // Let the last '%' absorb one more character and retry.
            pi = s + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    // Remaining pattern must be all '%'.
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_empty() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn percent_runs() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello world", "%world"));
        assert!(like_match("hello world", "%o w%"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(!like_match("mississippi", "%iss%xppi"));
    }

    #[test]
    fn underscores() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("caat", "c_t"));
        assert!(like_match("cart", "c__t"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("ab", "___"));
    }

    #[test]
    fn mixed_wildcards_backtracking() {
        assert!(like_match("axbxcxd", "a%x%d"));
        assert!(like_match("abxcd", "ab%_d"));
        assert!(!like_match("abd", "ab%_d")); // '%' then '_' needs ≥1 char before d
        assert!(like_match("a_b", "a_b"));
    }

    #[test]
    fn unicode() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語テキスト", "日本%スト"));
        assert!(!like_match("日本", "日本_"));
    }
}
