//! SQL `LIKE` pattern matching.
//!
//! `%` matches any run of characters (including empty), `_` matches exactly
//! one character. Matching is performed over Unicode scalar values with the
//! classic greedy two-pointer algorithm — O(n·m) worst case, linear in
//! practice. The matcher walks both strings by byte index, decoding one
//! scalar at a time, so there is genuinely no per-call allocation.
//!
//! [`LikePattern`] additionally classifies a *constant* pattern once at
//! compile time into its shape — exact / prefix / suffix / infix — so the
//! common shapes reduce to a single `starts_with` / `ends_with` /
//! `contains` over the candidate text instead of the generic backtracking
//! walk (DESIGN.md D11).

/// Does `text` match the LIKE `pattern`?
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t = text.as_bytes();
    let p = pattern.as_bytes();
    // Byte cursors into text and pattern.
    let (mut ti, mut pi) = (0usize, 0usize);
    // Position to backtrack to: pattern index after the last '%', and the
    // text index where that '%' started absorbing characters.
    let mut star: Option<usize> = None;
    let mut star_t = 0usize;

    while ti < t.len() {
        if pi < p.len() && p[pi] == b'_' {
            ti += char_len(t, ti);
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some(pi + 1);
            star_t = ti;
            pi += 1;
        } else if pi < p.len() && chars_eq(t, ti, p, pi) {
            let n = char_len(t, ti);
            ti += n;
            pi += n;
        } else if let Some(s) = star {
            // Let the last '%' absorb one more character and retry.
            pi = s;
            star_t += char_len(t, star_t);
            ti = star_t;
        } else {
            return false;
        }
    }
    // Remaining pattern must be all '%'.
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

/// Byte length of the UTF-8 scalar starting at `i` (valid UTF-8 assumed).
#[inline]
fn char_len(s: &[u8], i: usize) -> usize {
    match s[i] {
        b if b < 0x80 => 1,
        b if b < 0xE0 => 2,
        b if b < 0xF0 => 3,
        _ => 4,
    }
}

/// Do the scalars starting at `t[ti]` and `p[pi]` match exactly?
#[inline]
fn chars_eq(t: &[u8], ti: usize, p: &[u8], pi: usize) -> bool {
    let n = char_len(t, ti);
    pi + n <= p.len() && t[ti..ti + n] == p[pi..pi + n]
}

/// Shape of a constant LIKE pattern, classified once.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    /// No wildcards: plain equality.
    Exact,
    /// `lit%`.
    Prefix,
    /// `%lit`.
    Suffix,
    /// `%lit%`.
    Infix,
    /// Anything else (`_`, interior `%`…): generic backtracking walk.
    Generic,
}

/// A LIKE pattern parsed once at compile time.
///
/// The common shapes (`IBM%`, `%corp`, `%error%`, exact strings) skip the
/// generic matcher entirely; everything else falls back to [`like_match`]
/// over the stored pattern text — still allocation-free per call.
#[derive(Debug, Clone)]
pub struct LikePattern {
    pattern: Box<str>,
    /// The literal payload for the specialized shapes.
    lit: Box<str>,
    shape: Shape,
}

impl LikePattern {
    /// Classify `pattern` into its matching shape.
    pub fn new(pattern: &str) -> LikePattern {
        let shape = if pattern.contains('_') {
            Shape::Generic
        } else {
            let pct = pattern.bytes().filter(|b| *b == b'%').count();
            let starts = pattern.starts_with('%');
            let ends = pattern.ends_with('%');
            match (pct, starts, ends) {
                (0, _, _) => Shape::Exact,
                (1, false, true) => Shape::Prefix,
                (1, true, false) => Shape::Suffix,
                // "%" alone: prefix match on the empty literal.
                (1, true, true) => Shape::Prefix,
                (2, true, true) if pattern.len() >= 2 => Shape::Infix,
                _ => Shape::Generic,
            }
        };
        let lit = match shape {
            Shape::Exact | Shape::Generic => pattern,
            Shape::Prefix => pattern.trim_end_matches('%'),
            Shape::Suffix => pattern.trim_start_matches('%'),
            Shape::Infix => &pattern[1..pattern.len() - 1],
        };
        LikePattern {
            pattern: pattern.into(),
            lit: lit.into(),
            shape,
        }
    }

    /// Does `text` match this pattern?
    #[inline]
    pub fn matches(&self, text: &str) -> bool {
        match self.shape {
            Shape::Exact => text == &*self.lit,
            Shape::Prefix => text.starts_with(&*self.lit),
            Shape::Suffix => text.ends_with(&*self.lit),
            Shape::Infix => text.contains(&*self.lit),
            Shape::Generic => like_match(text, &self.pattern),
        }
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether this pattern compiled to a specialized (non-generic) shape.
    pub fn is_specialized(&self) -> bool {
        self.shape != Shape::Generic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_empty() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn percent_runs() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello world", "%world"));
        assert!(like_match("hello world", "%o w%"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("mississippi", "%iss%ppi"));
        assert!(!like_match("mississippi", "%iss%xppi"));
    }

    #[test]
    fn underscores() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("caat", "c_t"));
        assert!(like_match("cart", "c__t"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("ab", "___"));
    }

    #[test]
    fn mixed_wildcards_backtracking() {
        assert!(like_match("axbxcxd", "a%x%d"));
        assert!(like_match("abxcd", "ab%_d"));
        assert!(!like_match("abd", "ab%_d")); // '%' then '_' needs ≥1 char before d
        assert!(like_match("a_b", "a_b"));
    }

    #[test]
    fn unicode() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語テキスト", "日本%スト"));
        assert!(!like_match("日本", "日本_"));
        // Multi-byte scalars must not match byte prefixes of each other.
        assert!(!like_match("é", "è"));
        assert!(like_match("naïve", "na_ve"));
    }

    #[test]
    fn precompiled_shapes() {
        let cases = [
            ("IBM", Shape::Exact),
            ("IBM%", Shape::Prefix),
            ("%corp", Shape::Suffix),
            ("%error%", Shape::Infix),
            ("%", Shape::Prefix),
            ("a%b", Shape::Generic),
            ("a_c", Shape::Generic),
            ("%a%b%", Shape::Generic),
            // "%%" reduces to infix search for the empty literal — always
            // true, same as the generic walk.
            ("%%", Shape::Infix),
        ];
        for (pat, want) in cases {
            let p = LikePattern::new(pat);
            assert_eq!(p.shape, want, "shape of {pat:?}");
        }
    }

    /// The precompiled matcher must agree with the generic walk on every
    /// pattern shape × text combination.
    #[test]
    fn precompiled_agrees_with_generic() {
        let patterns = [
            "", "%", "%%", "abc", "abc%", "%abc", "%abc%", "a%c", "a_c", "_bc", "ab_",
            "%iss%ppi", "日本%", "%スト", "h_llo",
        ];
        let texts = [
            "", "abc", "abcd", "xabc", "xabcx", "aXc", "ab", "mississippi", "日本語テキスト",
            "héllo", "abcabc",
        ];
        for pat in patterns {
            let p = LikePattern::new(pat);
            for t in texts {
                assert_eq!(
                    p.matches(t),
                    like_match(t, pat),
                    "pattern {pat:?} text {t:?}"
                );
            }
        }
    }
}
