//! Evaluation of bound expressions with SQL three-valued logic.
//!
//! Conventions:
//!
//! * `NULL` propagates through comparisons, arithmetic and most functions.
//! * `AND`/`OR` short-circuit with Kleene semantics
//!   (`FALSE AND NULL = FALSE`, `TRUE OR NULL = TRUE`).
//! * Integer arithmetic is checked — overflow is an error, not a wrap.
//! * Division by zero and `x % 0` evaluate to `NULL` (one bad event must
//!   not poison a million-event stream; callers treat `NULL` predicates as
//!   non-matches).
//!
//! The tree walker operates on **borrowed** values ([`Cow<Value>`]):
//! field accesses, comparisons, `IS NULL` and `LIKE` never clone record
//! payloads, so this interpreter is an honest differential-testing oracle
//! for the compiled engine ([`crate::compile`]) rather than a clone-heavy
//! strawman. The shared semantics helpers (`three_and`, `three_cmp`,
//! `arith`, …) are the single source of truth used by both engines.

use std::borrow::Cow;

use evdb_types::{Error, Record, Result, Value};

use crate::ast::{BinaryOp, UnaryOp};
use crate::bind::BoundExpr;
use crate::like::like_match;

/// A `Null` with a `'static` borrow, for absent record fields.
pub(crate) static NULL: Value = Value::Null;

impl BoundExpr {
    /// Evaluate against one record.
    pub fn eval(&self, record: &Record) -> Result<Value> {
        self.eval_ref(record).map(Cow::into_owned)
    }

    /// Evaluate as a predicate: `NULL` and `FALSE` are both "no match".
    pub fn matches(&self, record: &Record) -> Result<bool> {
        Ok(self.eval_ref(record)?.as_bool().unwrap_or(false))
    }

    /// Evaluate, borrowing literals and record fields instead of cloning.
    pub(crate) fn eval_ref<'e>(&'e self, record: &'e Record) -> Result<Cow<'e, Value>> {
        match self {
            BoundExpr::Literal(v) => Ok(Cow::Borrowed(v)),
            BoundExpr::Field(i) => Ok(Cow::Borrowed(record.get(*i).unwrap_or(&NULL))),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval_ref(record)?;
                match op {
                    UnaryOp::Not => not_value(&v).map(Cow::Owned),
                    UnaryOp::Neg => neg_value(&v).map(Cow::Owned),
                }
            }
            BoundExpr::Binary { op, left, right } => eval_binary(*op, left, right, record),
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval_ref(record)?;
                Ok(Cow::Owned(Value::Bool(v.is_null() != *negated)))
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval_ref(record)?;
                let lo = low.eval_ref(record)?;
                let hi = high.eval_ref(record)?;
                let ge = three_cmp(&v, &lo, BinaryOp::Ge)?;
                let le = three_cmp(&v, &hi, BinaryOp::Le)?;
                let both = three_and(&ge, &le);
                Ok(Cow::Owned(three_negate(&both, *negated)))
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_ref(record)?;
                if v.is_null() {
                    return Ok(Cow::Owned(Value::Null));
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval_ref(record)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if matches!(v.sql_cmp(&iv), Some(std::cmp::Ordering::Equal)) {
                        return Ok(Cow::Owned(Value::Bool(!*negated)));
                    }
                }
                if saw_null {
                    Ok(Cow::Owned(Value::Null))
                } else {
                    Ok(Cow::Owned(Value::Bool(*negated)))
                }
            }
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval_ref(record)?;
                let p = pattern.eval_ref(record)?;
                like_values(&v, &p, *negated).map(Cow::Owned)
            }
            BoundExpr::Func { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval_ref(record)?.into_owned());
                }
                (func.call)(&vals).map(Cow::Owned)
            }
            BoundExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let scrutinee = match operand {
                    Some(o) => Some(o.eval_ref(record)?),
                    None => None,
                };
                for (w, t) in branches {
                    let taken = match &scrutinee {
                        // Operand form: equality; a NULL scrutinee
                        // matches no branch (SQL semantics).
                        Some(s) => {
                            let wv = w.eval_ref(record)?;
                            matches!(s.sql_cmp(&wv), Some(std::cmp::Ordering::Equal))
                        }
                        // Searched form: boolean condition (NULL ⇒ no).
                        None => w.eval_ref(record)?.as_bool().unwrap_or(false),
                    };
                    if taken {
                        return t.eval_ref(record);
                    }
                }
                match else_expr {
                    Some(e) => e.eval_ref(record),
                    None => Ok(Cow::Owned(Value::Null)),
                }
            }
        }
    }
}

fn eval_binary<'e>(
    op: BinaryOp,
    left: &'e BoundExpr,
    right: &'e BoundExpr,
    record: &'e Record,
) -> Result<Cow<'e, Value>> {
    match op {
        BinaryOp::And => {
            // Kleene AND with short circuit on FALSE.
            let l = left.eval_ref(record)?;
            if l.as_bool() == Some(false) {
                return Ok(Cow::Owned(Value::Bool(false)));
            }
            let r = right.eval_ref(record)?;
            Ok(Cow::Owned(three_and(&l, &r)))
        }
        BinaryOp::Or => {
            let l = left.eval_ref(record)?;
            if l.as_bool() == Some(true) {
                return Ok(Cow::Owned(Value::Bool(true)));
            }
            let r = right.eval_ref(record)?;
            Ok(Cow::Owned(three_or(&l, &r)))
        }
        _ if op.is_comparison() => {
            let l = left.eval_ref(record)?;
            let r = right.eval_ref(record)?;
            three_cmp(&l, &r, op).map(Cow::Owned)
        }
        _ => {
            let l = left.eval_ref(record)?;
            let r = right.eval_ref(record)?;
            arith(op, &l, &r).map(Cow::Owned)
        }
    }
}

// ---- shared semantics helpers (used by the interpreter AND the VM) ----

/// Kleene `NOT`; errors on non-boolean non-null operands.
pub(crate) fn not_value(v: &Value) -> Result<Value> {
    match v.as_bool() {
        Some(b) => Ok(Value::Bool(!b)),
        None if v.is_null() => Ok(Value::Null),
        None => Err(Error::Type(format!("NOT applied to {v}"))),
    }
}

/// Checked numeric negation.
pub(crate) fn neg_value(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(i.checked_neg().ok_or_else(|| {
            Error::Invalid("negation overflow".into())
        })?)),
        Value::Float(f) => Ok(Value::Float(-f)),
        v => Err(Error::Type(format!("unary - applied to {v}"))),
    }
}

/// SQL `LIKE` over two evaluated operands.
pub(crate) fn like_values(v: &Value, p: &Value, negated: bool) -> Result<Value> {
    match (v.as_str(), p.as_str()) {
        (Some(s), Some(pat)) => Ok(Value::Bool(like_match(s, pat) != negated)),
        _ if v.is_null() || p.is_null() => Ok(Value::Null),
        _ => Err(Error::Type(format!("LIKE applied to {v} / {p}"))),
    }
}

pub(crate) fn three_and(a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

pub(crate) fn three_or(a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

pub(crate) fn three_negate(v: &Value, negate: bool) -> Value {
    match (v.as_bool(), negate) {
        (Some(b), true) => Value::Bool(!b),
        (Some(b), false) => Value::Bool(b),
        (None, _) => Value::Null,
    }
}

pub(crate) fn three_cmp(l: &Value, r: &Value, op: BinaryOp) -> Result<Value> {
    match l.sql_cmp(r) {
        None if l.is_null() || r.is_null() => Ok(Value::Null),
        None => Err(Error::Type(format!("cannot compare {l} with {r}"))),
        Some(ord) => {
            let b = match op {
                BinaryOp::Eq => ord == std::cmp::Ordering::Equal,
                BinaryOp::Ne => ord != std::cmp::Ordering::Equal,
                BinaryOp::Lt => ord == std::cmp::Ordering::Less,
                BinaryOp::Le => ord != std::cmp::Ordering::Greater,
                BinaryOp::Gt => ord == std::cmp::Ordering::Greater,
                BinaryOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!("non-comparison op in three_cmp"),
            };
            Ok(Value::Bool(b))
        }
    }
}

pub(crate) fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                BinaryOp::Add => a
                    .checked_add(b)
                    .map(Value::Int)
                    .ok_or_else(|| Error::Invalid("integer overflow in +".into())),
                BinaryOp::Sub => a
                    .checked_sub(b)
                    .map(Value::Int)
                    .ok_or_else(|| Error::Invalid("integer overflow in -".into())),
                BinaryOp::Mul => a
                    .checked_mul(b)
                    .map(Value::Int)
                    .ok_or_else(|| Error::Invalid("integer overflow in *".into())),
                BinaryOp::Div => {
                    if b == 0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Float(a as f64 / b as f64))
                    }
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        Ok(Value::Null)
                    } else {
                        // checked: i64::MIN.rem_euclid(-1) would overflow.
                        a.checked_rem_euclid(b)
                            .map(Value::Int)
                            .ok_or_else(|| Error::Invalid("integer overflow in %".into()))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| Error::Type(format!("arithmetic on {l}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| Error::Type(format!("arithmetic on {r}")))?;
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a.rem_euclid(b)
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use evdb_types::{DataType, Schema};

    fn eval(src: &str) -> Value {
        let schema = Schema::of(&[
            ("a", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
        ]);
        let rec = Record::from_iter([Value::Int(10), Value::Float(2.5), Value::from("abc")]);
        parse(src).unwrap().bind(&schema).unwrap().eval(&rec).unwrap()
    }

    fn eval_nulls(src: &str) -> Value {
        let schema = evdb_types::Schema::new(vec![
            evdb_types::FieldDef::nullable("n", DataType::Int),
            evdb_types::FieldDef::nullable("b", DataType::Bool),
        ])
        .unwrap();
        let rec = Record::from_iter([Value::Null, Value::Null]);
        parse(src).unwrap().bind(&schema).unwrap().eval(&rec).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("a + 5"), Value::Int(15));
        assert_eq!(eval("a / 4"), Value::Float(2.5));
        assert_eq!(eval("a % 3"), Value::Int(1));
        assert_eq!(eval("-7 % 3"), Value::Int(2)); // euclidean
        assert_eq!(eval("a * f"), Value::Float(25.0));
        assert_eq!(eval("a / 0"), Value::Null);
        assert_eq!(eval("f % 0"), Value::Null);
    }

    #[test]
    fn overflow_is_error() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let rec = Record::from_iter([Value::Int(i64::MAX)]);
        let e = parse("a + 1").unwrap().bind(&schema).unwrap().eval(&rec);
        assert!(e.is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("a > 5 AND s = 'abc'"), Value::Bool(true));
        assert_eq!(eval("a > 50 OR s LIKE 'a%'"), Value::Bool(true));
        assert_eq!(eval("NOT (a = 10)"), Value::Bool(false));
        assert_eq!(eval("a BETWEEN 10 AND 11"), Value::Bool(true));
        assert_eq!(eval("a NOT BETWEEN 10 AND 11"), Value::Bool(false));
        assert_eq!(eval("a IN (1, 10)"), Value::Bool(true));
        assert_eq!(eval("a NOT IN (1, 2)"), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_nulls("n > 1"), Value::Null);
        assert_eq!(eval_nulls("n > 1 AND FALSE"), Value::Bool(false));
        assert_eq!(eval_nulls("n > 1 OR TRUE"), Value::Bool(true));
        assert_eq!(eval_nulls("NOT (n > 1)"), Value::Null);
        assert_eq!(eval_nulls("n IS NULL"), Value::Bool(true));
        assert_eq!(eval_nulls("n IS NOT NULL"), Value::Bool(false));
        assert_eq!(eval_nulls("n IN (1, 2)"), Value::Null);
        assert_eq!(eval_nulls("n + 1"), Value::Null);
        assert_eq!(eval_nulls("n BETWEEN 1 AND 2"), Value::Null);
        // FALSE short-circuits even against NULL on the left.
        assert_eq!(eval_nulls("b AND 1 > 2"), Value::Bool(false));
    }

    #[test]
    fn matches_treats_null_as_false() {
        let schema = evdb_types::Schema::new(vec![evdb_types::FieldDef::nullable(
            "n",
            DataType::Int,
        )])
        .unwrap();
        let b = parse("n > 1").unwrap().bind(&schema).unwrap();
        assert!(!b.matches(&Record::from_iter([Value::Null])).unwrap());
        assert!(b.matches(&Record::from_iter([Value::Int(5)])).unwrap());
    }

    #[test]
    fn case_expressions() {
        // Searched form with else.
        assert_eq!(
            eval("CASE WHEN a > 100 THEN 'big' WHEN a > 5 THEN 'mid' ELSE 'small' END"),
            Value::from("mid")
        );
        // Searched form without else → NULL.
        assert_eq!(eval("CASE WHEN a > 100 THEN 1 END"), Value::Null);
        // Operand form (a = 10 in the fixture).
        assert_eq!(
            eval("CASE a WHEN 9 THEN 'nine' WHEN 10 THEN 'ten' END"),
            Value::from("ten")
        );
        // First matching branch wins.
        assert_eq!(
            eval("CASE WHEN TRUE THEN 1 WHEN TRUE THEN 2 END"),
            Value::Int(1)
        );
        // NULL scrutinee matches nothing.
        assert_eq!(
            eval_nulls("CASE n WHEN 1 THEN 'x' ELSE 'fallback' END"),
            Value::from("fallback")
        );
        // NULL condition is not taken.
        assert_eq!(
            eval_nulls("CASE WHEN n > 1 THEN 'x' ELSE 'y' END"),
            Value::from("y")
        );
        // Numeric branch types mix to FLOAT.
        assert_eq!(eval("CASE WHEN a > 5 THEN 1 ELSE 2.5 END"), Value::Int(1));
    }

    #[test]
    fn case_type_errors() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        // Branch types disagree.
        assert!(parse("CASE WHEN a > 1 THEN 'x' ELSE 2 END")
            .unwrap()
            .bind(&schema)
            .is_err());
        // Searched WHEN must be boolean.
        assert!(parse("CASE WHEN a THEN 1 END").unwrap().bind(&schema).is_err());
        // Operand and WHEN must be comparable.
        assert!(parse("CASE a WHEN 'x' THEN 1 END")
            .unwrap()
            .bind(&schema)
            .is_err());
    }

    #[test]
    fn like_and_functions() {
        assert_eq!(eval("s LIKE '_b%'"), Value::Bool(true));
        assert_eq!(eval("s NOT LIKE 'z%'"), Value::Bool(true));
        assert_eq!(eval("upper(s)"), Value::from("ABC"));
        assert_eq!(eval("length(s) = 3"), Value::Bool(true));
        assert_eq!(eval("coalesce(NULL, a)"), Value::Int(10));
    }
}
