//! The expression AST and its lossless textual form.
//!
//! `Display` prints an expression in the exact grammar [`crate::parse`]
//! accepts; `parse(expr.to_string())` reproduces the same AST (verified by
//! a proptest round-trip). That property is what lets EventDB store
//! expressions as rows — "expressions as data".

use std::fmt;

use evdb_types::Value;

/// Binary operators, in increasing precedence groups:
/// `OR` < `AND` < comparisons < `+ -` < `* / %`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Logical OR (three-valued).
    Or,
    /// Logical AND (three-valued).
    And,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinaryOp {
    /// Parser/printer precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => 3,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }

    /// Is this a comparison operator?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`); identity
    /// for non-comparisons. Used when normalizing `literal op field` atoms.
    pub fn flipped(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            other => other,
        }
    }

    /// Source text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical NOT (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// An unbound expression tree over named fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Literal(Value),
    /// A reference to a field by name.
    Field(String),
    /// Unary application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary application.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high` (inclusive both ends).
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` any run, `_` any single char).
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// A scalar function call.
    Func {
        /// Function name (lowercased at parse time).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `CASE [operand] WHEN w THEN t … [ELSE e] END`.
    ///
    /// With an operand, each WHEN is compared for equality against it;
    /// without, each WHEN is a boolean condition.
    Case {
        /// Optional scrutinee.
        operand: Option<Box<Expr>>,
        /// `(when, then)` branches, tried in order.
        branches: Vec<(Expr, Expr)>,
        /// Fallback (`NULL` when absent).
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Shorthand: field reference.
    pub fn field(name: impl Into<String>) -> Expr {
        Expr::Field(name.into())
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: binary node.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, self, other)
    }

    /// Collect the names of all fields referenced by this expression.
    pub fn referenced_fields(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Field(n) = e {
                if !out.contains(&n.as_str()) {
                    out.push(n.as_str());
                }
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Field(_) => {}
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
        }
    }

    /// Printer precedence of this node (for minimal parenthesization).
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            Expr::Unary { op: UnaryOp::Not, .. } => 2, // binds like a NOT level
            Expr::Unary { op: UnaryOp::Neg, .. } => 7,
            // Postfix predicates sit at comparison level.
            Expr::IsNull { .. } | Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } => 3,
            _ => 8,
        }
    }

    fn fmt_child(&self, child: &Expr, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        if child.precedence() < min_prec {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Field(n) => f.write_str(n),
            Expr::Unary { op: UnaryOp::Not, expr } => {
                f.write_str("NOT ")?;
                // The grammar's NOT operand is a predicate (or another
                // NOT): anything binding looser (AND/OR) needs parens.
                // Nested NOT also gets (harmless) parens for simplicity.
                self.fmt_child(expr, f, 3)
            }
            Expr::Unary { op: UnaryOp::Neg, expr } => {
                f.write_str("-")?;
                self.fmt_child(expr, f, 7)
            }
            Expr::Binary { op, left, right } => {
                let p = op.precedence();
                // Comparisons are non-associative in the grammar (one
                // predicate suffix per additive operand), so BOTH sides
                // must bind strictly tighter; left-associative operators
                // only need that on the right.
                let left_min = if op.is_comparison() { p + 1 } else { p };
                self.fmt_child(left, f, left_min)?;
                write!(f, " {} ", op.symbol())?;
                self.fmt_child(right, f, p + 1)
            }
            Expr::IsNull { expr, negated } => {
                self.fmt_child(expr, f, 4)?;
                if *negated {
                    f.write_str(" IS NOT NULL")
                } else {
                    f.write_str(" IS NULL")
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.fmt_child(expr, f, 4)?;
                if *negated {
                    f.write_str(" NOT BETWEEN ")?;
                } else {
                    f.write_str(" BETWEEN ")?;
                }
                self.fmt_child(low, f, 4)?;
                f.write_str(" AND ")?;
                self.fmt_child(high, f, 4)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                self.fmt_child(expr, f, 4)?;
                if *negated {
                    f.write_str(" NOT IN (")?;
                } else {
                    f.write_str(" IN (")?;
                }
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.fmt_child(expr, f, 4)?;
                if *negated {
                    f.write_str(" NOT LIKE ")?;
                } else {
                    f.write_str(" LIKE ")?;
                }
                self.fmt_child(pattern, f, 4)
            }
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_minimal_parens() {
        let e = Expr::field("a")
            .and(Expr::field("b").or(Expr::field("c")));
        assert_eq!(e.to_string(), "a AND (b OR c)");

        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::binary(BinaryOp::Add, Expr::lit(1i64), Expr::lit(2i64)),
            Expr::lit(3i64),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
    }

    #[test]
    fn display_predicates() {
        let e = Expr::Between {
            expr: Box::new(Expr::field("x")),
            low: Box::new(Expr::lit(1i64)),
            high: Box::new(Expr::lit(5i64)),
            negated: true,
        };
        assert_eq!(e.to_string(), "x NOT BETWEEN 1 AND 5");

        let e = Expr::InList {
            expr: Box::new(Expr::field("s")),
            list: vec![Expr::lit("a"), Expr::lit("b")],
            negated: false,
        };
        assert_eq!(e.to_string(), "s IN ('a', 'b')");
    }

    #[test]
    fn referenced_fields_dedup() {
        let e = Expr::field("a").and(Expr::field("b").or(Expr::field("a")));
        assert_eq!(e.referenced_fields(), vec!["a", "b"]);
    }

    #[test]
    fn flipped_ops() {
        assert_eq!(BinaryOp::Lt.flipped(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Le.flipped(), BinaryOp::Ge);
        assert_eq!(BinaryOp::Eq.flipped(), BinaryOp::Eq);
    }
}
