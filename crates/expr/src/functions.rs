//! Built-in scalar functions.
//!
//! Each function carries a typing rule (checked at bind time) and an
//! evaluator. Unless documented otherwise, any `NULL` argument makes the
//! result `NULL` (SQL convention); `coalesce`, `least` and `greatest`
//! handle nulls specially.

use std::fmt;

use evdb_types::{DataType, Error, Result, Value};

/// Argument types as seen by the type checker: `None` means "unknown /
/// null literal", which unifies with anything.
pub type ArgTypes<'a> = &'a [Option<DataType>];

/// A built-in scalar function.
pub struct Function {
    /// Lowercase name as written in expressions.
    pub name: &'static str,
    /// Minimum number of arguments.
    pub min_args: usize,
    /// Maximum number of arguments (`usize::MAX` for variadic).
    pub max_args: usize,
    /// Typing rule: argument types → return type.
    pub ret: fn(ArgTypes) -> Result<Option<DataType>>,
    /// Evaluator over concrete values.
    pub call: fn(&[Value]) -> Result<Value>,
}

impl fmt::Debug for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Function({})", self.name)
    }
}

/// Look up a built-in function by (lowercase) name.
pub fn lookup(name: &str) -> Option<&'static Function> {
    FUNCTIONS.iter().find(|f| f.name == name)
}

/// Names of every registered function (for docs and error hints).
pub fn all_names() -> Vec<&'static str> {
    FUNCTIONS.iter().map(|f| f.name).collect()
}

// ---- typing helpers ---------------------------------------------------

fn want_numeric(t: Option<DataType>, fname: &str) -> Result<()> {
    match t {
        None => Ok(()),
        Some(d) if d.is_numeric() => Ok(()),
        Some(d) => Err(Error::Type(format!("{fname} expects a numeric, got {d}"))),
    }
}

fn want_str(t: Option<DataType>, fname: &str) -> Result<()> {
    match t {
        None | Some(DataType::Str) => Ok(()),
        Some(d) => Err(Error::Type(format!("{fname} expects a string, got {d}"))),
    }
}

// ---- eval helpers ------------------------------------------------------

fn any_null(args: &[Value]) -> bool {
    args.iter().any(Value::is_null)
}

fn num(v: &Value, fname: &str) -> Result<f64> {
    v.as_f64()
        .ok_or_else(|| Error::Type(format!("{fname}: expected numeric, got {v}")))
}

fn text<'a>(v: &'a Value, fname: &str) -> Result<&'a str> {
    v.as_str()
        .ok_or_else(|| Error::Type(format!("{fname}: expected string, got {v}")))
}

macro_rules! unary_float_fn {
    ($fname:literal, $op:expr) => {
        Function {
            name: $fname,
            min_args: 1,
            max_args: 1,
            ret: |args| {
                want_numeric(args[0], $fname)?;
                Ok(Some(DataType::Float))
            },
            call: |args| {
                if any_null(args) {
                    return Ok(Value::Null);
                }
                let f: fn(f64) -> f64 = $op;
                Ok(Value::Float(f(num(&args[0], $fname)?)))
            },
        }
    };
}

macro_rules! unary_string_fn {
    ($fname:literal, $op:expr) => {
        Function {
            name: $fname,
            min_args: 1,
            max_args: 1,
            ret: |args| {
                want_str(args[0], $fname)?;
                Ok(Some(DataType::Str))
            },
            call: |args| {
                if any_null(args) {
                    return Ok(Value::Null);
                }
                let f: fn(&str) -> String = $op;
                Ok(Value::from(f(text(&args[0], $fname)?)))
            },
        }
    };
}

static FUNCTIONS: &[Function] = &[
    Function {
        name: "abs",
        min_args: 1,
        max_args: 1,
        ret: |args| {
            want_numeric(args[0], "abs")?;
            Ok(args[0].or(Some(DataType::Float)))
        },
        call: |args| match &args[0] {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                Error::Invalid("abs(i64::MIN) overflows".into())
            })?)),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            v => Err(Error::Type(format!("abs: expected numeric, got {v}"))),
        },
    },
    Function {
        name: "sign",
        min_args: 1,
        max_args: 1,
        ret: |args| {
            want_numeric(args[0], "sign")?;
            Ok(Some(DataType::Int))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            let x = num(&args[0], "sign")?;
            Ok(Value::Int(if x > 0.0 {
                1
            } else if x < 0.0 {
                -1
            } else {
                0
            }))
        },
    },
    unary_float_fn!("sqrt", |x| x.sqrt()),
    unary_float_fn!("ln", |x| x.ln()),
    unary_float_fn!("exp", |x| x.exp()),
    unary_float_fn!("ceil", |x| x.ceil()),
    unary_float_fn!("floor", |x| x.floor()),
    Function {
        name: "round",
        min_args: 1,
        max_args: 2,
        ret: |args| {
            want_numeric(args[0], "round")?;
            if args.len() == 2 {
                match args[1] {
                    None | Some(DataType::Int) => {}
                    Some(d) => {
                        return Err(Error::Type(format!("round digits must be INT, got {d}")))
                    }
                }
            }
            Ok(Some(DataType::Float))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            let x = num(&args[0], "round")?;
            let digits = if args.len() == 2 {
                args[1]
                    .as_int()
                    .ok_or_else(|| Error::Type("round digits must be INT".into()))?
            } else {
                0
            };
            let factor = 10f64.powi(digits as i32);
            Ok(Value::Float((x * factor).round() / factor))
        },
    },
    Function {
        name: "power",
        min_args: 2,
        max_args: 2,
        ret: |args| {
            want_numeric(args[0], "power")?;
            want_numeric(args[1], "power")?;
            Ok(Some(DataType::Float))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            Ok(Value::Float(
                num(&args[0], "power")?.powf(num(&args[1], "power")?),
            ))
        },
    },
    unary_string_fn!("lower", |s| s.to_lowercase()),
    unary_string_fn!("upper", |s| s.to_uppercase()),
    unary_string_fn!("trim", |s| s.trim().to_string()),
    Function {
        name: "length",
        min_args: 1,
        max_args: 1,
        ret: |args| {
            want_str(args[0], "length")?;
            Ok(Some(DataType::Int))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            Ok(Value::Int(text(&args[0], "length")?.chars().count() as i64))
        },
    },
    Function {
        // substr(s, start_1_based, len) — start may be negative (from end).
        name: "substr",
        min_args: 2,
        max_args: 3,
        ret: |args| {
            want_str(args[0], "substr")?;
            want_numeric(args[1], "substr")?;
            if args.len() == 3 {
                want_numeric(args[2], "substr")?;
            }
            Ok(Some(DataType::Str))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            let s: Vec<char> = text(&args[0], "substr")?.chars().collect();
            let start = args[1]
                .as_int()
                .ok_or_else(|| Error::Type("substr start must be INT".into()))?;
            let from = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                s.len().saturating_sub(start.unsigned_abs() as usize)
            } else {
                0
            };
            let len = if args.len() == 3 {
                args[2]
                    .as_int()
                    .ok_or_else(|| Error::Type("substr len must be INT".into()))?
                    .max(0) as usize
            } else {
                usize::MAX
            };
            let out: String = s.iter().skip(from).take(len).collect();
            Ok(Value::from(out))
        },
    },
    Function {
        name: "concat",
        min_args: 1,
        max_args: usize::MAX,
        ret: |args| {
            for a in args {
                want_str(*a, "concat")?;
            }
            Ok(Some(DataType::Str))
        },
        call: |args| {
            // concat skips NULLs (SQL CONCAT semantics, not ||).
            let mut out = String::new();
            for a in args {
                if let Value::Str(s) = a {
                    out.push_str(s);
                } else if !a.is_null() {
                    return Err(Error::Type(format!("concat: expected string, got {a}")));
                }
            }
            Ok(Value::from(out))
        },
    },
    Function {
        name: "replace",
        min_args: 3,
        max_args: 3,
        ret: |args| {
            for a in args {
                want_str(*a, "replace")?;
            }
            Ok(Some(DataType::Str))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            Ok(Value::from(text(&args[0], "replace")?.replace(
                text(&args[1], "replace")?,
                text(&args[2], "replace")?,
            )))
        },
    },
    Function {
        name: "contains",
        min_args: 2,
        max_args: 2,
        ret: |args| {
            want_str(args[0], "contains")?;
            want_str(args[1], "contains")?;
            Ok(Some(DataType::Bool))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(
                text(&args[0], "contains")?.contains(text(&args[1], "contains")?),
            ))
        },
    },
    Function {
        name: "starts_with",
        min_args: 2,
        max_args: 2,
        ret: |args| {
            want_str(args[0], "starts_with")?;
            want_str(args[1], "starts_with")?;
            Ok(Some(DataType::Bool))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(
                text(&args[0], "starts_with")?.starts_with(text(&args[1], "starts_with")?),
            ))
        },
    },
    Function {
        name: "ends_with",
        min_args: 2,
        max_args: 2,
        ret: |args| {
            want_str(args[0], "ends_with")?;
            want_str(args[1], "ends_with")?;
            Ok(Some(DataType::Bool))
        },
        call: |args| {
            if any_null(args) {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(
                text(&args[0], "ends_with")?.ends_with(text(&args[1], "ends_with")?),
            ))
        },
    },
    Function {
        // First non-null argument; all arguments must share a type.
        name: "coalesce",
        min_args: 1,
        max_args: usize::MAX,
        ret: |args| {
            let mut ty: Option<DataType> = None;
            for a in args {
                match (ty, a) {
                    (None, Some(d)) => ty = Some(*d),
                    (Some(t), Some(d))
                        if t != *d && !(t.is_numeric() && d.is_numeric()) =>
                    {
                        return Err(Error::Type(format!(
                            "coalesce arguments disagree: {t} vs {d}"
                        )))
                    }
                    _ => {}
                }
            }
            Ok(ty)
        },
        call: |args| {
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        },
    },
    Function {
        // Smallest non-null argument (SQL LEAST ignores nulls here).
        name: "least",
        min_args: 1,
        max_args: usize::MAX,
        ret: minmax_ret,
        call: |args| {
            Ok(args
                .iter()
                .filter(|v| !v.is_null())
                .min()
                .cloned()
                .unwrap_or(Value::Null))
        },
    },
    Function {
        // Largest non-null argument.
        name: "greatest",
        min_args: 1,
        max_args: usize::MAX,
        ret: minmax_ret,
        call: |args| {
            Ok(args
                .iter()
                .filter(|v| !v.is_null())
                .max()
                .cloned()
                .unwrap_or(Value::Null))
        },
    },
];

fn minmax_ret(args: ArgTypes) -> Result<Option<DataType>> {
    let mut ty: Option<DataType> = None;
    for a in args {
        match (ty, a) {
            (None, Some(d)) => ty = Some(*d),
            (Some(t), Some(d)) if t != *d && !(t.is_numeric() && d.is_numeric()) => {
                return Err(Error::Type(format!(
                    "least/greatest arguments disagree: {t} vs {d}"
                )))
            }
            _ => {}
        }
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Value {
        (lookup(name).unwrap().call)(args).unwrap()
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(call("abs", &[Value::Int(-4)]), Value::Int(4));
        assert_eq!(call("abs", &[Value::Float(-4.5)]), Value::Float(4.5));
        assert_eq!(call("sqrt", &[Value::Int(9)]), Value::Float(3.0));
        assert_eq!(call("sign", &[Value::Float(-0.5)]), Value::Int(-1));
        assert_eq!(call("round", &[Value::Float(2.567), Value::Int(1)]), Value::Float(2.6));
        assert_eq!(call("round", &[Value::Float(2.5)]), Value::Float(3.0));
        assert_eq!(call("power", &[Value::Int(2), Value::Int(10)]), Value::Float(1024.0));
        assert_eq!(call("floor", &[Value::Float(1.9)]), Value::Float(1.0));
        assert_eq!(call("ceil", &[Value::Float(1.1)]), Value::Float(2.0));
    }

    #[test]
    fn string_functions() {
        assert_eq!(call("lower", &[Value::from("AbC")]), Value::from("abc"));
        assert_eq!(call("upper", &[Value::from("AbC")]), Value::from("ABC"));
        assert_eq!(call("length", &[Value::from("héllo")]), Value::Int(5));
        assert_eq!(
            call("substr", &[Value::from("hello"), Value::Int(2), Value::Int(3)]),
            Value::from("ell")
        );
        assert_eq!(
            call("substr", &[Value::from("hello"), Value::Int(-3)]),
            Value::from("llo")
        );
        assert_eq!(
            call("concat", &[Value::from("a"), Value::Null, Value::from("b")]),
            Value::from("ab")
        );
        assert_eq!(
            call("replace", &[Value::from("a-b-c"), Value::from("-"), Value::from("+")]),
            Value::from("a+b+c")
        );
        assert_eq!(
            call("contains", &[Value::from("haystack"), Value::from("st")]),
            Value::Bool(true)
        );
        assert_eq!(call("trim", &[Value::from("  x ")]), Value::from("x"));
    }

    #[test]
    fn null_handling() {
        assert_eq!(call("abs", &[Value::Null]), Value::Null);
        assert_eq!(call("length", &[Value::Null]), Value::Null);
        assert_eq!(
            call("coalesce", &[Value::Null, Value::Int(3), Value::Int(9)]),
            Value::Int(3)
        );
        assert_eq!(call("coalesce", &[Value::Null]), Value::Null);
        assert_eq!(
            call("least", &[Value::Null, Value::Int(3), Value::Int(1)]),
            Value::Int(1)
        );
        assert_eq!(
            call("greatest", &[Value::Int(3), Value::Null, Value::Int(9)]),
            Value::Int(9)
        );
    }

    #[test]
    fn typing_rules() {
        let f = lookup("sqrt").unwrap();
        assert!((f.ret)(&[Some(DataType::Str)]).is_err());
        assert_eq!((f.ret)(&[Some(DataType::Int)]).unwrap(), Some(DataType::Float));
        let c = lookup("coalesce").unwrap();
        assert!((c.ret)(&[Some(DataType::Int), Some(DataType::Str)]).is_err());
        assert_eq!(
            (c.ret)(&[None, Some(DataType::Str)]).unwrap(),
            Some(DataType::Str)
        );
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(lookup("no_such_fn").is_none());
        assert!(all_names().contains(&"substr"));
    }
}
