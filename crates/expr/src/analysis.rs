//! Constraint analysis: decompose a predicate into **indexable atoms**
//! plus a **residual**.
//!
//! This is the enabling analysis for the paper's scalability claim about
//! "large rule sets" (§2.2.c.iv.2.a): a matcher that can pull
//! `field = const` and `field relop const` atoms out of every rule can
//! index rules by attribute value and touch only candidate rules per
//! event, instead of evaluating all of them.
//!
//! `analyze` splits the top-level conjunction of a predicate:
//!
//! * `field = literal`  → [`Constraint::Eq`]
//! * `field < literal` (and `<= > >=`, either operand order, plus
//!   `BETWEEN`) → [`Constraint::Range`]
//! * `field IN (literals…)` → [`Constraint::In`]
//! * everything else (ORs, functions, cross-field comparisons, NOTs…)
//!   → folded back into the residual expression.
//!
//! The decomposition is **sound, not complete**: the original predicate is
//! always equivalent to `constraints ∧ residual` (verified by proptest in
//! the rules crate), but some index opportunities inside ORs are left to
//! the residual.

use evdb_types::Value;

use crate::ast::{BinaryOp, Expr};
use crate::typecheck::const_eval;

/// One bound of a range constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    /// The bounding value.
    pub value: Value,
    /// Whether the bound itself is included.
    pub inclusive: bool,
}

/// An indexable atomic constraint on a single field.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `field = value`.
    Eq {
        /// Field name.
        field: String,
        /// Required value.
        value: Value,
    },
    /// `field` within an interval (at least one side set).
    Range {
        /// Field name.
        field: String,
        /// Lower bound, if any.
        low: Option<Bound>,
        /// Upper bound, if any.
        high: Option<Bound>,
    },
    /// `field IN (values…)` — disjunction of equalities on one field.
    In {
        /// Field name.
        field: String,
        /// Allowed values (deduplicated, non-null).
        values: Vec<Value>,
    },
}

impl Constraint {
    /// The constrained field.
    pub fn field(&self) -> &str {
        match self {
            Constraint::Eq { field, .. }
            | Constraint::Range { field, .. }
            | Constraint::In { field, .. } => field,
        }
    }

    /// Does a concrete value satisfy this constraint?
    /// (`None`/NULL never satisfies.)
    pub fn accepts(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        match self {
            Constraint::Eq { value, .. } => {
                matches!(v.sql_cmp(value), Some(std::cmp::Ordering::Equal))
            }
            Constraint::Range { low, high, .. } => {
                if let Some(b) = low {
                    match v.sql_cmp(&b.value) {
                        Some(std::cmp::Ordering::Greater) => {}
                        Some(std::cmp::Ordering::Equal) if b.inclusive => {}
                        _ => return false,
                    }
                }
                if let Some(b) = high {
                    match v.sql_cmp(&b.value) {
                        Some(std::cmp::Ordering::Less) => {}
                        Some(std::cmp::Ordering::Equal) if b.inclusive => {}
                        _ => return false,
                    }
                }
                true
            }
            Constraint::In { values, .. } => values
                .iter()
                .any(|x| matches!(v.sql_cmp(x), Some(std::cmp::Ordering::Equal))),
        }
    }
}

/// The result of [`analyze`]: indexable constraints plus what is left.
#[derive(Debug, Clone, Default)]
pub struct ConjunctiveForm {
    /// Indexable atoms; the predicate implies each of them.
    pub constraints: Vec<Constraint>,
    /// Remaining predicate (`None` means "TRUE").
    pub residual: Option<Expr>,
}

impl ConjunctiveForm {
    /// True if the whole predicate was captured by constraints.
    pub fn fully_indexable(&self) -> bool {
        self.residual.is_none()
    }
}

/// Decompose `expr` (a boolean predicate) into indexable constraints and a
/// residual such that `expr ≡ AND(constraints) AND residual`.
pub fn analyze(expr: &Expr) -> ConjunctiveForm {
    let mut atoms = Vec::new();
    collect_conjuncts(expr, &mut atoms);

    let mut form = ConjunctiveForm::default();
    let mut residual_parts: Vec<Expr> = Vec::new();

    for atom in atoms {
        match extract(atom) {
            Some(c) => form.constraints.push(c),
            None => residual_parts.push(atom.clone()),
        }
    }
    form.residual = residual_parts.into_iter().reduce(Expr::and);
    form
}

/// Flatten nested ANDs into a conjunct list.
fn collect_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// Try to turn one conjunct into an indexable constraint.
fn extract(atom: &Expr) -> Option<Constraint> {
    match atom {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalize to field-op-constant.
            let (field, op, value) = match (&**left, &**right) {
                (Expr::Field(f), rhs) => (f, *op, const_eval(rhs)?),
                (lhs, Expr::Field(f)) => (f, op.flipped(), const_eval(lhs)?),
                _ => return None,
            };
            if value.is_null() {
                return None; // `field = NULL` never matches; leave in residual
            }
            match op {
                BinaryOp::Eq => Some(Constraint::Eq {
                    field: field.clone(),
                    value,
                }),
                BinaryOp::Lt => Some(Constraint::Range {
                    field: field.clone(),
                    low: None,
                    high: Some(Bound {
                        value,
                        inclusive: false,
                    }),
                }),
                BinaryOp::Le => Some(Constraint::Range {
                    field: field.clone(),
                    low: None,
                    high: Some(Bound {
                        value,
                        inclusive: true,
                    }),
                }),
                BinaryOp::Gt => Some(Constraint::Range {
                    field: field.clone(),
                    low: Some(Bound {
                        value,
                        inclusive: false,
                    }),
                    high: None,
                }),
                BinaryOp::Ge => Some(Constraint::Range {
                    field: field.clone(),
                    low: Some(Bound {
                        value,
                        inclusive: true,
                    }),
                    high: None,
                }),
                // `!=` is not usefully indexable.
                _ => None,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let field = match &**expr {
                Expr::Field(f) => f,
                _ => return None,
            };
            let lo = const_eval(low)?;
            let hi = const_eval(high)?;
            if lo.is_null() || hi.is_null() {
                return None;
            }
            Some(Constraint::Range {
                field: field.clone(),
                low: Some(Bound {
                    value: lo,
                    inclusive: true,
                }),
                high: Some(Bound {
                    value: hi,
                    inclusive: true,
                }),
            })
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let field = match &**expr {
                Expr::Field(f) => f,
                _ => return None,
            };
            let mut values = Vec::with_capacity(list.len());
            for e in list {
                let v = const_eval(e)?;
                if v.is_null() {
                    return None; // NULL in list changes semantics; keep in residual
                }
                if !values.contains(&v) {
                    values.push(v);
                }
            }
            Some(Constraint::In {
                field: field.clone(),
                values,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn form(src: &str) -> ConjunctiveForm {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn equality_and_range() {
        let f = form("sym = 'IBM' AND px > 100 AND qty <= 5");
        assert_eq!(f.constraints.len(), 3);
        assert!(f.fully_indexable());
        assert_eq!(
            f.constraints[0],
            Constraint::Eq {
                field: "sym".into(),
                value: Value::from("IBM")
            }
        );
        match &f.constraints[1] {
            Constraint::Range { field, low, high } => {
                assert_eq!(field, "px");
                assert_eq!(low.as_ref().unwrap().value, Value::Int(100));
                assert!(!low.as_ref().unwrap().inclusive);
                assert!(high.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flipped_literal_first() {
        let f = form("100 < px");
        match &f.constraints[0] {
            Constraint::Range { low, .. } => {
                assert_eq!(low.as_ref().unwrap().value, Value::Int(100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_and_in() {
        let f = form("px BETWEEN 1 AND 2 AND sym IN ('A', 'B', 'A')");
        assert!(f.fully_indexable());
        match &f.constraints[1] {
            Constraint::In { values, .. } => assert_eq!(values.len(), 2), // deduped
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn residual_catches_the_rest() {
        let f = form("sym = 'A' AND (px > 1 OR qty > 1) AND length(sym) = 1");
        assert_eq!(f.constraints.len(), 1);
        let residual = f.residual.unwrap().to_string();
        assert!(residual.contains("OR"));
        assert!(residual.contains("length"));
    }

    #[test]
    fn non_indexable_forms_stay_residual() {
        assert_eq!(form("a != 1").constraints.len(), 0);
        assert_eq!(form("a = b").constraints.len(), 0);
        assert_eq!(form("NOT a = 1").constraints.len(), 0);
        assert_eq!(form("a NOT IN (1)").constraints.len(), 0);
        assert_eq!(form("a = NULL").constraints.len(), 0);
        assert_eq!(form("a IN (1, NULL)").constraints.len(), 0);
        assert_eq!(form("abs(a) = 1").constraints.len(), 0);
    }

    #[test]
    fn const_folded_rhs() {
        let f = form("px > 10 * 10");
        match &f.constraints[0] {
            Constraint::Range { low, .. } => {
                assert_eq!(low.as_ref().unwrap().value, Value::Int(100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constraint_accepts() {
        let c = Constraint::Range {
            field: "x".into(),
            low: Some(Bound {
                value: Value::Int(1),
                inclusive: true,
            }),
            high: Some(Bound {
                value: Value::Int(5),
                inclusive: false,
            }),
        };
        assert!(c.accepts(&Value::Int(1)));
        assert!(c.accepts(&Value::Float(4.9)));
        assert!(!c.accepts(&Value::Int(5)));
        assert!(!c.accepts(&Value::Null));

        let c = Constraint::In {
            field: "s".into(),
            values: vec![Value::from("a")],
        };
        assert!(c.accepts(&Value::from("a")));
        assert!(!c.accepts(&Value::from("b")));
    }
}
