//! Binding: resolve field names to positions and functions to their
//! implementations, once, so per-event evaluation is allocation-free name
//! lookup-free tree walking.
//!
//! [`Expr::bind`] type-checks first (via [`crate::typecheck::infer`]) and
//! then lowers the AST into a [`BoundExpr`]. A `BoundExpr` is immutable and
//! `Send + Sync`, so one bound rule can be evaluated from many threads.

use evdb_types::{Error, Result, Schema, Value};

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::functions::{self, Function};
use crate::typecheck;

/// An expression with fields resolved to record positions.
#[derive(Debug)]
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Record position.
    Field(usize),
    /// Unary application.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// Binary application.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `[NOT] IN`.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] LIKE`.
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Pattern expression.
        pattern: Box<BoundExpr>,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// Function call.
    Func {
        /// Implementation.
        func: &'static Function,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
    /// `CASE … END`.
    Case {
        /// Optional scrutinee.
        operand: Option<Box<BoundExpr>>,
        /// `(when, then)` branches.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// Fallback.
        else_expr: Option<Box<BoundExpr>>,
    },
}

impl Expr {
    /// Type-check against `schema` and resolve names, producing an
    /// efficiently evaluable [`BoundExpr`].
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        typecheck::infer(self, schema)?;
        lower(self, schema)
    }

    /// Like [`Expr::bind`] but additionally requires the expression to be
    /// a boolean predicate.
    pub fn bind_predicate(&self, schema: &Schema) -> Result<BoundExpr> {
        typecheck::check_predicate(self, schema)?;
        lower(self, schema)
    }
}

fn lower(expr: &Expr, schema: &Schema) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Field(name) => BoundExpr::Field(
            schema
                .index_of(name)
                .ok_or_else(|| Error::Type(format!("unknown field '{name}'")))?,
        ),
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(lower(expr, schema)?),
        },
        Expr::Binary { op, left, right } => BoundExpr::Binary {
            op: *op,
            left: Box::new(lower(left, schema)?),
            right: Box::new(lower(right, schema)?),
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(lower(expr, schema)?),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(lower(expr, schema)?),
            low: Box::new(lower(low, schema)?),
            high: Box::new(lower(high, schema)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(lower(expr, schema)?),
            list: list
                .iter()
                .map(|e| lower(e, schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BoundExpr::Like {
            expr: Box::new(lower(expr, schema)?),
            pattern: Box::new(lower(pattern, schema)?),
            negated: *negated,
        },
        Expr::Func { name, args } => BoundExpr::Func {
            func: functions::lookup(name)
                .ok_or_else(|| Error::Type(format!("unknown function '{name}'")))?,
            args: args
                .iter()
                .map(|a| lower(a, schema))
                .collect::<Result<_>>()?,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => BoundExpr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(lower(o, schema)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| Ok((lower(w, schema)?, lower(t, schema)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(lower(e, schema)?)),
                None => None,
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use evdb_types::{DataType, Record};

    #[test]
    fn bind_resolves_positions() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let bound = parse("b + a").unwrap().bind(&schema).unwrap();
        match bound {
            BoundExpr::Binary { left, right, .. } => {
                assert!(matches!(*left, BoundExpr::Field(1)));
                assert!(matches!(*right, BoundExpr::Field(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_rejects_type_errors_and_unknowns() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        assert!(parse("a LIKE 'x%'").unwrap().bind(&schema).is_err());
        assert!(parse("ghost = 1").unwrap().bind(&schema).is_err());
        assert!(parse("a + 1").unwrap().bind_predicate(&schema).is_err());
        assert!(parse("a > 1").unwrap().bind_predicate(&schema).is_ok());
    }

    #[test]
    fn bound_expr_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoundExpr>();
    }

    #[test]
    fn bound_eval_smoke() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let b = parse("a * 2 + 1").unwrap().bind(&schema).unwrap();
        assert_eq!(
            b.eval(&Record::from_iter([20i64])).unwrap(),
            Value::Int(41)
        );
    }
}
