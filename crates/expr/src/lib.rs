//! # evdb-expr
//!
//! The EventDB expression language — the concrete realization of the
//! paper's "supporting **expressions as data** allows databases to
//! significantly extend traditional publish/subscribe technology"
//! (Chandy & Gawlick, SIGMOD'07, §2.2.c).
//!
//! Expressions are:
//!
//! * **parsed** from a SQL-flavoured textual form ([`parse`]),
//! * **printed** back losslessly (`Display` on [`Expr`]; print→parse is a
//!   proptest invariant), which is what makes them storable *data*,
//! * **type-checked and bound** against a schema ([`Expr::bind`]),
//!   resolving field names to positions once so per-event evaluation does
//!   no string lookups,
//! * **evaluated** with SQL three-valued logic ([`BoundExpr::eval`]),
//! * **compiled** into flat bytecode ([`CompiledExpr::compile`]) with
//!   constant folding, conjunct reordering and an allocation-free eval
//!   loop — the hot path for rule verification, CQ filters and detector
//!   conditions; the tree-walking interpreter remains the semantics
//!   oracle (DESIGN.md D11),
//! * **analyzed** into indexable conjunctive constraints plus a residual
//!   ([`analysis::analyze`]) — the foundation of the rule matcher's
//!   scalability on large rule sets.
//!
//! Grammar sketch (keywords case-insensitive):
//!
//! ```text
//! expr     := or
//! or       := and (OR and)*
//! and      := not (AND not)*
//! not      := NOT not | predicate
//! pred     := add ((= | != | <> | < | <= | > | >=) add
//!            | IS [NOT] NULL | [NOT] BETWEEN add AND add
//!            | [NOT] IN '(' expr {',' expr} ')' | [NOT] LIKE add)?
//! add      := mul ((+ | -) mul)*
//! mul      := unary ((* | / | %) unary)*
//! unary    := - unary | primary
//! primary  := literal | field | func '(' args ')' | '(' expr ')' | case
//! case     := CASE [expr] (WHEN expr THEN expr)+ [ELSE expr] END
//! literal  := 123 | 1.5 | 'text' | TRUE | FALSE | NULL | @123
//! ```

pub mod analysis;
pub mod ast;
pub mod bind;
pub mod compile;
pub mod eval;
pub mod functions;
pub mod like;
pub mod parser;
pub mod token;
pub mod typecheck;

pub use analysis::{analyze, ConjunctiveForm, Constraint};
pub use ast::{BinaryOp, Expr, UnaryOp};
pub use bind::BoundExpr;
pub use compile::{batch_stats, compiler_stats, BatchScratch, CompiledExpr, CompilerStats, FoldStats};
pub use like::LikePattern;
pub use parser::parse;

use evdb_types::{Record, Result, Schema, Value};

/// Parse, bind and evaluate an expression against a single record in one
/// call. Convenient for tests and one-off evaluation; hot paths should
/// [`parse`] once, [`Expr::bind`] once and reuse the [`BoundExpr`].
pub fn eval_once(text: &str, schema: &Schema, record: &Record) -> Result<Value> {
    let expr = parse(text)?;
    let bound = expr.bind(schema)?;
    bound.eval(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::DataType;

    #[test]
    fn end_to_end_eval() {
        let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
        let rec = Record::from_iter([Value::from("IBM"), Value::Float(101.5)]);
        let v = eval_once("sym = 'IBM' AND px > 100", &schema, &rec).unwrap();
        assert_eq!(v, Value::Bool(true));
    }
}
