//! Recursive-descent parser for the expression grammar.

use evdb_types::{Error, Result, TimestampMs, Value};

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::token::{tokenize, Token, TokenKind};

/// Parse one complete expression; trailing input is an error.
///
/// # Example
///
/// ```
/// use evdb_expr::parse;
/// use evdb_types::{DataType, Record, Schema, Value};
///
/// let expr = parse("sym = 'IBM' AND px > 100").unwrap();
/// // Expressions are data: printing is lossless.
/// assert_eq!(parse(&expr.to_string()).unwrap(), expr);
///
/// let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
/// let bound = expr.bind_predicate(&schema).unwrap();
/// let tick = Record::from_iter([Value::from("IBM"), Value::Float(101.5)]);
/// assert!(bound.matches(&tick).unwrap());
/// ```
pub fn parse(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_expr()?;
    p.expect_eof()?;
    Ok(expr)
}

/// A token-stream parser. Exposed (crate-internal visibility escape) so the
/// CQL parser in `evdb-cq` can reuse expression parsing mid-statement.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Build a parser over pre-lexed tokens.
    pub fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    /// Current token.
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// Advance and return the consumed token.
    pub fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// If the current token is the keyword `kw` (case-insensitive), consume
    /// it and return true.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().kind.keyword().as_deref() == Some(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume the keyword `kw` or error.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::parse(
                self.peek().offset,
                format!("expected {kw}, found {:?}", self.peek().kind),
            ))
        }
    }

    /// If the current token equals `kind`, consume it and return true.
    pub fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Consume `kind` or error.
    pub fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::parse(
                self.peek().offset,
                format!("expected {kind:?}, found {:?}", self.peek().kind),
            ))
        }
    }

    /// Consume an identifier or error.
    pub fn expect_ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(Error::parse(
                self.peek().offset,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// Error unless the whole input has been consumed.
    pub fn expect_eof(&mut self) -> Result<()> {
        match self.peek().kind {
            TokenKind::Eof => Ok(()),
            ref other => Err(Error::parse(
                self.peek().offset,
                format!("unexpected trailing input: {other:?}"),
            )),
        }
    }

    /// Entry point: parse a full boolean/arithmetic expression.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // Comparison operators.
        let cmp = match self.peek().kind {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::Ne => Some(BinaryOp::Ne),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::Le => Some(BinaryOp::Le),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::Ge => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = cmp {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }

        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] BETWEEN / IN / LIKE
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect(&TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(Error::parse(
                self.peek().offset,
                "expected BETWEEN, IN or LIKE after NOT",
            ));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            // Fold negation into numeric literals for cleaner ASTs.
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(n)) => Expr::Literal(Value::Int(-n)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.parse_primary()
    }

    /// `CASE [operand] WHEN w THEN t … [ELSE e] END` (the CASE keyword
    /// is already consumed).
    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if self.peek().kind.keyword().as_deref() == Some("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let w = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let t = self.parse_expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(Error::parse(
                self.peek().offset,
                "CASE needs at least one WHEN branch",
            ));
        }
        let else_expr = if self.eat_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Int(n) => Ok(Expr::Literal(Value::Int(n))),
            TokenKind::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::from(s))),
            TokenKind::Timestamp(t) => Ok(Expr::Literal(Value::Timestamp(TimestampMs(t)))),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                match name.to_ascii_uppercase().as_str() {
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "CASE" => return self.parse_case(),
                    _ => {}
                }
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Ok(Expr::Func {
                        name: name.to_ascii_lowercase(),
                        args,
                    })
                } else {
                    Ok(Expr::Field(name))
                }
            }
            other => Err(Error::parse(
                tok.offset,
                format!("unexpected token {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> String {
        parse(src).unwrap().to_string()
    }

    #[test]
    fn precedence() {
        assert_eq!(rt("1 + 2 * 3"), "1 + 2 * 3");
        assert_eq!(rt("(1 + 2) * 3"), "(1 + 2) * 3");
        assert_eq!(rt("a OR b AND c"), "a OR b AND c");
        assert_eq!(rt("(a OR b) AND c"), "(a OR b) AND c");
        assert_eq!(rt("NOT a AND b"), "NOT a AND b"); // NOT binds tighter than AND
    }

    #[test]
    fn predicates() {
        assert_eq!(rt("x between 1 and 5"), "x BETWEEN 1 AND 5");
        assert_eq!(rt("x not in (1, 2)"), "x NOT IN (1, 2)");
        assert_eq!(rt("s like 'a%'"), "s LIKE 'a%'");
        assert_eq!(rt("s is not null"), "s IS NOT NULL");
        assert_eq!(rt("NOT x = 1"), "NOT x = 1");
    }

    #[test]
    fn literals() {
        assert_eq!(rt("true AND false"), "true AND false");
        assert_eq!(rt("NULL is null"), "NULL IS NULL");
        assert_eq!(rt("@42 > @41"), "@42 > @41");
        assert_eq!(rt("-5"), "-5");
        assert_eq!(rt("-x"), "-x");
        assert_eq!(rt("- 5.5"), "-5.5");
    }

    #[test]
    fn functions() {
        assert_eq!(rt("ABS(x - 1)"), "abs(x - 1)");
        assert_eq!(rt("coalesce(a, b, 0)"), "coalesce(a, b, 0)");
        assert_eq!(rt("now()"), "now()");
    }

    #[test]
    fn errors() {
        assert!(parse("1 +").is_err());
        assert!(parse("(1").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("x NOT 5").is_err());
        assert!(parse("x in ()").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            rt("case when a > 1 then 'hi' else 'lo' end"),
            "CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END"
        );
        assert_eq!(
            rt("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"),
            "CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"
        );
        // Nested CASE round-trips.
        assert_eq!(
            rt("CASE WHEN a THEN CASE WHEN b THEN 1 ELSE 2 END ELSE 3 END"),
            "CASE WHEN a THEN CASE WHEN b THEN 1 ELSE 2 END ELSE 3 END"
        );
        assert!(parse("CASE END").is_err());
        assert!(parse("CASE WHEN a THEN 1").is_err()); // missing END
        assert!(parse("CASE x THEN 1 END").is_err());
    }

    #[test]
    fn round_trip_is_stable() {
        for src in [
            "a AND (b OR NOT c)",
            "price * 1.05 >= limit_px",
            "sym IN ('A', 'B') AND qty BETWEEN 10 AND 100",
            "substr(name, 1, 3) = 'Bob' OR name IS NULL",
            "x % 2 = 0 AND -y < 3",
            "CASE grade WHEN 1 THEN 'a' ELSE upper(x) END LIKE 'A%'",
        ] {
            let once = rt(src);
            let twice = rt(&once);
            assert_eq!(once, twice, "unstable round trip for {src}");
        }
    }
}
