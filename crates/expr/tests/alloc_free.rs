//! Structural guarantee behind D11's "allocation-free eval loop": once
//! compiled, evaluating a predicate over a record performs **zero heap
//! allocation** on the common paths — numeric comparisons, logic,
//! BETWEEN/IN, and constant-pattern LIKE over borrowed strings. A
//! counting global allocator makes the claim checkable instead of
//! aspirational.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use evdb_expr::{parse, CompiledExpr};
use evdb_types::{DataType, FieldDef, Record, Schema, Value};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        FieldDef::nullable("a", DataType::Int),
        FieldDef::nullable("b", DataType::Float),
        FieldDef::nullable("s", DataType::Str),
    ])
    .unwrap()
}

/// Count allocations across `iters` evaluations of `predicate`.
fn allocs_per_eval(predicate: &str, record: &Record, iters: u64) -> u64 {
    let s = schema();
    let compiled = CompiledExpr::compile(&parse(predicate).unwrap().bind_predicate(&s).unwrap());
    // Warm once: thread-local scratch (function args) may lazily
    // initialize on first use; steady-state is what callers pay.
    let _ = compiled.matches(record).unwrap();
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..iters {
        std::hint::black_box(compiled.matches(std::hint::black_box(record)).unwrap());
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn numeric_path_is_allocation_free() {
    let r = Record::new(vec![
        Value::Int(42),
        Value::Float(3.5),
        Value::from("IBM-preferred"),
    ]);
    // Comparisons, arithmetic, BETWEEN, IN, logic: zero allocations.
    assert_eq!(
        allocs_per_eval(
            "a > 10 AND b < 100.0 AND a BETWEEN 0 AND 50 AND a IN (41, 42, 43) AND a * 2 + 1 = 85",
            &r,
            1000,
        ),
        0,
        "numeric compiled path allocated on the heap"
    );
}

#[test]
fn string_compare_and_like_are_allocation_free() {
    let r = Record::new(vec![
        Value::Int(7),
        Value::Float(1.0),
        Value::from("IBM-preferred"),
    ]);
    // Equality on borrowed strings and precompiled LIKE shapes
    // (prefix/infix/generic with `_`) never clone the text.
    assert_eq!(
        allocs_per_eval(
            "s = 'IBM-preferred' AND s LIKE 'IBM%' AND s LIKE '%prefer%' AND s LIKE 'IBM_preferred'",
            &r,
            1000,
        ),
        0,
        "string compiled path allocated on the heap"
    );
}

#[test]
fn null_heavy_path_is_allocation_free() {
    let r = Record::new(vec![Value::Null, Value::Null, Value::Null]);
    assert_eq!(
        allocs_per_eval(
            "a IS NULL AND (b > 0 OR s IS NOT NULL OR a BETWEEN 1 AND 2) IS NULL",
            &r,
            1000,
        ),
        0,
        "NULL-propagation path allocated on the heap"
    );
}
