//! Structural guarantee behind D11's "allocation-free eval loop": once
//! compiled, evaluating a predicate over a record performs **zero heap
//! allocation** on the common paths — numeric comparisons, logic,
//! BETWEEN/IN, and constant-pattern LIKE over borrowed strings. A
//! counting global allocator makes the claim checkable instead of
//! aspirational.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use evdb_expr::{parse, BatchScratch, CompiledExpr};
use evdb_types::{DataType, FieldDef, Record, Schema, Value};

struct CountingAlloc;

// Per-thread count: a process-global counter picks up allocations from
// libtest's harness threads (e.g. the lazy blocking-context init inside
// `mpsc::recv`) and flakes the assertions. Const-init + no destructor
// means accessing this inside the allocator can never itself allocate.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        FieldDef::nullable("a", DataType::Int),
        FieldDef::nullable("b", DataType::Float),
        FieldDef::nullable("s", DataType::Str),
    ])
    .unwrap()
}

/// Count allocations across `iters` evaluations of `predicate`.
fn allocs_per_eval(predicate: &str, record: &Record, iters: u64) -> u64 {
    let s = schema();
    let compiled = CompiledExpr::compile(&parse(predicate).unwrap().bind_predicate(&s).unwrap());
    // Warm once: thread-local scratch (function args) may lazily
    // initialize on first use; steady-state is what callers pay.
    let _ = compiled.matches(record).unwrap();
    let before = thread_allocs();
    for _ in 0..iters {
        std::hint::black_box(compiled.matches(std::hint::black_box(record)).unwrap());
    }
    thread_allocs() - before
}

/// Count allocations across `batches` batch evaluations of `predicate`
/// over `rows`, with one [`BatchScratch`] reused throughout (as the hot
/// path holds one per evaluating thread).
fn allocs_per_batch(predicate: &str, rows: &[Record], batches: u64) -> u64 {
    let s = schema();
    let compiled = CompiledExpr::compile(&parse(predicate).unwrap().bind_predicate(&s).unwrap());
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    // Warm once: scratch buffers and the output vector size themselves
    // to the batch on first use; steady-state reuses them.
    compiled.matches_batch(rows, |r| r, &mut scratch, &mut out);
    let before = thread_allocs();
    for _ in 0..batches {
        compiled.matches_batch(std::hint::black_box(rows), |r| r, &mut scratch, &mut out);
        std::hint::black_box(&out);
    }
    thread_allocs() - before
}

#[test]
fn numeric_path_is_allocation_free() {
    let r = Record::new(vec![
        Value::Int(42),
        Value::Float(3.5),
        Value::from("IBM-preferred"),
    ]);
    // Comparisons, arithmetic, BETWEEN, IN, logic: zero allocations.
    assert_eq!(
        allocs_per_eval(
            "a > 10 AND b < 100.0 AND a BETWEEN 0 AND 50 AND a IN (41, 42, 43) AND a * 2 + 1 = 85",
            &r,
            1000,
        ),
        0,
        "numeric compiled path allocated on the heap"
    );
}

#[test]
fn string_compare_and_like_are_allocation_free() {
    let r = Record::new(vec![
        Value::Int(7),
        Value::Float(1.0),
        Value::from("IBM-preferred"),
    ]);
    // Equality on borrowed strings and precompiled LIKE shapes
    // (prefix/infix/generic with `_`) never clone the text.
    assert_eq!(
        allocs_per_eval(
            "s = 'IBM-preferred' AND s LIKE 'IBM%' AND s LIKE '%prefer%' AND s LIKE 'IBM_preferred'",
            &r,
            1000,
        ),
        0,
        "string compiled path allocated on the heap"
    );
}

#[test]
fn batch_eval_is_allocation_free_per_event() {
    // 64 records per batch, mixed pass/fail so the selection vector
    // actually shrinks mid-batch; 1000 batches = 64k events.
    let rows: Vec<Record> = (0..64)
        .map(|i| {
            Record::new(vec![
                Value::Int(i),
                Value::Float(i as f64 / 2.0),
                Value::from(if i % 2 == 0 { "IBM-preferred" } else { "MSFT" }),
            ])
        })
        .collect();
    assert_eq!(
        allocs_per_batch(
            "a > 10 AND b < 100.0 AND a BETWEEN 0 AND 50 AND a * 2 + 1 <> 85 AND s LIKE 'IBM%'",
            &rows,
            1000,
        ),
        0,
        "batch path allocated on the heap after warmup"
    );
}

#[test]
fn batch_eval_string_values_are_allocation_free() {
    // String operands flow through owned Value slots in the batch
    // stacks; `Value::Str` is refcounted, so the copies must not touch
    // the heap.
    let rows: Vec<Record> = (0..64)
        .map(|i| {
            Record::new(vec![
                Value::Int(i),
                Value::Float(1.0),
                Value::from("IBM-preferred"),
            ])
        })
        .collect();
    assert_eq!(
        allocs_per_batch(
            "s = 'IBM-preferred' AND s LIKE '%prefer%' AND s IS NOT NULL",
            &rows,
            1000,
        ),
        0,
        "batch string path allocated on the heap after warmup"
    );
}

#[test]
fn null_heavy_path_is_allocation_free() {
    let r = Record::new(vec![Value::Null, Value::Null, Value::Null]);
    assert_eq!(
        allocs_per_eval(
            "a IS NULL AND (b > 0 OR s IS NOT NULL OR a BETWEEN 1 AND 2) IS NULL",
            &r,
            1000,
        ),
        0,
        "NULL-propagation path allocated on the heap"
    );
}
