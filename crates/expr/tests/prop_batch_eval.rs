//! Differential property tests for the batch evaluator (D15): for
//! random expression trees, random records, and random batch sizes,
//! `CompiledExpr::eval_batch` must be **byte-identical** to per-event
//! `CompiledExpr::eval` — same values, same NULL 3VL, same errors with
//! the same messages (error-surfacing order inside a record is part of
//! the contract) — and value-identical to the tree interpreter where
//! both succeed. Scratch reuse across batches must not leak state
//! between calls.

use proptest::prelude::*;

use evdb_expr::{BatchScratch, BinaryOp, CompiledExpr, Expr, UnaryOp};
use evdb_types::{DataType, FieldDef, Record, Schema, Value};

/// Leaves over the test schema `(a INT, b FLOAT, s STR, flag BOOL)`,
/// with overflow-edge integers so fallible arithmetic is exercised.
fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-100i64..100).prop_map(Expr::lit),
        Just(Expr::lit(i64::MAX)),
        Just(Expr::lit(i64::MIN)),
        Just(Expr::lit(0i64)),
        (-100.0f64..100.0).prop_map(|f| Expr::lit((f * 10.0).round() / 10.0)),
        "[a-cé%_]{0,4}".prop_map(|s| Expr::lit(s.as_str())),
        Just(Expr::lit(true)),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::field("a")),
        Just(Expr::field("b")),
        Just(Expr::field("s")),
        Just(Expr::field("flag")),
    ]
}

/// Trees mixing straight-line shapes (comparisons, arithmetic,
/// BETWEEN, LIKE, functions) with control-flow ones (CASE, IN) so both
/// the vectorized interpreter and its record-at-a-time fallback run.
fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(3, 48, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Lt, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Eq, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Add, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Mul, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Div, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinaryOp::Mod, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner.clone(), "[a-cé%_]{0,4}", any::<bool>()).prop_map(|(e, p, negated)| {
                Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(Expr::lit(p.as_str())),
                    negated,
                }
            }),
            inner.clone().prop_map(|e| Expr::Func {
                name: "abs".into(),
                args: vec![e]
            }),
            (inner.clone(), inner.clone()).prop_map(|(e, n)| Expr::Func {
                name: "substr".into(),
                args: vec![e, n]
            }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner),
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    operand: None,
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
        ]
    })
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        FieldDef::nullable("a", DataType::Int),
        FieldDef::nullable("b", DataType::Float),
        FieldDef::nullable("s", DataType::Str),
        FieldDef::nullable("flag", DataType::Bool),
    ])
    .unwrap()
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::option::of(prop_oneof![
            -100i64..100,
            Just(i64::MAX),
            Just(i64::MIN),
            Just(0i64)
        ]),
        proptest::option::of(-100.0f64..100.0),
        proptest::option::of("[a-cé]{0,4}"),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(a, b, s, f)| {
            Record::new(vec![
                a.map(Value::Int).unwrap_or(Value::Null),
                b.map(Value::Float).unwrap_or(Value::Null),
                s.map(|x| Value::from(x.as_str())).unwrap_or(Value::Null),
                f.map(Value::Bool).unwrap_or(Value::Null),
            ])
        })
}

/// Batch output vs per-record `eval`: values equal, errors equal *by
/// message* (same engine, so the surfaced error — and therefore which
/// instruction raised it first — must be identical).
fn assert_batch_identical(
    expr: &Expr,
    compiled: &CompiledExpr,
    records: &[Record],
    scratch: &mut BatchScratch,
) -> Result<(), TestCaseError> {
    let mut out = Vec::new();
    compiled.eval_batch(records, |r| r, scratch, &mut out);
    prop_assert_eq!(out.len(), records.len());
    for (i, (r, got)) in records.iter().zip(&out).enumerate() {
        match (compiled.eval(r), got) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                &a,
                b,
                "batch diverges from per-event at [{}] on `{}` over {:?}",
                i,
                expr,
                r
            ),
            (Err(a), Err(b)) => prop_assert_eq!(
                a.to_string(),
                b.to_string(),
                "batch surfaces a different error at [{}] on `{}` over {:?}",
                i,
                expr,
                r
            ),
            (a, b) => prop_assert!(
                false,
                "only one path errored at [{}] on `{}` over {:?}: per-event={:?} batch={:?}",
                i,
                expr,
                r,
                a,
                b
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The core property: batch ≡ per-event ≡ interpreter, across
    /// random batch sizes, with one scratch reused for every batch.
    #[test]
    fn batch_agrees_with_per_event_and_interpreter(
        e in arb_expr(),
        rs in proptest::collection::vec(arb_record(), 0..24),
    ) {
        let schema = schema();
        let Ok(bound) = e.bind(&schema) else { return Ok(()) };
        let compiled = CompiledExpr::compile(&bound);
        let mut scratch = BatchScratch::new();
        // Twice with the same scratch: the second run catches any state
        // leaking between batches.
        assert_batch_identical(&e, &compiled, &rs, &mut scratch)?;
        assert_batch_identical(&e, &compiled, &rs, &mut scratch)?;
        // Against the tree interpreter where both succeed.
        let mut out = Vec::new();
        compiled.eval_batch(&rs, |r| r, &mut scratch, &mut out);
        for (r, got) in rs.iter().zip(&out) {
            if let (Ok(a), Ok(b)) = (bound.eval(r), got) {
                prop_assert_eq!(&a, b, "batch diverges from interpreter on `{}` over {:?}", &e, r);
            }
        }
    }

    /// `matches_batch` ≡ `matches`, and the selection vector holds
    /// exactly the matching indices in order.
    #[test]
    fn matches_batch_agrees(
        e in arb_expr(),
        rs in proptest::collection::vec(arb_record(), 0..24),
    ) {
        let schema = schema();
        let Ok(bound) = e.bind_predicate(&schema) else { return Ok(()) };
        let compiled = CompiledExpr::compile(&bound);
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        compiled.matches_batch(&rs, |r| r, &mut scratch, &mut out);
        prop_assert_eq!(out.len(), rs.len());
        let mut want_sel = Vec::new();
        for (i, (r, got)) in rs.iter().zip(&out).enumerate() {
            match (compiled.matches(r), got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a, *b, "matches diverges at [{}] on `{}` over {:?}", i, &e, r);
                    if a {
                        want_sel.push(i as u32);
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(
                    false,
                    "only one path errored at [{}] on `{}`: per-event={:?} batch={:?}",
                    i, &e, a, b
                ),
            }
        }
        prop_assert_eq!(scratch.selection(), want_sel.as_slice());
    }
}

/// Deterministic spot checks for the semantics the batch path must not
/// bend: mid-batch errors kill only their record, short-circuit FALSE
/// skips later (fallible) blocks, NULL accumulates per Kleene AND.
#[test]
fn batch_error_isolation_and_short_circuit() {
    let s = schema();
    let compiled = CompiledExpr::compile(
        &evdb_expr::parse("a < 10 AND abs(a) >= 0")
            .unwrap()
            .bind_predicate(&s)
            .unwrap(),
    );
    let rows = vec![
        Record::new(vec![Value::Int(1), Value::Null, Value::Null, Value::Null]),
        // abs(i64::MIN) overflows — but only if the first conjunct passes.
        Record::new(vec![Value::Int(i64::MIN), Value::Null, Value::Null, Value::Null]),
        // First conjunct FALSE: fallible block must never run.
        Record::new(vec![Value::Int(99), Value::Null, Value::Null, Value::Null]),
        Record::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
    ];
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    compiled.eval_batch(&rows, |r| r, &mut scratch, &mut out);
    assert_eq!(out[0].as_ref().unwrap(), &Value::Bool(true));
    assert!(out[1].is_err(), "overflow must surface for its record");
    assert_eq!(out[2].as_ref().unwrap(), &Value::Bool(false));
    assert_eq!(out[3].as_ref().unwrap(), &Value::Null, "NULL AND … stays NULL");
}
