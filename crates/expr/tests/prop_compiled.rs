//! Differential property tests: the bytecode engine against the tree
//! interpreter it replaced (D11). For random expression trees and random
//! records — including NULLs, i64 overflow edges, division/modulo by
//! zero, and Unicode LIKE patterns — the compiled result (value *or*
//! error) must be identical to the interpreted one. The interpreter is
//! the oracle; any divergence is a compiler bug.

use proptest::prelude::*;

use evdb_expr::{BinaryOp, CompiledExpr, Expr, UnaryOp};
use evdb_types::{DataType, FieldDef, Record, Schema, Value};

/// Leaves: literals (with overflow-edge integers and Unicode strings)
/// and fields of the test schema `(a INT, b FLOAT, s STR, flag BOOL)`.
fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(Expr::lit),
        // Overflow edges: +, -, *, unary - and % must error (not wrap)
        // identically in both engines.
        Just(Expr::lit(i64::MAX)),
        Just(Expr::lit(i64::MIN)),
        Just(Expr::lit(-1i64)),
        Just(Expr::lit(0i64)),
        (-1000.0f64..1000.0).prop_map(|f| Expr::lit((f * 100.0).round() / 100.0)),
        "[a-zà-ö%_]{0,6}".prop_map(|s| Expr::lit(s.as_str())),
        Just(Expr::lit(true)),
        Just(Expr::lit(false)),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::field("a")),
        Just(Expr::field("b")),
        Just(Expr::field("s")),
        Just(Expr::field("flag")),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            // Logic (three-valued, short-circuiting in both engines).
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Lt, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Ge, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Eq, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Ne, l, r)),
            // Arithmetic: checked overflow, Div/Mod by zero ⇒ NULL.
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Add, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Sub, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Mul, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Div, l, r)),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::binary(BinaryOp::Mod, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            // LIKE with Unicode text and patterns; constant patterns
            // exercise the precompiled shapes, field patterns the
            // generic path.
            (inner.clone(), arb_like_pattern(), any::<bool>()).prop_map(
                |(e, p, negated)| Expr::Like {
                    expr: Box::new(e),
                    pattern: Box::new(p),
                    negated,
                }
            ),
            // Functions: fallible (abs/substr) and string ones.
            inner.clone().prop_map(|e| Expr::Func {
                name: "abs".into(),
                args: vec![e]
            }),
            inner.clone().prop_map(|e| Expr::Func {
                name: "lower".into(),
                args: vec![e]
            }),
            (inner.clone(), inner.clone()).prop_map(|(e, n)| Expr::Func {
                name: "substr".into(),
                args: vec![e, n]
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Func {
                name: "coalesce".into(),
                args: vec![a, b]
            }),
            // Searched CASE.
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone()),
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    operand: None,
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            // Operand CASE.
            (
                inner.clone(),
                proptest::collection::vec((inner.clone(), inner), 1..3),
            )
                .prop_map(|(op, branches)| Expr::Case {
                    operand: Some(Box::new(op)),
                    branches,
                    else_expr: None,
                }),
        ]
    })
}

/// LIKE patterns: mostly constant strings heavy in `%`/`_`/Unicode (so
/// the compiler's shape classifier is exercised), sometimes a field.
fn arb_like_pattern() -> impl Strategy<Value = Expr> {
    prop_oneof![
        4 => "[a-cé%_]{0,5}".prop_map(|s| Expr::lit(s.as_str())),
        1 => Just(Expr::field("s")),
    ]
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::new(vec![
        FieldDef::nullable("a", DataType::Int),
        FieldDef::nullable("b", DataType::Float),
        FieldDef::nullable("s", DataType::Str),
        FieldDef::nullable("flag", DataType::Bool),
    ])
    .unwrap()
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        proptest::option::of(prop_oneof![
            -1000i64..1000,
            Just(i64::MAX),
            Just(i64::MIN),
            Just(0i64),
        ]),
        proptest::option::of(-1000.0f64..1000.0),
        proptest::option::of("[a-zà-ö]{0,6}"),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(a, b, s, f)| {
            Record::new(vec![
                a.map(Value::Int).unwrap_or(Value::Null),
                b.map(Value::Float).unwrap_or(Value::Null),
                s.map(|x| Value::from(x.as_str())).unwrap_or(Value::Null),
                f.map(Value::Bool).unwrap_or(Value::Null),
            ])
        })
}

/// Interpreted and compiled evaluation must agree exactly — same value
/// on success, both-error on failure.
fn assert_agree(expr: &Expr, record: &Record) -> Result<(), TestCaseError> {
    let schema = schema();
    let Ok(bound) = expr.bind(&schema) else {
        return Ok(()); // ill-typed tree: nothing to compare
    };
    let compiled = CompiledExpr::compile(&bound);
    let interpreted = bound.eval(record);
    let vm = compiled.eval(record);
    match (interpreted, vm) {
        (Ok(a), Ok(b)) => prop_assert_eq!(
            &a, &b,
            "engines diverge on `{}` over {:?}", expr, record
        ),
        (Err(_), Err(_)) => {} // e.g. integer overflow, in both engines
        (a, b) => prop_assert!(
            false,
            "one engine errored on `{}` over {:?}: interpreted={:?} compiled={:?}",
            expr, record, a, b
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// The core differential property.
    #[test]
    fn compiled_agrees_with_interpreter(e in arb_expr(), r in arb_record()) {
        assert_agree(&e, &r)?;
    }

    /// `matches` (NULL ⇒ false) agrees too, through the candidate-verify
    /// entry point the rule matchers use.
    #[test]
    fn compiled_matches_agrees(e in arb_expr(), r in arb_record()) {
        let schema = schema();
        let Ok(bound) = e.bind_predicate(&schema) else { return Ok(()) };
        let compiled = CompiledExpr::compile(&bound);
        match (bound.matches(&r), compiled.matches(&r)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "matches diverges on `{}` over {:?}", e, r),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "one engine errored on `{}` over {:?}: interpreted={:?} compiled={:?}",
                e, r, a, b
            ),
        }
    }
}

/// Regressions distilled from past differential runs (the seed file
/// `prop_compiled.proptest-regressions` documents their provenance).
/// Each is re-checked explicitly so the cases survive shim changes.
#[test]
fn regression_cases() {
    let records: &[&[Value]] = &[
        &[Value::Null, Value::Null, Value::Null, Value::Null],
        &[
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::from("é"),
            Value::Bool(false),
        ],
        &[
            Value::Int(-1),
            Value::Float(-0.5),
            Value::from("αβ%"),
            Value::Bool(true),
        ],
    ];
    let cases = [
        // i64::MIN % -1 overflows in hardware; both engines must error.
        "a % -1 = 0",
        // Division by NULL and by zero stay NULL through the fold.
        "1 / (a - a) IS NULL",
        "b / NULL IS NULL",
        // Unicode LIKE: '_' is one *character*, not one byte.
        "s LIKE '_'",
        "s LIKE '%é%'",
        "s LIKE 'α_'",
        // Constant BETWEEN bounds fold; NULL operand stays NULL.
        "a BETWEEN 0 AND 10",
        "(NULL BETWEEN 0 AND 10) IS NULL",
        // IN with NULLs: x IN (…) is NULL, never false, when x is NULL.
        "(a IN (1, 2, NULL)) IS NULL OR a IS NOT NULL",
        // Short-circuit keeps the erroring conjunct unevaluated.
        "1 = 2 AND abs(a) > 0",
        // CASE with NULL scrutinee never matches a WHEN.
        "CASE a WHEN 1 THEN 'x' ELSE 'y' END = 'y' OR a = 1",
    ];
    for text in cases {
        let expr = evdb_expr::parse(text).unwrap();
        for vals in records {
            let r = Record::new(vals.to_vec());
            assert_agree(&expr, &r).unwrap_or_else(|e| panic!("{text}: {e:?}"));
        }
    }
}
