//! Fold-at-compile-time regression test (D11): constant subtrees —
//! BETWEEN bounds in particular — are evaluated exactly once, when the
//! expression is compiled, and never again per event. Asserted through
//! the process-wide fold-statistics counters (D9: the optimizer's work
//! is observable, not silent).

use evdb_expr::{compiler_stats, parse, CompiledExpr};
use evdb_types::{DataType, FieldDef, Record, Schema, Value};

#[test]
fn between_bounds_fold_exactly_once_per_compile() {
    let schema = Schema::new(vec![FieldDef::nullable("a", DataType::Int)]).unwrap();
    let bound = parse("a BETWEEN 10 * 10 AND 10 * 10 + 50")
        .unwrap()
        .bind_predicate(&schema)
        .unwrap();

    let before = compiler_stats();
    let compiled = CompiledExpr::compile(&bound);
    let after_compile = compiler_stats();

    // Both computed bounds collapsed to constants at compile time…
    assert_eq!(after_compile.compiled_total - before.compiled_total, 1);
    assert_eq!(
        after_compile.folded_subtrees - before.folded_subtrees,
        2,
        "expected exactly the two BETWEEN bounds to fold"
    );
    assert_eq!(compiled.fold_stats().folded_subtrees, 2);

    // …and evaluation does no further folding work: the counters are
    // compile-time-only, so a million events re-evaluate nothing.
    for i in 0..1000 {
        let r = Record::new(vec![Value::Int(i)]);
        let expect = (100..=150).contains(&i);
        assert_eq!(compiled.matches(&r).unwrap(), expect);
    }
    let after_eval = compiler_stats();
    assert_eq!(
        after_eval.folded_subtrees, after_compile.folded_subtrees,
        "evaluation must not re-run the folder"
    );
    assert_eq!(after_eval.compiled_total, after_compile.compiled_total);

    // Recompiling pays the fold again — once per compile, not per event.
    let _again = CompiledExpr::compile(&bound);
    let after_recompile = compiler_stats();
    assert_eq!(
        after_recompile.folded_subtrees - after_eval.folded_subtrees,
        2
    );
}
