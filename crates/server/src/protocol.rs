//! The text request/response protocol carried inside frames.
//!
//! Requests are single frames; the first word selects the command:
//!
//! ```text
//! PING
//! CREATE STREAM <name> <field>:<type>[,<field>:<type>...]
//! CREATE TABLE <name> <field>:<type>[,...] KEY <field>
//! CAPTURE <table> TRIGGER|JOURNAL
//! REGISTER QUERY <name> <cql...>
//! INGEST <stream> <ts-ms> <v1>,<v2>,...
//! INSERT <table> <v1>,<v2>,...
//! SUBSCRIBE <query>
//! UNSUBSCRIBE <query>
//! GET <query>
//! PUMP
//! STATS
//! QUIT
//! ```
//!
//! Replies are `OK[ detail]`, `ROW <row>` (one per result row, before a
//! closing `OK <n> rows`), `UPDATE <query> +|- <row>` (subscription
//! push; `-` marks a retraction delta from `on_query_updates`), or
//! `ERR <kind> <message>` where `<kind>` is the machine-readable
//! [`evdb_types::Error::kind`] (`overloaded`, `not_found`, `parse`, …)
//! plus the protocol-level `proto` for malformed requests.
//!
//! Ingest payload values are typed by the target schema, comma
//! separated: `INT`/`FLOAT`/`TIMESTAMP` as decimal text, `BOOL` as
//! `true`/`false`, `STR` as raw text (commas and leading/trailing
//! whitespace need the quoted form `'a, b'`, `''` escaping a quote),
//! `BYTES` as `x'<hex>'`, and `NULL` for any nullable field. Rows in
//! replies render values the same way, so a transcript reads uniformly.
//!
//! Inside a quoted string, `\n`, `\r`, and `\\` are escape sequences
//! for newline, carriage return, and backslash (any other `\x` is
//! literal). [`render_value`] always emits those escapes, so a
//! rendered row is guaranteed newline-free no matter what the column
//! holds — which is what keeps one-row-per-line delivery framing (SSE
//! `data:` events, HTTP `/query` bodies, newline-framed TCP replies)
//! immune to hostile string values, round-trippable via
//! [`parse_record`].

use std::sync::Arc;

use evdb_types::{DataType, Error, Record, Result, Schema, TimestampMs, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe → `PONG`.
    Ping,
    /// Declare a free-standing stream.
    CreateStream { name: String, schema: Arc<Schema> },
    /// Create a table (primary key by field name).
    CreateTable {
        name: String,
        schema: Arc<Schema>,
        key: String,
    },
    /// Capture a table's changes into a stream.
    Capture { table: String, journal: bool },
    /// Register a CQL continuous query.
    RegisterQuery { name: String, cql: String },
    /// Stage one event on a stream (admission-controlled).
    Ingest {
        stream: String,
        ts: TimestampMs,
        values: String,
    },
    /// Insert a row into a table (trigger captures run in-transaction,
    /// so `Reject` rolls the write back).
    Insert { table: String, values: String },
    /// Start streaming a query's update deltas to this session.
    Subscribe { query: String },
    /// Stop streaming a query to this session.
    Unsubscribe { query: String },
    /// Read a query's current materialized rows.
    Get { query: String },
    /// Drain the staged buffer through the pipeline once.
    Pump,
    /// One-line ingest accounting summary.
    Stats,
    /// Close the session.
    Quit,
}

/// Parse one request frame. `Err` carries a human message; the caller
/// wraps it as `ERR proto …`.
pub fn parse_request(line: &str) -> std::result::Result<Request, String> {
    let line = line.trim();
    let (cmd, rest) = split_word(line);
    match cmd.to_ascii_uppercase().as_str() {
        "PING" => expect_empty(rest, Request::Ping),
        "QUIT" => expect_empty(rest, Request::Quit),
        "PUMP" => expect_empty(rest, Request::Pump),
        "STATS" => expect_empty(rest, Request::Stats),
        "CREATE" => {
            let (what, rest) = split_word(rest);
            match what.to_ascii_uppercase().as_str() {
                "STREAM" => {
                    let (name, spec) = split_word(rest);
                    if name.is_empty() || spec.is_empty() {
                        return Err("usage: CREATE STREAM <name> <field>:<type>,...".into());
                    }
                    Ok(Request::CreateStream {
                        name: name.to_string(),
                        schema: parse_schema(spec)?,
                    })
                }
                "TABLE" => {
                    let (name, rest) = split_word(rest);
                    let Some((spec, key)) = rest.rsplit_once(" KEY ") else {
                        return Err(
                            "usage: CREATE TABLE <name> <field>:<type>,... KEY <field>".into()
                        );
                    };
                    if name.is_empty() {
                        return Err("CREATE TABLE needs a name".into());
                    }
                    Ok(Request::CreateTable {
                        name: name.to_string(),
                        schema: parse_schema(spec.trim())?,
                        key: key.trim().to_string(),
                    })
                }
                other => Err(format!("unknown CREATE target '{other}'")),
            }
        }
        "CAPTURE" => {
            let (table, mech) = split_word(rest);
            let journal = match mech.trim().to_ascii_uppercase().as_str() {
                "TRIGGER" => false,
                "JOURNAL" => true,
                other => return Err(format!("unknown capture mechanism '{other}'")),
            };
            Ok(Request::Capture {
                table: table.to_string(),
                journal,
            })
        }
        "REGISTER" => {
            let (what, rest) = split_word(rest);
            if !what.eq_ignore_ascii_case("QUERY") {
                return Err(format!("unknown REGISTER target '{what}'"));
            }
            let (name, cql) = split_word(rest);
            if name.is_empty() || cql.is_empty() {
                return Err("usage: REGISTER QUERY <name> <cql>".into());
            }
            Ok(Request::RegisterQuery {
                name: name.to_string(),
                cql: cql.to_string(),
            })
        }
        "INGEST" => {
            let (stream, rest) = split_word(rest);
            let (ts, values) = split_word(rest);
            let ts: i64 = ts
                .parse()
                .map_err(|_| format!("bad timestamp '{ts}' (milliseconds expected)"))?;
            if stream.is_empty() || values.is_empty() {
                return Err("usage: INGEST <stream> <ts-ms> <v1>,<v2>,...".into());
            }
            Ok(Request::Ingest {
                stream: stream.to_string(),
                ts: TimestampMs(ts),
                values: values.to_string(),
            })
        }
        "INSERT" => {
            let (table, values) = split_word(rest);
            if table.is_empty() || values.is_empty() {
                return Err("usage: INSERT <table> <v1>,<v2>,...".into());
            }
            Ok(Request::Insert {
                table: table.to_string(),
                values: values.to_string(),
            })
        }
        "SUBSCRIBE" => one_name(rest, "SUBSCRIBE <query>").map(|query| Request::Subscribe { query }),
        "UNSUBSCRIBE" => {
            one_name(rest, "UNSUBSCRIBE <query>").map(|query| Request::Unsubscribe { query })
        }
        "GET" => one_name(rest, "GET <query>").map(|query| Request::Get { query }),
        "" => Err("empty request".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

fn expect_empty(rest: &str, req: Request) -> std::result::Result<Request, String> {
    if rest.is_empty() {
        Ok(req)
    } else {
        Err(format!("unexpected trailing input '{rest}'"))
    }
}

fn one_name(rest: &str, usage: &str) -> std::result::Result<String, String> {
    let (name, tail) = split_word(rest);
    if name.is_empty() || !tail.is_empty() {
        return Err(format!("usage: {usage}"));
    }
    Ok(name.to_string())
}

/// Parse `field:type[,field:type...]` into a schema. A trailing `?`
/// on the type marks the field nullable.
pub fn parse_schema(spec: &str) -> std::result::Result<Arc<Schema>, String> {
    let mut fields = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let Some((name, ty)) = part.split_once(':') else {
            return Err(format!("bad field spec '{part}' (want name:type)"));
        };
        let (ty, nullable) = match ty.strip_suffix('?') {
            Some(t) => (t, true),
            None => (ty, false),
        };
        let dtype = match ty.trim().to_ascii_uppercase().as_str() {
            "BOOL" => DataType::Bool,
            "INT" => DataType::Int,
            "FLOAT" => DataType::Float,
            "STR" => DataType::Str,
            "BYTES" => DataType::Bytes,
            "TIMESTAMP" | "TS" => DataType::Timestamp,
            other => return Err(format!("unknown type '{other}'")),
        };
        fields.push(if nullable {
            evdb_types::FieldDef::nullable(name.trim(), dtype)
        } else {
            evdb_types::FieldDef::required(name.trim(), dtype)
        });
    }
    Schema::new(fields).map_err(|e| e.to_string())
}

/// Split a value list on commas, honoring `'...'` quoting (with `''`
/// escapes) so string values may contain commas.
fn split_values(s: &str) -> std::result::Result<Vec<&str>, String> {
    let bytes = s.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0;
    let mut i = 0;
    let mut in_quote = false;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' if in_quote && bytes.get(i + 1) == Some(&b'\'') => i += 1, // escaped quote
            b'\'' => in_quote = !in_quote,
            b',' if !in_quote => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if in_quote {
        return Err("unterminated quoted string".into());
    }
    parts.push(&s[start..]);
    Ok(parts)
}

/// Parse one comma-separated value list against `schema`.
pub fn parse_record(schema: &Schema, values: &str) -> Result<Record> {
    let parts = split_values(values).map_err(Error::Schema)?;
    if parts.len() != schema.len() {
        return Err(Error::Schema(format!(
            "expected {} values, got {}",
            schema.len(),
            parts.len()
        )));
    }
    let mut out = Vec::with_capacity(parts.len());
    for (part, field) in parts.iter().zip(schema.fields()) {
        out.push(parse_value(part.trim(), field.dtype)?);
    }
    Ok(Record::new(out))
}

fn parse_value(text: &str, dtype: DataType) -> Result<Value> {
    if text == "NULL" {
        return Ok(Value::Null);
    }
    let bad = |what: &str| Error::Schema(format!("bad {what} value '{text}'"));
    match dtype {
        DataType::Bool => match text {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(bad("BOOL")),
        },
        DataType::Int => text.parse().map(Value::Int).map_err(|_| bad("INT")),
        DataType::Float => text.parse().map(Value::Float).map_err(|_| bad("FLOAT")),
        DataType::Timestamp => text
            .strip_prefix('@')
            .unwrap_or(text)
            .parse()
            .map(|ms| Value::Timestamp(TimestampMs(ms)))
            .map_err(|_| bad("TIMESTAMP")),
        DataType::Str => {
            let inner = match text.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
                Some(inner) => unescape_quoted(inner),
                None => text.to_string(),
            };
            Ok(Value::str(inner))
        }
        DataType::Bytes => {
            let hex = text
                .strip_prefix("x'")
                .and_then(|t| t.strip_suffix('\''))
                .ok_or_else(|| bad("BYTES (want x'<hex>')"))?;
            if hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(bad("BYTES hex"));
            }
            let bytes: Vec<u8> = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("checked hex"))
                .collect();
            Ok(Value::bytes(bytes))
        }
    }
}

/// Decode the quoted-string body: `''` → `'`, `\n`/`\r`/`\\` →
/// newline / carriage return / backslash; any other `\x` stays
/// literal (lenient, so pre-escape clients still round-trip).
fn unescape_quoted(inner: &str) -> String {
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            // Quotes inside the body come in pairs (split_values keeps
            // the frame balanced); fold each pair to one.
            '\'' => {
                chars.next();
                out.push('\'');
            }
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            },
            c => out.push(c),
        }
    }
    out
}

/// Render one value in the protocol's ingest-compatible form. The
/// result never contains `\n` or `\r` — newline-unsafe strings take
/// the quoted form with escapes — so one-row-per-line framing (SSE
/// events, `/query` bodies, line frames) survives any column value.
pub fn render_value(v: &Value) -> String {
    match v {
        // Strings quote only when the raw form would not parse back
        // (commas, quotes, escapes, newlines, surrounding whitespace,
        // or look-alikes).
        Value::Str(s) => {
            let plain = !s.is_empty()
                && !s.contains([',', '\'', '\\', '\n', '\r'])
                && s.trim() == s.as_ref()
                && s.as_ref() != "NULL";
            if plain {
                return s.to_string();
            }
            let mut out = String::with_capacity(s.len() + 2);
            out.push('\'');
            for c in s.chars() {
                match c {
                    '\'' => out.push_str("''"),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('\'');
            out
        }
        other => other.to_string(), // Display already matches the parse forms
    }
}

/// Render a row as a comma-separated value list (the `ROW`/`UPDATE`
/// payload form, re-ingestable via `parse_record`).
pub fn render_row(record: &Record) -> String {
    record
        .values()
        .iter()
        .map(render_value)
        .collect::<Vec<_>>()
        .join(",")
}

/// Render the standard error reply for an engine error.
pub fn render_err(e: &Error) -> String {
    format!("ERR {} {e}", e.kind())
}

/// Render the error reply for a malformed request.
pub fn render_proto_err(msg: &str) -> String {
    format!("ERR proto {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_commands() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("  pump  ").unwrap(), Request::Pump);
        let r = parse_request("INGEST ticks 100 AAPL,1.5").unwrap();
        assert_eq!(
            r,
            Request::Ingest {
                stream: "ticks".into(),
                ts: TimestampMs(100),
                values: "AAPL,1.5".into()
            }
        );
        assert!(matches!(
            parse_request("REGISTER QUERY v SELECT count() AS n FROM t [ROWS 2]").unwrap(),
            Request::RegisterQuery { .. }
        ));
    }

    #[test]
    fn malformed_requests_error_without_panic() {
        for bad in [
            "",
            "FROB",
            "INGEST",
            "INGEST s notanumber 1",
            "CREATE STREAM",
            "CREATE TABLE t a:int",   // missing KEY
            "CREATE STREAM s a:blob", // unknown type
            "SUBSCRIBE a b",
            "PING extra",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn schema_spec_round_trip() {
        let s = parse_schema("sym:str,px:float,n:int?,ok:bool,at:ts").unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.fields()[2].nullable);
        assert_eq!(s.fields()[4].dtype, DataType::Timestamp);
    }

    #[test]
    fn record_parse_and_render_round_trip() {
        let schema = parse_schema("sym:str,px:float,n:int,ok:bool,at:ts,raw:bytes").unwrap();
        let rec = parse_record(&schema, "'A,B''s',1.5,-3,true,@99,x'0aff'").unwrap();
        assert_eq!(rec.get(0), Some(&Value::str("A,B's")));
        assert_eq!(rec.get(1), Some(&Value::Float(1.5)));
        assert_eq!(rec.get(4), Some(&Value::Timestamp(TimestampMs(99))));
        let rendered = render_row(&rec);
        let back = parse_record(&schema, &rendered).unwrap();
        assert_eq!(back, rec, "render must re-parse identically: {rendered}");
    }

    #[test]
    fn newline_unsafe_strings_render_escaped_and_round_trip() {
        let schema = parse_schema("a:str,b:int").unwrap();
        for hostile in [
            "line1\nline2",
            "cr\rhere",
            "crlf\r\nboth",
            "back\\slash",
            "\\n literal-then\nreal",
            "mix,'quote'\n\\",
        ] {
            let rec = Record::new(vec![Value::str(hostile), Value::Int(1)]);
            let rendered = render_row(&rec);
            assert!(
                !rendered.contains(['\n', '\r']),
                "rendered rows must be newline-free: {rendered:?}"
            );
            let back = parse_record(&schema, &rendered).unwrap();
            assert_eq!(back, rec, "escape round trip failed for {hostile:?}");
        }
    }

    #[test]
    fn raw_newline_in_quoted_input_still_parses() {
        // Legacy/length-framed clients may send the raw byte; parsing
        // keeps accepting it even though our renderer never emits it.
        let schema = parse_schema("a:str").unwrap();
        let rec = parse_record(&schema, "'a\nb'").unwrap();
        assert_eq!(rec.get(0), Some(&Value::str("a\nb")));
    }

    #[test]
    fn plain_strings_render_unquoted() {
        let schema = parse_schema("a:str,b:int").unwrap();
        let rec = parse_record(&schema, "hello,42").unwrap();
        assert_eq!(render_row(&rec), "hello,42");
    }

    #[test]
    fn value_count_mismatch_is_schema_error() {
        let schema = parse_schema("a:int,b:int").unwrap();
        assert_eq!(parse_record(&schema, "1").unwrap_err().kind(), "schema");
        assert_eq!(parse_record(&schema, "1,2,3").unwrap_err().kind(), "schema");
    }
}
