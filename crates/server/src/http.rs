//! The HTTP/1.1 frontend: ingest, query reads, the Prometheus-style
//! `/metrics` exposition, and a Server-Sent-Events subscription stream.
//!
//! Routes:
//!
//! * `POST /ingest/<stream>` — body is one event per line,
//!   `<ts-ms> <v1>,<v2>,...` (the TCP `INGEST` payload without the
//!   stream). Events are staged through admission control; the reply
//!   reports `staged=<n>`. A full buffer under `Reject` maps to
//!   `503 Service Unavailable` with the `ERR overloaded …` body, after
//!   the lines already staged.
//! * `GET /query/<name>` — the query's materialized rows, one per line.
//! * `GET /metrics` — exactly [`Registry::render`]: the in-process and
//!   over-the-wire expositions are byte-identical modulo sample values
//!   (pinned by `tests/server_metrics.rs`).
//! * `GET /subscribe/<name>` — `text/event-stream`; each query delta is
//!   one `data: <name> +|- <row>` event (`-` marks a retraction).
//! * `POST /pump` — drain the staged buffer once (deterministic-test
//!   hook, mirroring the TCP `PUMP` command).
//!
//! Connections are persistent: HTTP/1.1 requests are served in a
//! per-connection loop until the client sends `Connection: close`
//! (or speaks HTTP/1.0 without `Connection: keep-alive`), the
//! per-connection request cap is reached, or the idle deadline passes
//! with no next request — so `curl`, Prometheus scrapes, and polling
//! monitors reuse one socket instead of paying a TCP handshake per
//! request. Responses carry `Connection: keep-alive` and exact
//! `Content-Length` framing while the loop continues, `Connection:
//! close` on the final response. The request head is bounded
//! ([`MAX_HEAD_BYTES`]/[`MAX_HEAD_LINES`]) and must arrive within the
//! idle deadline, so a drip-feeding peer cannot hold a thread or grow
//! a buffer without bound. SSE subscriptions take the connection over
//! and end it. Still deliberately minimal: no chunked requests, no
//! pipelining guarantees beyond strict in-order service.
//!
//! [`Registry::render`]: evdb_obs::Registry::render

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb_core::EventServer;
use evdb_types::{Error, TimestampMs};

use crate::hub::{Hub, Outbound, ServerMetrics};
use crate::protocol::{parse_record, render_row};

/// Cap on an HTTP request body (matches the frame cap).
const MAX_BODY: usize = crate::frame::MAX_FRAME;

/// Cap on one request head (request line + headers, bytes). The frame
/// decoder bounds its headers with `MAX_HEADER`; this is the HTTP
/// equivalent — past it the connection is answered `431` and dropped.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Cap on header line count per request, same contract.
pub const MAX_HEAD_LINES: usize = 64;

/// Socket read timeout: how often a blocked read re-checks the stop
/// flag and the request deadline.
const HTTP_TICK: Duration = Duration::from_millis(50);

/// Write timeout when no idle deadline is configured (a dead peer must
/// not block a response write forever).
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

pub(crate) struct HttpFrontend {
    pub engine: Arc<EventServer>,
    pub hub: Arc<Hub>,
    pub metrics: Arc<ServerMetrics>,
    pub stop: Arc<AtomicBool>,
    pub session_ids: Arc<AtomicU64>,
    pub session_buffer: usize,
    /// Cap on live connections (shared with the TCP frontend).
    pub max_connections: usize,
    /// Deadline for the next request to arrive (and for one request to
    /// finish arriving).
    pub idle_timeout: Option<Duration>,
    /// Requests served per keep-alive connection before `Connection:
    /// close`.
    pub max_requests: u64,
}

pub(crate) fn spawn_listener(
    frontend: HttpFrontend,
    addr: &str,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("evdb-http-accept".into())
        .spawn(move || accept_loop(listener, frontend))
        .expect("spawn http accept thread");
    Ok((local, handle))
}

/// Refuse an over-cap connect with a 503 (no request read — the
/// rejection must not cost a parse) and close.
fn reject_over_cap(stream: TcpStream, max: usize) {
    let mut s = stream;
    let _ = s.set_write_timeout(Some(Duration::from_secs(1)));
    let body = format!("ERR overloaded connection limit ({max}) reached\n");
    let head = format!(
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = s
        .write_all(head.as_bytes())
        .and_then(|()| s.write_all(body.as_bytes()))
        .and_then(|()| s.flush());
    let _ = s.shutdown(std::net::Shutdown::Both);
}

fn accept_loop(listener: TcpListener, frontend: HttpFrontend) {
    while !frontend.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !frontend.hub.try_admit_connection(frontend.max_connections) {
                    frontend.metrics.conns_rejected.inc();
                    reject_over_cap(stream, frontend.max_connections);
                    continue;
                }
                frontend.metrics.connections.inc();
                let engine = Arc::clone(&frontend.engine);
                let hub = Arc::clone(&frontend.hub);
                let metrics = Arc::clone(&frontend.metrics);
                let stop = Arc::clone(&frontend.stop);
                let session_id = frontend.session_ids.fetch_add(1, Ordering::Relaxed);
                let buffer = frontend.session_buffer;
                let idle_timeout = frontend.idle_timeout;
                let max_requests = frontend.max_requests;
                let spawned = std::thread::Builder::new()
                    .name(format!("evdb-http-{session_id}"))
                    .spawn(move || {
                        serve_connection(
                            stream, session_id, engine, &hub, metrics, stop, buffer,
                            idle_timeout, max_requests,
                        );
                        hub.release_connection();
                    });
                if spawned.is_err() {
                    // Handler never ran: undo the slot claim, or the
                    // active-connections gauge leaks permanently.
                    frontend.hub.release_connection();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
    /// The client's connection preference: `Connection: keep-alive`
    /// (the HTTP/1.1 default) vs `close` (the HTTP/1.0 default).
    keep_alive: bool,
}

/// Why [`read_request`] came back without a request.
enum ReadOutcome {
    Request(HttpRequest),
    /// Peer closed (EOF) — the normal end of a keep-alive connection.
    Closed,
    /// No complete request within the idle deadline (covers both pure
    /// idleness between requests and a drip-fed, never-finishing one).
    TimedOut,
    /// Request head exceeded [`MAX_HEAD_BYTES`]/[`MAX_HEAD_LINES`].
    TooLarge,
    /// Unparseable head or oversize/short body: answered `400`, then
    /// the connection closes.
    Malformed,
}

enum LineResult {
    Line(String),
    Eof,
    TimedOut,
    TooLarge,
    Failed,
}

/// Read one `\n`-terminated line through the buffered reader,
/// tolerating read-timeout ticks (nothing is lost across ticks — bytes
/// accumulate here, not in an abandoned partial read). `head_bytes`
/// accrues toward [`MAX_HEAD_BYTES`].
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    deadline: Option<Instant>,
    stop: &AtomicBool,
    head_bytes: &mut usize,
) -> LineResult {
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.fill_buf() {
            Ok([]) => return if line.is_empty() { LineResult::Eof } else { LineResult::Failed },
            Ok(buf) => {
                let (take, done) = match buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => (pos + 1, true),
                    None => (buf.len(), false),
                };
                *head_bytes += take;
                if *head_bytes > MAX_HEAD_BYTES {
                    return LineResult::TooLarge;
                }
                line.extend_from_slice(&buf[..take]);
                reader.consume(take);
                if done {
                    while matches!(line.last(), Some(b'\n' | b'\r')) {
                        line.pop();
                    }
                    return LineResult::Line(String::from_utf8_lossy(&line).into_owned());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return LineResult::TimedOut;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return LineResult::TimedOut;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineResult::Failed,
        }
    }
}

/// Read exactly `len` body bytes, tolerating timeout ticks up to the
/// deadline.
fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    deadline: Option<Instant>,
    stop: &AtomicBool,
) -> Option<Vec<u8>> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return None,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return None;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    Some(body)
}

/// Read one request head + body off the persistent connection. The
/// whole request must arrive within `idle_timeout` of this call — the
/// same deadline that bounds inter-request idleness.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    idle_timeout: Option<Duration>,
    stop: &AtomicBool,
) -> ReadOutcome {
    let deadline = idle_timeout.map(|t| Instant::now() + t);
    let mut head_bytes = 0usize;
    let request_line = match read_line_bounded(reader, deadline, stop, &mut head_bytes) {
        LineResult::Line(l) => l,
        LineResult::Eof => return ReadOutcome::Closed,
        LineResult::TimedOut => return ReadOutcome::TimedOut,
        LineResult::TooLarge => return ReadOutcome::TooLarge,
        LineResult::Failed => return ReadOutcome::Malformed,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return ReadOutcome::Malformed;
    };
    let method = method.to_string();
    let path = path.to_string();
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 (and anything older or
    // absent) to close; a Connection header overrides either way.
    let mut keep_alive = parts.next() == Some("HTTP/1.1");
    let mut content_length = 0usize;
    let mut lines = 0usize;
    loop {
        let line = match read_line_bounded(reader, deadline, stop, &mut head_bytes) {
            LineResult::Line(l) => l,
            LineResult::Eof | LineResult::Failed => return ReadOutcome::Malformed,
            LineResult::TimedOut => return ReadOutcome::TimedOut,
            LineResult::TooLarge => return ReadOutcome::TooLarge,
        };
        if line.is_empty() {
            break;
        }
        lines += 1;
        if lines > MAX_HEAD_LINES {
            return ReadOutcome::TooLarge;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return ReadOutcome::Malformed,
                };
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return ReadOutcome::Malformed;
    }
    let Some(body) = read_body(reader, content_length, deadline, stop) else {
        return ReadOutcome::Malformed;
    };
    ReadOutcome::Request(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    })
}

fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        400 => "400 Bad Request",
        403 => "403 Forbidden",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        431 => "431 Request Header Fields Too Large",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

/// Map an engine error onto an HTTP status.
fn status_of(e: &Error) -> u16 {
    match e.kind() {
        "overloaded" => 503,
        "not_found" => 404,
        "unauthorized" => 403,
        "parse" | "type" | "schema" | "invalid" | "already_exists" => 400,
        _ => 500,
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str, keep_alive: bool) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        status_line(code),
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

/// The per-connection request loop (HTTP/1.1 keep-alive).
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: TcpStream,
    session_id: u64,
    engine: Arc<EventServer>,
    hub: &Arc<Hub>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    buffer: usize,
    idle_timeout: Option<Duration>,
    max_requests: u64,
) {
    let _ = stream.set_read_timeout(Some(HTTP_TICK));
    let _ = stream.set_write_timeout(Some(idle_timeout.unwrap_or(DEFAULT_WRITE_TIMEOUT)));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // One buffered reader for the connection's whole life: bytes of a
    // pipelined next request buffered past a response boundary must not
    // be lost between loop iterations.
    let mut reader = BufReader::new(read_half);
    let mut served = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let req = match read_request(&mut reader, idle_timeout, &stop) {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Closed => break,
            ReadOutcome::Malformed => {
                // Typed, never silent: an unparseable head or truncated
                // body gets a 400 before the close.
                metrics.errors.inc();
                respond(
                    &mut stream,
                    400,
                    "text/plain",
                    "ERR proto malformed request\n",
                    false,
                );
                break;
            }
            ReadOutcome::TimedOut => {
                // Idle past the deadline (or drip-fed past it): reap.
                // Only count a reap when real idleness killed the
                // connection, not a server shutdown tick.
                if !stop.load(Ordering::SeqCst) {
                    metrics.conns_reaped.inc();
                }
                break;
            }
            ReadOutcome::TooLarge => {
                metrics.errors.inc();
                respond(
                    &mut stream,
                    431,
                    "text/plain",
                    &format!(
                        "ERR proto request head exceeds {MAX_HEAD_BYTES} bytes / {MAX_HEAD_LINES} lines\n"
                    ),
                    false,
                );
                break;
            }
        };
        served += 1;
        metrics.http_requests.inc();
        // keep-alive unless the client opted out, the per-connection
        // request budget is spent, or the server is stopping.
        let keep_alive =
            req.keep_alive && served < max_requests && !stop.load(Ordering::SeqCst);
        let again = handle_request(
            &mut stream, &req, session_id, &engine, hub, &metrics, &stop, buffer, keep_alive,
        );
        if !again || !keep_alive {
            break;
        }
    }
}

/// Dispatch one parsed request. Returns whether the connection may
/// serve another request (`false` once an SSE stream has consumed it).
#[allow(clippy::too_many_arguments)]
fn handle_request(
    stream: &mut TcpStream,
    req: &HttpRequest,
    session_id: u64,
    engine: &Arc<EventServer>,
    hub: &Arc<Hub>,
    metrics: &ServerMetrics,
    stop: &AtomicBool,
    buffer: usize,
    keep_alive: bool,
) -> bool {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => {
            respond(
                stream,
                200,
                "text/plain; version=0.0.4",
                &engine.registry().render(),
                keep_alive,
            );
        }
        ("GET", ["query", name]) => match hub.ensure_query(engine, name) {
            Ok(()) => {
                let rows = hub.rows(name).unwrap_or_default();
                let mut body = String::new();
                for row in &rows {
                    body.push_str(&render_row(row));
                    body.push('\n');
                }
                respond(stream, 200, "text/plain", &body, keep_alive);
            }
            Err(e) => {
                metrics.errors.inc();
                respond(
                    stream,
                    status_of(&e),
                    "text/plain",
                    &format!("ERR {} {e}\n", e.kind()),
                    keep_alive,
                );
            }
        },
        ("GET", ["subscribe", name]) => {
            serve_sse(stream, session_id, engine, hub, metrics, stop, buffer, name);
            return false; // the stream consumed the connection
        }
        ("POST", ["ingest", stream_name]) => {
            let (staged, err) = ingest_body(engine, stream_name, &req.body);
            match err {
                None => respond(
                    stream,
                    200,
                    "text/plain",
                    &format!("staged={staged}\n"),
                    keep_alive,
                ),
                Some(e) => {
                    metrics.errors.inc();
                    respond(
                        stream,
                        status_of(&e),
                        "text/plain",
                        &format!("staged={staged}\nERR {} {e}\n", e.kind()),
                        keep_alive,
                    );
                }
            }
        }
        ("POST", ["pump"]) => match engine.pump() {
            Ok(stats) => respond(
                stream,
                200,
                "text/plain",
                &format!(
                    "captured={} derived={} notified={}\n",
                    stats.captured, stats.derived, stats.notified
                ),
                keep_alive,
            ),
            Err(e) => {
                metrics.errors.inc();
                respond(
                    stream,
                    status_of(&e),
                    "text/plain",
                    &format!("ERR {} {e}\n", e.kind()),
                    keep_alive,
                );
            }
        },
        ("GET" | "POST", _) => {
            metrics.errors.inc();
            respond(stream, 404, "text/plain", "ERR not_found no such route\n", keep_alive);
        }
        _ => {
            metrics.errors.inc();
            respond(stream, 405, "text/plain", "ERR proto method not allowed\n", keep_alive);
        }
    }
    true
}

/// Stage each body line (`<ts-ms> <v1>,<v2>,...`); stops at the first
/// error, returning how many lines made it in.
fn ingest_body(engine: &EventServer, stream: &str, body: &[u8]) -> (u64, Option<Error>) {
    let text = String::from_utf8_lossy(body);
    let schema = match engine.runtime().stream_schema(stream) {
        Ok(s) => s,
        Err(e) => return (0, Some(e)),
    };
    let mut staged = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (ts, values) = match line.split_once(' ') {
            Some((ts, values)) => (ts, values),
            None => return (staged, Some(Error::Schema(format!("bad ingest line '{line}'")))),
        };
        let ts: i64 = match ts.parse() {
            Ok(ts) => ts,
            Err(_) => return (staged, Some(Error::Schema(format!("bad timestamp '{ts}'")))),
        };
        let record = match parse_record(&schema, values) {
            Ok(r) => r,
            Err(e) => return (staged, Some(e)),
        };
        if let Err(e) = engine.ingest_async(stream, TimestampMs(ts), record) {
            return (staged, Some(e));
        }
        staged += 1;
    }
    (staged, None)
}

/// The SSE loop: subscribe this connection to `name` and stream deltas
/// until the peer hangs up or the server stops. Row payloads are
/// newline-free by the protocol's rendering contract (embedded `\n` /
/// `\r` are escaped), so each delta is exactly one `data:` line and
/// event boundaries cannot be corrupted by column values.
#[allow(clippy::too_many_arguments)]
fn serve_sse(
    stream: &mut TcpStream,
    session_id: u64,
    engine: &EventServer,
    hub: &Arc<Hub>,
    metrics: &ServerMetrics,
    stop: &AtomicBool,
    buffer: usize,
    name: &str,
) {
    if let Err(e) = hub.ensure_query(engine, name) {
        metrics.errors.inc();
        respond(stream, status_of(&e), "text/plain", &format!("ERR {} {e}\n", e.kind()), false);
        return;
    }
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).and_then(|()| stream.flush()).is_err() {
        return;
    }
    let (tx, rx) = sync_channel::<Outbound>(buffer.max(1));
    hub.subscribe(name, session_id, tx);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Outbound::Frame(text)) => {
                // `UPDATE <q> ± <row>` → `data: <q> ± <row>`.
                let payload = text.strip_prefix("UPDATE ").unwrap_or(&text);
                metrics.frames_tx.inc();
                if stream
                    .write_all(format!("data: {payload}\n\n").as_bytes())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    break; // peer hung up
                }
            }
            Ok(Outbound::Close) => break,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Comment heartbeat doubles as a liveness probe so a
                // silently-dead peer is noticed within a tick or two.
                if stream.write_all(b": tick\n\n").and_then(|()| stream.flush()).is_err() {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    hub.remove_session(session_id);
}
