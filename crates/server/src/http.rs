//! The HTTP/1.1 frontend: ingest, query reads, the Prometheus-style
//! `/metrics` exposition, and a Server-Sent-Events subscription stream.
//!
//! Routes:
//!
//! * `POST /ingest/<stream>` — body is one event per line,
//!   `<ts-ms> <v1>,<v2>,...` (the TCP `INGEST` payload without the
//!   stream). Events are staged through admission control; the reply
//!   reports `staged=<n>`. A full buffer under `Reject` maps to
//!   `503 Service Unavailable` with the `ERR overloaded …` body, after
//!   the lines already staged.
//! * `GET /query/<name>` — the query's materialized rows, one per line.
//! * `GET /metrics` — exactly [`Registry::render`]: the in-process and
//!   over-the-wire expositions are byte-identical modulo sample values
//!   (pinned by `tests/server_metrics.rs`).
//! * `GET /subscribe/<name>` — `text/event-stream`; each query delta is
//!   one `data: <name> +|- <row>` event (`-` marks a retraction).
//! * `POST /pump` — drain the staged buffer once (deterministic-test
//!   hook, mirroring the TCP `PUMP` command).
//!
//! Deliberately minimal: HTTP/1.1, `Connection: close`, no keep-alive,
//! no chunked requests. Each request gets its own connection — the
//! curl/monitoring contract, not a general web server.
//!
//! [`Registry::render`]: evdb_obs::Registry::render

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use evdb_core::EventServer;
use evdb_types::{Error, TimestampMs};

use crate::hub::{Hub, Outbound, ServerMetrics};
use crate::protocol::{parse_record, render_row};

/// Cap on an HTTP request body (matches the frame cap).
const MAX_BODY: usize = crate::frame::MAX_FRAME;

pub(crate) struct HttpFrontend {
    pub engine: Arc<EventServer>,
    pub hub: Arc<Hub>,
    pub metrics: Arc<ServerMetrics>,
    pub stop: Arc<AtomicBool>,
    pub session_ids: Arc<AtomicU64>,
    pub session_buffer: usize,
}

pub(crate) fn spawn_listener(
    frontend: HttpFrontend,
    addr: &str,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("evdb-http-accept".into())
        .spawn(move || accept_loop(listener, frontend))
        .expect("spawn http accept thread");
    Ok((local, handle))
}

fn accept_loop(listener: TcpListener, frontend: HttpFrontend) {
    while !frontend.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                frontend.metrics.connections.inc();
                frontend.hub.active_connections.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&frontend.engine);
                let hub = Arc::clone(&frontend.hub);
                let metrics = Arc::clone(&frontend.metrics);
                let stop = Arc::clone(&frontend.stop);
                let session_id = frontend.session_ids.fetch_add(1, Ordering::Relaxed);
                let buffer = frontend.session_buffer;
                let _ = std::thread::Builder::new()
                    .name(format!("evdb-http-{session_id}"))
                    .spawn(move || {
                        serve_connection(stream, session_id, engine, &hub, metrics, stop, buffer);
                        hub.active_connections.fetch_sub(1, Ordering::Relaxed);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

struct HttpRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Read one request head + body. `None` on malformed/oversize input
/// (the connection is just dropped — nothing useful to reply to).
fn read_request(stream: &mut TcpStream) -> Option<HttpRequest> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).ok()? == 0 {
        return None;
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(HttpRequest { method, path, body })
}

fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        400 => "400 Bad Request",
        403 => "403 Forbidden",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

/// Map an engine error onto an HTTP status.
fn status_of(e: &Error) -> u16 {
    match e.kind() {
        "overloaded" => 503,
        "not_found" => 404,
        "unauthorized" => 403,
        "parse" | "type" | "schema" | "invalid" | "already_exists" => 400,
        _ => 500,
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_line(code),
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}

fn serve_connection(
    mut stream: TcpStream,
    session_id: u64,
    engine: Arc<EventServer>,
    hub: &Arc<Hub>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    buffer: usize,
) {
    let Some(req) = read_request(&mut stream) else {
        return;
    };
    metrics.http_requests.inc();
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["metrics"]) => {
            respond(&mut stream, 200, "text/plain; version=0.0.4", &engine.registry().render());
        }
        ("GET", ["query", name]) => match hub.ensure_query(&engine, name) {
            Ok(()) => {
                let rows = hub.rows(name).unwrap_or_default();
                let mut body = String::new();
                for row in &rows {
                    body.push_str(&render_row(row));
                    body.push('\n');
                }
                respond(&mut stream, 200, "text/plain", &body);
            }
            Err(e) => {
                metrics.errors.inc();
                respond(&mut stream, status_of(&e), "text/plain", &format!("ERR {} {e}\n", e.kind()));
            }
        },
        ("GET", ["subscribe", name]) => {
            serve_sse(stream, session_id, &engine, hub, &metrics, &stop, buffer, name);
        }
        ("POST", ["ingest", stream_name]) => {
            let (staged, err) = ingest_body(&engine, stream_name, &req.body);
            match err {
                None => respond(&mut stream, 200, "text/plain", &format!("staged={staged}\n")),
                Some(e) => {
                    metrics.errors.inc();
                    respond(
                        &mut stream,
                        status_of(&e),
                        "text/plain",
                        &format!("staged={staged}\nERR {} {e}\n", e.kind()),
                    );
                }
            }
        }
        ("POST", ["pump"]) => match engine.pump() {
            Ok(stats) => respond(
                &mut stream,
                200,
                "text/plain",
                &format!(
                    "captured={} derived={} notified={}\n",
                    stats.captured, stats.derived, stats.notified
                ),
            ),
            Err(e) => {
                metrics.errors.inc();
                respond(&mut stream, status_of(&e), "text/plain", &format!("ERR {} {e}\n", e.kind()));
            }
        },
        ("GET" | "POST", _) => {
            metrics.errors.inc();
            respond(&mut stream, 404, "text/plain", "ERR not_found no such route\n");
        }
        _ => {
            metrics.errors.inc();
            respond(&mut stream, 405, "text/plain", "ERR proto method not allowed\n");
        }
    }
}

/// Stage each body line (`<ts-ms> <v1>,<v2>,...`); stops at the first
/// error, returning how many lines made it in.
fn ingest_body(engine: &EventServer, stream: &str, body: &[u8]) -> (u64, Option<Error>) {
    let text = String::from_utf8_lossy(body);
    let schema = match engine.runtime().stream_schema(stream) {
        Ok(s) => s,
        Err(e) => return (0, Some(e)),
    };
    let mut staged = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (ts, values) = match line.split_once(' ') {
            Some((ts, values)) => (ts, values),
            None => return (staged, Some(Error::Schema(format!("bad ingest line '{line}'")))),
        };
        let ts: i64 = match ts.parse() {
            Ok(ts) => ts,
            Err(_) => return (staged, Some(Error::Schema(format!("bad timestamp '{ts}'")))),
        };
        let record = match parse_record(&schema, values) {
            Ok(r) => r,
            Err(e) => return (staged, Some(e)),
        };
        if let Err(e) = engine.ingest_async(stream, TimestampMs(ts), record) {
            return (staged, Some(e));
        }
        staged += 1;
    }
    (staged, None)
}

/// The SSE loop: subscribe this connection to `name` and stream deltas
/// until the peer hangs up or the server stops.
#[allow(clippy::too_many_arguments)]
fn serve_sse(
    mut stream: TcpStream,
    session_id: u64,
    engine: &EventServer,
    hub: &Arc<Hub>,
    metrics: &ServerMetrics,
    stop: &AtomicBool,
    buffer: usize,
    name: &str,
) {
    if let Err(e) = hub.ensure_query(engine, name) {
        metrics.errors.inc();
        respond(&mut stream, status_of(&e), "text/plain", &format!("ERR {} {e}\n", e.kind()));
        return;
    }
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).and_then(|()| stream.flush()).is_err() {
        return;
    }
    let (tx, rx) = sync_channel::<Outbound>(buffer.max(1));
    hub.subscribe(name, session_id, tx);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Outbound::Frame(text)) => {
                // `UPDATE <q> ± <row>` → `data: <q> ± <row>`.
                let payload = text.strip_prefix("UPDATE ").unwrap_or(&text);
                metrics.frames_tx.inc();
                if stream
                    .write_all(format!("data: {payload}\n\n").as_bytes())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    break; // peer hung up
                }
            }
            Ok(Outbound::Close) => break,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Comment heartbeat doubles as a liveness probe so a
                // silently-dead peer is noticed within a tick or two.
                if stream.write_all(b": tick\n\n").and_then(|()| stream.flush()).is_err() {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    hub.remove_session(session_id);
}
