//! The length-or-newline frame codec shared by every frontend.
//!
//! A frame carries an arbitrary byte payload. On the wire it takes one
//! of two shapes:
//!
//! * **Line frame** — `<payload>\n` for payloads that contain neither
//!   `\n` nor `\r` and do not start with `#`. This is the shape a human
//!   types into `nc`: one request per line.
//! * **Length frame** — `#<len>\n<payload>\n` for everything else
//!   (binary payloads, embedded newlines, payloads that would be
//!   mistaken for a length header). `<len>` is the payload byte count
//!   in decimal.
//!
//! The encoder picks the shape; the decoder accepts both, interleaved.
//! The contract, enforced by `tests/prop_frontend.rs`:
//!
//! * `decode(encode(p)) == p` byte-for-byte, for any payload and any
//!   split of the byte stream into reads (the decoder is incremental);
//! * arbitrary garbage never panics the decoder and never desyncs it
//!   past the next frame boundary — a malformed length header or a
//!   missing terminator yields one [`FrameError`] and decoding resumes
//!   at the following newline;
//! * a single trailing `\r` on a line frame is stripped, so CRLF
//!   clients (telnet, `curl --no-buffer`) interoperate. Our own encoder
//!   never produces a line frame containing `\r`, so stripping cannot
//!   corrupt a round trip.
//!
//! Frames are capped at [`MAX_FRAME`] bytes in both directions: a
//! declared length beyond the cap is an error (the payload is skipped
//! as it streams in, bounding memory), and an unterminated line longer
//! than the cap errors rather than buffering without bound.

use std::collections::VecDeque;
use std::fmt;

/// Hard cap on a single frame payload (1 MiB): bounds decoder memory
/// against hostile or broken peers.
pub const MAX_FRAME: usize = 1 << 20;

/// Longest accepted length header: `#` + digits + `\n`. 9 digits cover
/// every length up to [`MAX_FRAME`]; anything longer is malformed.
const MAX_HEADER: usize = 1 + 9 + 1;

/// A malformed frame. The decoder has already resynced past the bad
/// bytes when it returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length header declared more than [`MAX_FRAME`] bytes (or did
    /// not parse as a decimal length). The declared payload, when the
    /// length was readable, is consumed and discarded.
    BadLength(String),
    /// A length frame's payload was not followed by the terminating
    /// newline — the stream is corrupt at this frame.
    MissingTerminator,
    /// A line frame exceeded [`MAX_FRAME`] bytes without a newline.
    Oversize,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLength(m) => write!(f, "bad frame length: {m}"),
            FrameError::MissingTerminator => f.write_str("length frame missing terminator"),
            FrameError::Oversize => write!(f, "line frame exceeds {MAX_FRAME} bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one payload onto `out` in the canonical shape.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    let needs_length = payload.first() == Some(&b'#')
        || payload.iter().any(|&b| b == b'\n' || b == b'\r');
    if needs_length {
        out.extend_from_slice(b"#");
        out.extend_from_slice(payload.len().to_string().as_bytes());
        out.push(b'\n');
        out.extend_from_slice(payload);
    } else {
        out.extend_from_slice(payload);
    }
    out.push(b'\n');
}

/// Encode one payload into a fresh buffer.
pub fn encode_frame_vec(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + MAX_HEADER);
    encode_frame(payload, &mut out);
    out
}

/// State of an oversize-length skip in progress: the declared payload
/// (plus its terminator) is discarded as it streams in, so a hostile
/// `#999999999` header cannot make the decoder buffer it.
struct Skipping {
    remaining: usize,
    error: FrameError,
}

/// Incremental frame decoder: push raw reads in, pop frames out.
///
/// ```
/// use evdb_server::frame::{encode_frame_vec, FrameDecoder};
/// let mut dec = FrameDecoder::new();
/// dec.push(&encode_frame_vec(b"PING"));
/// assert_eq!(dec.next_frame(), Some(Ok(b"PING".to_vec())));
/// assert_eq!(dec.next_frame(), None);
/// ```
#[derive(Default)]
pub struct FrameDecoder {
    buf: VecDeque<u8>,
    skipping: Option<Skipping>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame: `None` when more bytes are needed,
    /// `Some(Err(..))` when the stream was malformed at this frame (the
    /// decoder has resynced; keep calling).
    pub fn next_frame(&mut self) -> Option<Result<Vec<u8>, FrameError>> {
        if let Some(skip) = &mut self.skipping {
            let take = skip.remaining.min(self.buf.len());
            self.buf.drain(..take);
            skip.remaining -= take;
            if skip.remaining > 0 {
                return None; // still swallowing the oversize payload
            }
            let err = self.skipping.take().expect("checked above").error;
            return Some(Err(err));
        }
        match self.buf.front() {
            None => None,
            Some(b'#') => self.next_length_frame(),
            Some(_) => self.next_line_frame(),
        }
    }

    fn next_line_frame(&mut self) -> Option<Result<Vec<u8>, FrameError>> {
        let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > MAX_FRAME {
                self.buf.clear();
                return Some(Err(FrameError::Oversize));
            }
            return None;
        };
        if nl > MAX_FRAME {
            self.buf.drain(..=nl);
            return Some(Err(FrameError::Oversize));
        }
        let mut line: Vec<u8> = self.buf.drain(..nl).collect();
        self.buf.pop_front(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop(); // CRLF interop; our encoder never emits \r here
        }
        Some(Ok(line))
    }

    fn next_length_frame(&mut self) -> Option<Result<Vec<u8>, FrameError>> {
        let header_nl = self
            .buf
            .iter()
            .take(MAX_HEADER)
            .position(|&b| b == b'\n');
        let Some(nl) = header_nl else {
            if self.buf.len() >= MAX_HEADER {
                // No newline within the longest legal header: resync at
                // the next newline (or wherever the stream continues).
                return Some(self.resync_line(FrameError::BadLength(
                    "header not terminated".into(),
                )));
            }
            return None;
        };
        let digits: Vec<u8> = self.buf.iter().skip(1).take(nl - 1).copied().collect();
        let len = match std::str::from_utf8(&digits)
            .ok()
            .filter(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|s| s.parse::<usize>().ok())
        {
            Some(len) => len,
            None => {
                let msg = String::from_utf8_lossy(&digits).into_owned();
                self.buf.drain(..=nl);
                return Some(Err(FrameError::BadLength(format!("'{msg}'"))));
            }
        };
        if len > MAX_FRAME {
            // Consume the header now and stream-discard the payload (it
            // may dwarf anything we are willing to buffer).
            self.buf.drain(..=nl);
            self.skipping = Some(Skipping {
                remaining: len + 1, // payload + terminator
                error: FrameError::BadLength(format!("{len} exceeds cap {MAX_FRAME}")),
            });
            return self.next_frame();
        }
        if self.buf.len() < nl + 1 + len + 1 {
            return None; // payload (and terminator) still in flight
        }
        self.buf.drain(..=nl);
        let payload: Vec<u8> = self.buf.drain(..len).collect();
        match self.buf.pop_front() {
            Some(b'\n') => Some(Ok(payload)),
            // Anything else: the declared length lied. The bogus byte is
            // consumed; decoding resumes immediately after it.
            _ => Some(Err(FrameError::MissingTerminator)),
        }
    }

    /// Drop everything up to and including the next newline (or the
    /// whole buffer when none) and report `err`.
    fn resync_line(&mut self, err: FrameError) -> Result<Vec<u8>, FrameError> {
        match self.buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                self.buf.drain(..=nl);
            }
            None => self.buf.clear(),
        }
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8]) -> Vec<Result<Vec<u8>, FrameError>> {
        let mut dec = FrameDecoder::new();
        dec.push(bytes);
        let mut out = Vec::new();
        while let Some(f) = dec.next_frame() {
            out.push(f);
        }
        out
    }

    #[test]
    fn simple_line_round_trip() {
        let enc = encode_frame_vec(b"INGEST ticks 100 AAPL,1.5");
        assert_eq!(enc, b"INGEST ticks 100 AAPL,1.5\n");
        assert_eq!(decode_all(&enc), vec![Ok(b"INGEST ticks 100 AAPL,1.5".to_vec())]);
    }

    #[test]
    fn binary_payload_uses_length_frame() {
        let payload = b"line one\nline two\r\n#not a header";
        let enc = encode_frame_vec(payload);
        assert!(enc.starts_with(b"#32\n"));
        assert_eq!(decode_all(&enc), vec![Ok(payload.to_vec())]);
    }

    #[test]
    fn hash_prefixed_text_survives() {
        let enc = encode_frame_vec(b"#comment");
        assert_eq!(decode_all(&enc), vec![Ok(b"#comment".to_vec())]);
    }

    #[test]
    fn empty_payload_round_trips() {
        assert_eq!(decode_all(&encode_frame_vec(b"")), vec![Ok(Vec::new())]);
    }

    #[test]
    fn split_reads_reassemble() {
        let mut enc = Vec::new();
        encode_frame(b"first", &mut enc);
        encode_frame(b"a\nb", &mut enc);
        encode_frame(b"last", &mut enc);
        for split in 0..enc.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&enc[..split]);
            let mut got = Vec::new();
            while let Some(f) = dec.next_frame() {
                got.push(f.unwrap());
            }
            dec.push(&enc[split..]);
            while let Some(f) = dec.next_frame() {
                got.push(f.unwrap());
            }
            assert_eq!(got, vec![b"first".to_vec(), b"a\nb".to_vec(), b"last".to_vec()]);
        }
    }

    #[test]
    fn crlf_line_is_stripped() {
        assert_eq!(decode_all(b"PING\r\n"), vec![Ok(b"PING".to_vec())]);
        // Only the final \r is interop-stripped.
        assert_eq!(decode_all(b"a\rb\r\n"), vec![Ok(b"a\rb".to_vec())]);
    }

    #[test]
    fn bad_length_header_resyncs() {
        let frames = decode_all(b"#xyz\nPING\n");
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0], Err(FrameError::BadLength(_))));
        assert_eq!(frames[1], Ok(b"PING".to_vec()));
    }

    #[test]
    fn oversize_length_is_skipped_incrementally() {
        let mut dec = FrameDecoder::new();
        let declared = MAX_FRAME + 10;
        dec.push(format!("#{declared}\n").as_bytes());
        // Stream the bogus payload in chunks: the decoder must discard,
        // not buffer.
        let chunk = vec![b'x'; 4096];
        let mut sent = 0;
        let mut err = None;
        while sent < declared + 1 {
            let n = chunk.len().min(declared + 1 - sent);
            dec.push(&chunk[..n]);
            sent += n;
            if let Some(f) = dec.next_frame() {
                err = Some(f);
            }
            assert!(dec.pending() < 8192, "decoder must not buffer the skip");
        }
        assert!(matches!(err, Some(Err(FrameError::BadLength(_)))));
        dec.push(b"PING\n");
        assert_eq!(dec.next_frame(), Some(Ok(b"PING".to_vec())));
    }

    #[test]
    fn missing_terminator_is_detected() {
        // Declared 2 bytes but the terminator slot holds 'X'.
        let frames = decode_all(b"#2\nabXPING\n");
        assert!(matches!(frames[0], Err(FrameError::MissingTerminator)));
        // Resyncs immediately after the bogus byte.
        assert_eq!(frames[1], Ok(b"PING".to_vec()));
    }

    #[test]
    fn unterminated_giant_line_errors() {
        let mut dec = FrameDecoder::new();
        dec.push(&vec![b'a'; MAX_FRAME + 2]);
        assert_eq!(dec.next_frame(), Some(Err(FrameError::Oversize)));
    }
}
