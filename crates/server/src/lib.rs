//! # evdb-server — the deployable network front door
//!
//! Everything below this crate is a library: [`EventServer`] captures
//! events, evaluates rules and continuous queries, and pushes deltas to
//! in-process callbacks. This crate turns that library into a server a
//! process on another machine can talk to, with three frontends over
//! one shared engine:
//!
//! * **TCP line protocol** ([`frame`] + [`protocol`] + [`session`]) —
//!   framed text requests (`INGEST`, `SUBSCRIBE`, `GET`, …) with
//!   framed replies and asynchronous `UPDATE` pushes that carry the
//!   insert/retract sign from the engine's signed delta stream.
//! * **HTTP** ([`http`]) — `POST /ingest/<stream>`, `GET /query/<name>`,
//!   and `GET /metrics` serving the shared [`Registry`] exposition.
//! * **SSE streaming** (`GET /subscribe/<name>`) — the same hub fan-out
//!   as TCP `SUBSCRIBE`, rendered as `text/event-stream`.
//!
//! The overload contract (DESIGN.md D13): admission control's policy
//! becomes client-visible behavior. `Block` parks the connection's
//! reader inside `ingest_async`, so TCP flow control stalls the
//! producer's socket; `Reject` surfaces as `ERR overloaded` / HTTP 503
//! with the write rolled back; `ShedLowest` accepts the write and the
//! shed shows up in `STATS` and the `evdb_ingest_shed_total` counter.
//! Nothing is silently dropped at the network layer either: fan-out
//! sheds to slow subscribers are counted in
//! `evdb_server_updates_dropped_total`.
//!
//! The connection lifecycle is resource-bounded (DESIGN.md D13): HTTP
//! is persistent (HTTP/1.1 keep-alive with a per-connection request
//! cap), both accept loops enforce [`NetConfig::max_connections`] with
//! a typed rejection counted in `evdb_server_conns_rejected_total`,
//! and connections idle past [`NetConfig::idle_timeout`] are reaped —
//! thread and hub slot released, counted in
//! `evdb_server_conns_reaped_total`.
//!
//! ```no_run
//! use evdb_server::{NetConfig, NetServer};
//! use evdb_core::{EventServer, server::ServerConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
//! let mut net = NetServer::start(engine, NetConfig::default()).unwrap();
//! println!("tcp on {}, http on {:?}", net.tcp_addr(), net.http_addr());
//! # net.shutdown();
//! ```
//!
//! [`EventServer`]: evdb_core::EventServer
//! [`Registry`]: evdb_obs::Registry

pub mod frame;
pub mod hub;
pub mod http;
pub mod protocol;
pub mod session;
pub mod tcp;

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use evdb_core::pump::{spawn_pump_with, PumpHandle, PumpMode};
use evdb_core::EventServer;

use crate::hub::{Hub, ServerMetrics};

/// Network-layer configuration (the engine itself is configured via
/// [`ServerConfig`](evdb_core::server::ServerConfig)).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// TCP line-protocol bind address; `:0` picks an ephemeral port.
    pub tcp_addr: String,
    /// HTTP bind address; `None` disables the HTTP frontend.
    pub http_addr: Option<String>,
    /// Per-session outbound buffer (frames queued per connection before
    /// subscription pushes are shed for that subscriber).
    pub session_buffer: usize,
    /// Spawn a background pump at this interval; `None` means the
    /// server only pumps on explicit `PUMP` / `POST /pump` requests
    /// (the deterministic mode the golden-transcript tests rely on).
    pub pump_interval: Option<Duration>,
    /// Hard cap on concurrently open connections, shared across both
    /// frontends. An over-cap TCP connect is answered with a typed
    /// `ERR overloaded …` frame and closed; an over-cap HTTP connect
    /// gets `503`. Both are counted in
    /// `evdb_server_conns_rejected_total` — never silently dropped.
    pub max_connections: usize,
    /// Per-connection idle deadline: a connection with no traffic in
    /// either direction for this long is closed by the server (TCP
    /// peers get an `ERR idle …` frame first), releasing its thread
    /// and hub slot. Also bounds how long one HTTP request may take to
    /// arrive, so a drip-feeding peer cannot pin a thread. `None`
    /// disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Requests served per HTTP keep-alive connection before the
    /// server closes it (`Connection: close` on the final response).
    pub http_max_requests: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            tcp_addr: "127.0.0.1:0".into(),
            http_addr: Some("127.0.0.1:0".into()),
            session_buffer: 1024,
            pump_interval: Some(Duration::from_millis(1)),
            max_connections: 1024,
            idle_timeout: Some(Duration::from_secs(60)),
            http_max_requests: 1000,
        }
    }
}

/// A running network server: both listeners plus the optional pump.
/// Dropping it (or calling [`shutdown`](NetServer::shutdown)) stops the
/// accept loops and the pump; connection threads notice the stop flag
/// within one read tick and exit on their own.
pub struct NetServer {
    engine: Arc<EventServer>,
    hub: Arc<Hub>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    tcp_addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    accept_threads: Vec<JoinHandle<()>>,
    _pump: Option<PumpHandle>,
}

impl NetServer {
    /// Bind the frontends and start serving `engine`.
    pub fn start(engine: Arc<EventServer>, config: NetConfig) -> std::io::Result<NetServer> {
        let hub = Hub::new();
        let metrics = Arc::new(ServerMetrics::bind(engine.registry(), &hub));
        hub.set_metrics(Arc::clone(&metrics));
        let stop = Arc::new(AtomicBool::new(false));
        let session_ids = Arc::new(AtomicU64::new(1));

        let mut accept_threads = Vec::new();
        let (tcp_addr, tcp_thread) = tcp::spawn_listener(
            tcp::TcpFrontend {
                engine: Arc::clone(&engine),
                hub: Arc::clone(&hub),
                metrics: Arc::clone(&metrics),
                stop: Arc::clone(&stop),
                session_ids: Arc::clone(&session_ids),
                session_buffer: config.session_buffer,
                max_connections: config.max_connections,
                idle_timeout: config.idle_timeout,
            },
            &config.tcp_addr,
        )?;
        accept_threads.push(tcp_thread);

        let mut http_addr = None;
        if let Some(addr) = &config.http_addr {
            let (bound, http_thread) = http::spawn_listener(
                http::HttpFrontend {
                    engine: Arc::clone(&engine),
                    hub: Arc::clone(&hub),
                    metrics: Arc::clone(&metrics),
                    stop: Arc::clone(&stop),
                    session_ids: Arc::clone(&session_ids),
                    session_buffer: config.session_buffer,
                    max_connections: config.max_connections,
                    idle_timeout: config.idle_timeout,
                    max_requests: config.http_max_requests,
                },
                addr,
            )?;
            http_addr = Some(bound);
            accept_threads.push(http_thread);
        }

        let pump = config
            .pump_interval
            .map(|interval| spawn_pump_with(&engine, interval, PumpMode::Sequential));

        Ok(NetServer {
            engine,
            hub,
            metrics,
            stop,
            tcp_addr,
            http_addr,
            accept_threads,
            _pump: pump,
        })
    }

    /// The bound TCP address (ephemeral port resolved).
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// The bound HTTP address, if the HTTP frontend is enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<EventServer> {
        &self.engine
    }

    /// The fan-out hub (exposed for tests and experiments).
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }

    /// The server-layer counters.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Stop accepting, stop the pump, and wait for the accept loops.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.accept_threads.drain(..) {
            let _ = handle.join();
        }
        self._pump = None; // drop stops the pump thread
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_core::server::ServerConfig;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn start_serve_ping_shutdown() {
        let engine = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
        let mut net = NetServer::start(
            engine,
            NetConfig {
                pump_interval: None,
                ..Default::default()
            },
        )
        .unwrap();
        let mut conn = TcpStream::connect(net.tcp_addr()).unwrap();
        conn.write_all(b"PING\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "PONG\n");
        net.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let engine = Arc::new(EventServer::in_memory(ServerConfig::default()).unwrap());
        let mut net = NetServer::start(engine, NetConfig::default()).unwrap();
        net.shutdown();
        net.shutdown();
        drop(net);
    }
}
