//! The TCP line-protocol frontend: framed requests in, framed replies
//! and subscription pushes out.
//!
//! One reader thread per connection parses frames off the socket and
//! dispatches them through [`Session`]; one writer thread per
//! connection drains the session's outbound channel. Splitting the
//! halves means a subscription push never interleaves bytes with a
//! reply (both funnel through the single writer) and a `Block`ed
//! admission call — which parks the *reader* — leaves already-queued
//! replies flowing while TCP flow control stalls the producer.
//!
//! Connections are resource-bounded (DESIGN.md D13): the accept loop
//! refuses connects past `max_connections` with a typed
//! `ERR overloaded …` frame (counted, never silently dropped), and the
//! reader's idle tick closes a connection with no traffic in either
//! direction for `idle_timeout` — an `ERR idle …` frame, then the
//! thread and the session's hub slot are released. Pushes count as
//! traffic, so a quiet subscriber that is still being fed is never
//! reaped; a silently-dead peer stops acking, its pushes stop
//! completing, and the deadline catches it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use evdb_core::EventServer;

use crate::frame::{encode_frame, encode_frame_vec, FrameDecoder};
use crate::hub::{Hub, Outbound, OutboundReceiver, ServerMetrics};
use crate::session::Session;

/// How long a blocked read waits before re-checking the stop flag (and
/// the idle deadline).
const READ_TICK: Duration = Duration::from_millis(50);

/// Write timeout when no idle deadline is configured: a peer that
/// stops draining for this long is treated as gone, so the writer
/// thread can never block forever against a dead socket.
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Last-activity stamp shared by a connection's reader and writer: the
/// reader touches it on inbound bytes, the writer on completed frame
/// writes, and the reader's idle tick compares it against the idle
/// deadline.
pub(crate) struct Activity {
    epoch: Instant,
    last_ms: AtomicU64,
}

impl Activity {
    pub(crate) fn new() -> Arc<Activity> {
        Arc::new(Activity {
            epoch: Instant::now(),
            last_ms: AtomicU64::new(0),
        })
    }

    /// Record traffic now.
    pub(crate) fn touch(&self) {
        let now = self.epoch.elapsed().as_millis() as u64;
        self.last_ms.store(now, Ordering::Relaxed);
    }

    /// Time since the last recorded traffic.
    pub(crate) fn idle(&self) -> Duration {
        let now = self.epoch.elapsed().as_millis() as u64;
        Duration::from_millis(now.saturating_sub(self.last_ms.load(Ordering::Relaxed)))
    }
}

pub(crate) struct TcpFrontend {
    pub engine: Arc<EventServer>,
    pub hub: Arc<Hub>,
    pub metrics: Arc<ServerMetrics>,
    pub stop: Arc<AtomicBool>,
    pub session_ids: Arc<AtomicU64>,
    /// Outbound channel capacity per session (subscription buffering).
    pub session_buffer: usize,
    /// Cap on live connections (shared with the HTTP frontend).
    pub max_connections: usize,
    /// Reap connections idle in both directions past this.
    pub idle_timeout: Option<Duration>,
}

/// Bind the listener and spawn the accept loop. Returns the bound
/// address (resolves `:0` to the ephemeral port) and the accept thread.
pub(crate) fn spawn_listener(
    frontend: TcpFrontend,
    addr: &str,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("evdb-tcp-accept".into())
        .spawn(move || accept_loop(listener, frontend))
        .expect("spawn tcp accept thread");
    Ok((local, handle))
}

/// Refuse an over-cap connect: one typed frame, then close. Runs on
/// the accept thread, so the write is timeout-bounded.
fn reject_over_cap(stream: TcpStream, max: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut s = stream;
    let frame = encode_frame_vec(
        format!("ERR overloaded connection limit ({max}) reached").as_bytes(),
    );
    let _ = s.write_all(&frame).and_then(|()| s.flush());
    let _ = s.shutdown(std::net::Shutdown::Both);
}

fn accept_loop(listener: TcpListener, frontend: TcpFrontend) {
    while !frontend.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !frontend.hub.try_admit_connection(frontend.max_connections) {
                    frontend.metrics.conns_rejected.inc();
                    reject_over_cap(stream, frontend.max_connections);
                    continue;
                }
                frontend.metrics.connections.inc();
                let session_id = frontend.session_ids.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&frontend.engine);
                let hub = Arc::clone(&frontend.hub);
                let metrics = Arc::clone(&frontend.metrics);
                let stop = Arc::clone(&frontend.stop);
                let buffer = frontend.session_buffer;
                let idle_timeout = frontend.idle_timeout;
                // Connection threads are detached: they exit on stop (the
                // read timeout re-checks the flag) or peer close, and hold
                // only Arcs, so shutdown does not need to join them.
                let spawned = std::thread::Builder::new()
                    .name(format!("evdb-conn-{session_id}"))
                    .spawn(move || {
                        serve_connection(
                            stream, session_id, engine, hub, metrics, stop, buffer,
                            idle_timeout,
                        );
                    });
                if spawned.is_err() {
                    // The handler never ran: release the slot claimed
                    // above or the gauge leaks a phantom connection.
                    frontend.hub.release_connection();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    session_id: u64,
    engine: Arc<EventServer>,
    hub: Arc<Hub>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    buffer: usize,
    idle_timeout: Option<Duration>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    // Bound writes too: a dead peer with a full receive window must
    // error the writer out instead of blocking it forever (the reader
    // joins the writer at teardown).
    let _ = stream.set_write_timeout(Some(idle_timeout.unwrap_or(DEFAULT_WRITE_TIMEOUT)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            hub.release_connection();
            return;
        }
    };
    let activity = Activity::new();
    let (tx, rx) = sync_channel::<Outbound>(buffer.max(1));
    let writer = {
        let metrics = Arc::clone(&metrics);
        let activity = Arc::clone(&activity);
        std::thread::Builder::new()
            .name(format!("evdb-conn-{session_id}-w"))
            .spawn(move || writer_loop(write_half, rx, metrics, activity))
            .expect("spawn connection writer")
    };

    let session = Session {
        id: session_id,
        engine,
        hub: Arc::clone(&hub),
        metrics: Arc::clone(&metrics),
        out: tx,
    };
    reader_loop(stream, &session, &stop, &activity, idle_timeout);

    // Teardown: subscriptions first (so the hub stops queueing into this
    // session), then drop our sender so the writer drains and exits.
    session.teardown();
    drop(session);
    let _ = writer.join();
    hub.release_connection();
}

fn reader_loop(
    mut stream: TcpStream,
    session: &Session,
    stop: &AtomicBool,
    activity: &Activity,
    idle_timeout: Option<Duration>,
) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: while !stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                activity.touch();
                decoder.push(&buf[..n]);
                while let Some(frame) = decoder.next_frame() {
                    match frame {
                        Ok(payload) => {
                            session.metrics.frames_rx.inc();
                            // Requests are text; lossy decoding keeps the
                            // reply path panic-free on arbitrary bytes.
                            let line = String::from_utf8_lossy(&payload);
                            if !session.handle_line(&line) {
                                break 'conn;
                            }
                        }
                        Err(e) => {
                            session.metrics.errors.inc();
                            session.reply(format!("ERR frame {e}"));
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick: re-check stop, then the idle deadline. A
                // half-dead peer (slow-loris, silently-gone client)
                // releases its thread and hub slot here, typed and
                // counted — never a permanently pinned thread.
                if let Some(limit) = idle_timeout {
                    if activity.idle() >= limit {
                        session.metrics.conns_reaped.inc();
                        session.reply(format!(
                            "ERR idle connection idle for {}ms, closing",
                            limit.as_millis()
                        ));
                        let _ = session.out.send(Outbound::Close);
                        break;
                    }
                }
                continue;
            }
            Err(_) => break,
        }
    }
}

fn writer_loop(
    stream: TcpStream,
    rx: OutboundReceiver,
    metrics: Arc<ServerMetrics>,
    activity: Arc<Activity>,
) {
    let mut out = std::io::BufWriter::new(stream);
    let mut scratch = Vec::with_capacity(4 * 1024);
    while let Ok(msg) = rx.recv() {
        match msg {
            Outbound::Frame(text) => {
                scratch.clear();
                encode_frame(text.as_bytes(), &mut scratch);
                metrics.frames_tx.inc();
                if out.write_all(&scratch).and_then(|()| out.flush()).is_err() {
                    break; // peer gone; reader will notice on its own
                }
                // A completed push is proof of life: the peer drained
                // its window, so the idle deadline resets.
                activity.touch();
            }
            Outbound::Close => break,
        }
    }
    if let Ok(stream) = out.into_inner() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}
