//! The TCP line-protocol frontend: framed requests in, framed replies
//! and subscription pushes out.
//!
//! One reader thread per connection parses frames off the socket and
//! dispatches them through [`Session`]; one writer thread per
//! connection drains the session's outbound channel. Splitting the
//! halves means a subscription push never interleaves bytes with a
//! reply (both funnel through the single writer) and a `Block`ed
//! admission call — which parks the *reader* — leaves already-queued
//! replies flowing while TCP flow control stalls the producer.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Duration;

use evdb_core::EventServer;

use crate::frame::{encode_frame, FrameDecoder};
use crate::hub::{Hub, Outbound, OutboundReceiver, ServerMetrics};
use crate::session::Session;

/// How long a blocked read waits before re-checking the stop flag.
const READ_TICK: Duration = Duration::from_millis(50);

pub(crate) struct TcpFrontend {
    pub engine: Arc<EventServer>,
    pub hub: Arc<Hub>,
    pub metrics: Arc<ServerMetrics>,
    pub stop: Arc<AtomicBool>,
    pub session_ids: Arc<AtomicU64>,
    /// Outbound channel capacity per session (subscription buffering).
    pub session_buffer: usize,
}

/// Bind the listener and spawn the accept loop. Returns the bound
/// address (resolves `:0` to the ephemeral port) and the accept thread.
pub(crate) fn spawn_listener(
    frontend: TcpFrontend,
    addr: &str,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("evdb-tcp-accept".into())
        .spawn(move || accept_loop(listener, frontend))
        .expect("spawn tcp accept thread");
    Ok((local, handle))
}

fn accept_loop(listener: TcpListener, frontend: TcpFrontend) {
    while !frontend.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                frontend.metrics.connections.inc();
                frontend.hub.active_connections.fetch_add(1, Ordering::Relaxed);
                let session_id = frontend.session_ids.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&frontend.engine);
                let hub = Arc::clone(&frontend.hub);
                let metrics = Arc::clone(&frontend.metrics);
                let stop = Arc::clone(&frontend.stop);
                let buffer = frontend.session_buffer;
                // Connection threads are detached: they exit on stop (the
                // read timeout re-checks the flag) or peer close, and hold
                // only Arcs, so shutdown does not need to join them.
                let _ = std::thread::Builder::new()
                    .name(format!("evdb-conn-{session_id}"))
                    .spawn(move || {
                        serve_connection(stream, session_id, engine, hub, metrics, stop, buffer);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    session_id: u64,
    engine: Arc<EventServer>,
    hub: Arc<Hub>,
    metrics: Arc<ServerMetrics>,
    stop: Arc<AtomicBool>,
    buffer: usize,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            hub.active_connections.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    let (tx, rx) = sync_channel::<Outbound>(buffer.max(1));
    let writer = {
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name(format!("evdb-conn-{session_id}-w"))
            .spawn(move || writer_loop(write_half, rx, metrics))
            .expect("spawn connection writer")
    };

    let session = Session {
        id: session_id,
        engine,
        hub: Arc::clone(&hub),
        metrics: Arc::clone(&metrics),
        out: tx,
    };
    reader_loop(stream, &session, &stop);

    // Teardown: subscriptions first (so the hub stops queueing into this
    // session), then drop our sender so the writer drains and exits.
    session.teardown();
    drop(session);
    let _ = writer.join();
    hub.active_connections.fetch_sub(1, Ordering::Relaxed);
}

fn reader_loop(mut stream: TcpStream, session: &Session, stop: &AtomicBool) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: while !stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break, // peer closed
            Ok(n) => {
                decoder.push(&buf[..n]);
                while let Some(frame) = decoder.next_frame() {
                    match frame {
                        Ok(payload) => {
                            session.metrics.frames_rx.inc();
                            // Requests are text; lossy decoding keeps the
                            // reply path panic-free on arbitrary bytes.
                            let line = String::from_utf8_lossy(&payload);
                            if !session.handle_line(&line) {
                                break 'conn;
                            }
                        }
                        Err(e) => {
                            session.metrics.errors.inc();
                            session.reply(format!("ERR frame {e}"));
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle tick: re-check stop
            }
            Err(_) => break,
        }
    }
}

fn writer_loop(stream: TcpStream, rx: OutboundReceiver, metrics: Arc<ServerMetrics>) {
    let mut out = std::io::BufWriter::new(stream);
    let mut scratch = Vec::with_capacity(4 * 1024);
    while let Ok(msg) = rx.recv() {
        match msg {
            Outbound::Frame(text) => {
                scratch.clear();
                encode_frame(text.as_bytes(), &mut scratch);
                metrics.frames_tx.inc();
                if out.write_all(&scratch).and_then(|()| out.flush()).is_err() {
                    break; // peer gone; reader will notice on its own
                }
            }
            Outbound::Close => break,
        }
    }
    if let Ok(stream) = out.into_inner() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}
