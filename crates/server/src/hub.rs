//! The subscription hub: one engine-side subscription per query fanned
//! out to every connected session, plus a compacted materialized view
//! served by `GET <query>` / `GET /query/:name`.
//!
//! Delivery never blocks the notify path: each session owns a bounded
//! outbound channel and the hub `try_send`s into it. A session that
//! disconnected is pruned on the next delivery; a session that is alive
//! but too slow to drain its buffer has updates shed — counted in
//! `evdb_server_updates_dropped_total`, never silent (D9) — so one
//! stalled subscriber cannot wedge the pump for everyone else.
//!
//! Ordering: the engine invokes the per-query callback sequentially
//! (delivery happens on the pumping thread), and the hub pushes to
//! every session inside that callback, so all subscribers observe the
//! same per-query update sequence in the same order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use evdb_core::EventServer;
use evdb_obs::{Counter, Registry};
use evdb_types::{Record, Result};
use parking_lot::Mutex;

use crate::protocol::render_row;

/// A message bound for one session's transport writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outbound {
    /// A reply or pushed update frame (already protocol-rendered text).
    Frame(String),
    /// The server is closing this session (reply `BYE` sent separately).
    Close,
}

/// Sender half of a session's outbound channel.
pub type OutboundSender = SyncSender<Outbound>;
/// Receiver half, owned by the session's writer loop.
pub type OutboundReceiver = Receiver<Outbound>;

struct SubEntry {
    session: u64,
    sender: OutboundSender,
}

#[derive(Default)]
struct QueryState {
    /// Compacted materialized view: inserts append, retractions remove
    /// the first matching row (multiset semantics, like `DeltaLog`).
    rows: Vec<Record>,
    subs: Vec<SubEntry>,
}

/// Counters the server layer adds to the shared registry (all
/// `evdb_server_*`, per the D9 naming contract).
pub struct ServerMetrics {
    /// Connections ever accepted (TCP + HTTP).
    pub connections: Arc<Counter>,
    /// Frames read off sockets.
    pub frames_rx: Arc<Counter>,
    /// Frames written to sockets (replies and pushed updates).
    pub frames_tx: Arc<Counter>,
    /// Requests parsed and dispatched.
    pub requests: Arc<Counter>,
    /// Error replies sent (protocol + engine errors).
    pub errors: Arc<Counter>,
    /// HTTP requests served.
    pub http_requests: Arc<Counter>,
    /// Subscription updates delivered into session buffers.
    pub updates_delivered: Arc<Counter>,
    /// Updates shed because a live subscriber's buffer was full.
    pub updates_dropped: Arc<Counter>,
    /// Connections refused at accept because the server was at its
    /// `max_connections` cap (typed `ERR overloaded` / HTTP 503 — the
    /// D10 no-silent-work contract at the connection layer).
    pub conns_rejected: Arc<Counter>,
    /// Connections closed by the server because the idle deadline
    /// passed with no traffic in either direction.
    pub conns_reaped: Arc<Counter>,
}

impl ServerMetrics {
    /// Create every server counter in `registry` (eagerly, so the
    /// exposition lists them from startup) and bridge the live
    /// connection/subscription gauges.
    pub fn bind(registry: &Registry, hub: &Arc<Hub>) -> ServerMetrics {
        let h = Arc::clone(hub);
        registry.gauge_fn("evdb_server_connections_active", move || {
            h.active_connections.load(Ordering::Relaxed) as f64
        });
        let h = Arc::clone(hub);
        registry.gauge_fn("evdb_server_subscriptions_active", move || {
            h.active_subscriptions() as f64
        });
        ServerMetrics {
            connections: registry.counter("evdb_server_connections_total"),
            frames_rx: registry.counter("evdb_server_frames_rx_total"),
            frames_tx: registry.counter("evdb_server_frames_tx_total"),
            requests: registry.counter("evdb_server_requests_total"),
            errors: registry.counter("evdb_server_errors_total"),
            http_requests: registry.counter("evdb_server_http_requests_total"),
            updates_delivered: registry.counter("evdb_server_updates_delivered_total"),
            updates_dropped: registry.counter("evdb_server_updates_dropped_total"),
            conns_rejected: registry.counter("evdb_server_conns_rejected_total"),
            conns_reaped: registry.counter("evdb_server_conns_reaped_total"),
        }
    }
}

/// The per-server fan-out state shared by every frontend.
pub struct Hub {
    queries: Mutex<HashMap<String, QueryState>>,
    /// Live transport connections (bridged as a gauge).
    pub active_connections: AtomicU64,
    metrics: Mutex<Option<Arc<ServerMetrics>>>,
}

impl Hub {
    /// An empty hub.
    pub fn new() -> Arc<Hub> {
        Arc::new(Hub {
            queries: Mutex::new(HashMap::new()),
            active_connections: AtomicU64::new(0),
            metrics: Mutex::new(None),
        })
    }

    /// Attach the metric handles (after [`ServerMetrics::bind`], which
    /// needs the hub for its gauges — hence two-phase).
    pub fn set_metrics(&self, metrics: Arc<ServerMetrics>) {
        *self.metrics.lock() = Some(metrics);
    }

    fn with_metrics(&self, f: impl FnOnce(&ServerMetrics)) {
        if let Some(m) = self.metrics.lock().as_ref() {
            f(m);
        }
    }

    /// Subscriptions currently registered across all queries.
    pub fn active_subscriptions(&self) -> usize {
        self.queries.lock().values().map(|q| q.subs.len()).sum()
    }

    /// Claim a connection slot against the `max` cap. The increment
    /// happens first and is undone on refusal, so two accept loops
    /// racing can never overshoot the cap. A refused connect must be
    /// answered with the typed rejection and counted by the caller.
    pub fn try_admit_connection(&self, max: usize) -> bool {
        let prev = self.active_connections.fetch_add(1, Ordering::Relaxed);
        if (prev as usize) < max {
            true
        } else {
            self.active_connections.fetch_sub(1, Ordering::Relaxed);
            false
        }
    }

    /// Release a slot claimed by [`try_admit_connection`](Hub::try_admit_connection)
    /// — on connection teardown, or when the handler thread failed to
    /// spawn (the gauge must never leak a slot).
    pub fn release_connection(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Ensure the hub tracks `query`: registers the engine-side
    /// subscription on first contact so the materialized view starts
    /// accumulating. Idempotent; errors if the query does not exist.
    pub fn ensure_query(self: &Arc<Self>, engine: &EventServer, query: &str) -> Result<()> {
        {
            let queries = self.queries.lock();
            if queries.contains_key(query) {
                return Ok(());
            }
        }
        // Register outside the lock: `on_query_updates` validates the
        // query name and takes runtime locks of its own.
        let hub = Arc::clone(self);
        let qname = query.to_string();
        engine.on_query_updates(query, move |row, is_retraction| {
            hub.on_update(&qname, row, is_retraction);
        })?;
        self.queries.lock().entry(query.to_string()).or_default();
        Ok(())
    }

    /// Add a session's sender to `query`'s fan-out list.
    /// [`ensure_query`](Hub::ensure_query) must have succeeded first.
    pub fn subscribe(&self, query: &str, session: u64, sender: OutboundSender) {
        let mut queries = self.queries.lock();
        let state = queries.entry(query.to_string()).or_default();
        if state.subs.iter().all(|s| s.session != session) {
            state.subs.push(SubEntry { session, sender });
        }
    }

    /// Remove one session's subscription to `query`. Returns whether a
    /// subscription existed.
    pub fn unsubscribe(&self, query: &str, session: u64) -> bool {
        let mut queries = self.queries.lock();
        match queries.get_mut(query) {
            Some(state) => {
                let before = state.subs.len();
                state.subs.retain(|s| s.session != session);
                state.subs.len() < before
            }
            None => false,
        }
    }

    /// Drop every subscription a departing session holds (connection
    /// teardown). The engine-side subscription stays — the materialized
    /// view keeps accumulating for `GET`.
    pub fn remove_session(&self, session: u64) {
        let mut queries = self.queries.lock();
        for state in queries.values_mut() {
            state.subs.retain(|s| s.session != session);
        }
    }

    /// Current materialized rows for `query` (`None`: never ensured).
    pub fn rows(&self, query: &str) -> Option<Vec<Record>> {
        self.queries.lock().get(query).map(|q| q.rows.clone())
    }

    /// The engine-side delta callback: maintain the view, fan out.
    fn on_update(&self, query: &str, row: &Record, is_retraction: bool) {
        let mut queries = self.queries.lock();
        let Some(state) = queries.get_mut(query) else {
            return;
        };
        if is_retraction {
            if let Some(pos) = state.rows.iter().position(|r| r == row) {
                state.rows.remove(pos);
            }
        } else {
            state.rows.push(row.clone());
        }
        if state.subs.is_empty() {
            return;
        }
        let sign = if is_retraction { '-' } else { '+' };
        let frame = format!("UPDATE {query} {sign} {}", render_row(row));
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        state.subs.retain(|sub| {
            match sub.sender.try_send(Outbound::Frame(frame.clone())) {
                Ok(()) => {
                    delivered += 1;
                    true
                }
                Err(TrySendError::Full(_)) => {
                    // Alive but lagging: shed this update, keep the
                    // subscription (the counter makes the gap visible).
                    dropped += 1;
                    true
                }
                // Receiver gone: the session died mid-stream. Pruning
                // here is what keeps a dropped subscriber from wedging
                // or slowing the notify path.
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
        drop(queries);
        self.with_metrics(|m| {
            m.updates_delivered.add(delivered);
            m.updates_dropped.add(dropped);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_core::server::ServerConfig;
    use evdb_types::{DataType, Schema, SimClock, TimestampMs, Value};
    use std::sync::mpsc::sync_channel;

    fn engine_with_query() -> EventServer {
        let engine = EventServer::in_memory(ServerConfig {
            clock: SimClock::new(TimestampMs(0)),
            ..Default::default()
        })
        .unwrap();
        engine
            .create_stream("s", Schema::of(&[("v", DataType::Int)]))
            .unwrap();
        engine
            .register_cql("q", "SELECT count() AS n FROM s [ROWS 1]")
            .unwrap();
        engine
    }

    #[test]
    fn fan_out_delivers_in_order_to_every_subscriber() {
        let engine = engine_with_query();
        let hub = Hub::new();
        hub.ensure_query(&engine, "q").unwrap();
        let (tx_a, rx_a) = sync_channel(16);
        let (tx_b, rx_b) = sync_channel(16);
        hub.subscribe("q", 1, tx_a);
        hub.subscribe("q", 2, tx_b);
        for i in 0..3 {
            engine
                .ingest("s", TimestampMs(i), evdb_types::Record::from_iter([Value::Int(i)]))
                .unwrap();
        }
        let drain = |rx: OutboundReceiver| -> Vec<Outbound> { rx.try_iter().collect() };
        let a = drain(rx_a);
        assert_eq!(a.len(), 3);
        assert_eq!(a, drain(rx_b), "all subscribers see the same sequence");
        assert_eq!(a[0], Outbound::Frame("UPDATE q + 1".into()));
    }

    #[test]
    fn dropped_subscriber_is_pruned_not_wedged() {
        let engine = engine_with_query();
        let hub = Hub::new();
        hub.ensure_query(&engine, "q").unwrap();
        let (tx, rx) = sync_channel(16);
        hub.subscribe("q", 7, tx);
        drop(rx); // session died without unsubscribing
        engine
            .ingest("s", TimestampMs(0), evdb_types::Record::from_iter([Value::Int(1)]))
            .unwrap();
        assert_eq!(hub.active_subscriptions(), 0, "dead sub must be pruned");
        // And the view still accumulates.
        assert_eq!(hub.rows("q").unwrap().len(), 1);
    }

    #[test]
    fn slow_subscriber_sheds_but_stays_subscribed() {
        let engine = engine_with_query();
        let hub = Hub::new();
        hub.ensure_query(&engine, "q").unwrap();
        let (tx, rx) = sync_channel(1);
        hub.subscribe("q", 9, tx);
        for i in 0..3 {
            engine
                .ingest("s", TimestampMs(i), evdb_types::Record::from_iter([Value::Int(i)]))
                .unwrap();
        }
        // Buffer of 1: first update queued, the rest shed.
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(hub.active_subscriptions(), 1);
    }

    #[test]
    fn retraction_compacts_the_view() {
        let engine = engine_with_query();
        let hub = Hub::new();
        hub.ensure_query(&engine, "q").unwrap();
        // Simulate a signed delta pair directly through the callback.
        let row = evdb_types::Record::from_iter([Value::Int(1)]);
        hub.on_update("q", &row, false);
        assert_eq!(hub.rows("q").unwrap().len(), 1);
        hub.on_update("q", &row, true);
        assert_eq!(hub.rows("q").unwrap().len(), 0);
    }
}
