//! Sessioned request dispatch, shared by the TCP frontend (every
//! command) and the HTTP frontend (the ingest/query/pump subset).
//!
//! A session is one transport connection: a unique id, an outbound
//! channel its writer drains, and whatever subscriptions it has
//! registered with the [`Hub`]. Dispatch itself is synchronous — the
//! admission gate inside [`EventServer::ingest_async`] is what turns a
//! full staged buffer into either a stalled reader (Block → socket
//! backpressure), an `ERR overloaded` reply (Reject), or a counted
//! shed (ShedLowest), making the overload policy a client-visible
//! contract (DESIGN.md D13).

use std::sync::Arc;

use evdb_core::server::CaptureMechanism;
use evdb_core::EventServer;

use crate::hub::{Hub, Outbound, OutboundSender, ServerMetrics};
use crate::protocol::{
    parse_record, parse_request, render_err, render_proto_err, render_row, Request,
};

/// One connection's dispatch context.
pub struct Session {
    /// Unique session id (subscription ownership key).
    pub id: u64,
    /// The engine facade.
    pub engine: Arc<EventServer>,
    /// Shared fan-out hub.
    pub hub: Arc<Hub>,
    /// Server-layer counters.
    pub metrics: Arc<ServerMetrics>,
    /// This session's outbound channel (writer drains it).
    pub out: OutboundSender,
}

impl Session {
    /// Queue one reply frame (drops silently if the writer is gone —
    /// the reader loop notices the dead socket on its own).
    pub fn reply(&self, frame: String) {
        let _ = self.out.send(Outbound::Frame(frame));
    }

    fn reply_err(&self, frame: String) {
        self.metrics.errors.inc();
        self.reply(frame);
    }

    /// Parse and dispatch one request frame. Returns `false` when the
    /// session asked to close.
    pub fn handle_line(&self, line: &str) -> bool {
        self.metrics.requests.inc();
        match parse_request(line) {
            Ok(req) => self.dispatch(req),
            Err(msg) => {
                self.reply_err(render_proto_err(&msg));
                true
            }
        }
    }

    fn dispatch(&self, req: Request) -> bool {
        match req {
            Request::Ping => self.reply("PONG".into()),
            Request::Quit => {
                self.reply("BYE".into());
                let _ = self.out.send(Outbound::Close);
                return false;
            }
            Request::CreateStream { name, schema } => {
                match self.engine.create_stream(&name, schema) {
                    Ok(()) => self.reply("OK".into()),
                    Err(e) => self.reply_err(render_err(&e)),
                }
            }
            Request::CreateTable { name, schema, key } => {
                match self.engine.db().create_table(&name, schema, &key) {
                    Ok(_) => self.reply("OK".into()),
                    Err(e) => self.reply_err(render_err(&e)),
                }
            }
            Request::Capture { table, journal } => {
                let mechanism = if journal {
                    CaptureMechanism::Journal
                } else {
                    CaptureMechanism::Trigger
                };
                match self.engine.capture_table(&table, mechanism) {
                    Ok(stream) => self.reply(format!("OK {stream}")),
                    Err(e) => self.reply_err(render_err(&e)),
                }
            }
            Request::RegisterQuery { name, cql } => {
                match self.engine.register_cql(&name, &cql) {
                    // Attach the hub's materialized view immediately, so
                    // a later GET sees every result row the query emitted
                    // since registration, not just since first read.
                    Ok(()) => match self.hub.ensure_query(&self.engine, &name) {
                        Ok(()) => self.reply("OK".into()),
                        Err(e) => self.reply_err(render_err(&e)),
                    },
                    Err(e) => self.reply_err(render_err(&e)),
                }
            }
            Request::Ingest { stream, ts, values } => match self.stage(&stream, ts, &values) {
                Ok(()) => self.reply("OK staged".into()),
                Err(e) => self.reply_err(render_err(&e)),
            },
            Request::Insert { table, values } => match self.insert(&table, &values) {
                Ok(()) => self.reply("OK inserted".into()),
                Err(e) => self.reply_err(render_err(&e)),
            },
            Request::Subscribe { query } => {
                match self.hub.ensure_query(&self.engine, &query) {
                    Ok(()) => {
                        self.hub.subscribe(&query, self.id, self.out.clone());
                        self.reply(format!("OK subscribed {query}"));
                    }
                    Err(e) => self.reply_err(render_err(&e)),
                }
            }
            Request::Unsubscribe { query } => {
                if self.hub.unsubscribe(&query, self.id) {
                    self.reply(format!("OK unsubscribed {query}"));
                } else {
                    self.reply_err(render_proto_err(&format!(
                        "not subscribed to '{query}'"
                    )));
                }
            }
            Request::Get { query } => match self.hub.ensure_query(&self.engine, &query) {
                Ok(()) => {
                    let rows = self.hub.rows(&query).unwrap_or_default();
                    for row in &rows {
                        self.reply(format!("ROW {}", render_row(row)));
                    }
                    self.reply(format!("OK {} rows", rows.len()));
                }
                Err(e) => self.reply_err(render_err(&e)),
            },
            Request::Pump => match self.engine.pump() {
                Ok(stats) => self.reply(format!(
                    "OK captured={} derived={} notified={}",
                    stats.captured, stats.derived, stats.notified
                )),
                Err(e) => self.reply_err(render_err(&e)),
            },
            Request::Stats => {
                let ac = self.engine.admission();
                self.reply(format!(
                    "OK depth={} shed={} rejected={} dropped_capture={}",
                    ac.depth(),
                    ac.shed_total(),
                    ac.rejected_total(),
                    ac.dropped_capture_total()
                ));
            }
        }
        true
    }

    /// Stage one event through admission control. Under `Block` this
    /// call parks until the pump drains — the reader stops consuming
    /// and TCP flow control propagates the stall to the producer.
    fn stage(
        &self,
        stream: &str,
        ts: evdb_types::TimestampMs,
        values: &str,
    ) -> evdb_types::Result<()> {
        let schema = self.engine.runtime().stream_schema(stream)?;
        let record = parse_record(&schema, values)?;
        self.engine.ingest_async(stream, ts, record)
    }

    /// Insert through the storage engine; a trigger capture's admission
    /// check runs inside this write, so `Reject` rolls the row back
    /// before the error reaches the client.
    fn insert(&self, table: &str, values: &str) -> evdb_types::Result<()> {
        let table_ref = self.engine.db().table(table)?;
        let record = parse_record(table_ref.schema(), values)?;
        self.engine.db().insert(table, record).map(|_| ())
    }

    /// Connection teardown: drop every subscription this session holds.
    pub fn teardown(&self) {
        self.hub.remove_session(self.id);
    }
}
