//! The `evdb-server` binary: an [`EventServer`] behind TCP + HTTP.
//!
//! ```text
//! evdb-server [--dir PATH] [--tcp ADDR] [--http ADDR|none]
//!             [--capacity N] [--policy block|reject|shed]
//!             [--pump-ms MS|none] [--buffer N]
//!             [--max-conns N] [--idle-timeout MS|none]
//!             [--http-max-requests N]
//! ```
//!
//! Defaults: in-memory engine, TCP on 127.0.0.1:7070, HTTP on
//! 127.0.0.1:7071, capacity 65536, policy block, 1 ms background pump,
//! 1024 connections, 60 s idle deadline, 1000 requests per HTTP
//! keep-alive connection.

use std::sync::Arc;
use std::time::Duration;

use evdb_core::server::ServerConfig;
use evdb_core::{EventServer, OverloadPolicy};
use evdb_server::{NetConfig, NetServer};

fn usage() -> ! {
    eprintln!(
        "usage: evdb-server [--dir PATH] [--tcp ADDR] [--http ADDR|none] \
         [--capacity N] [--policy block|reject|shed] [--pump-ms MS|none] [--buffer N] \
         [--max-conns N] [--idle-timeout MS|none] [--http-max-requests N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut dir: Option<String> = None;
    let mut tcp = "127.0.0.1:7070".to_string();
    let mut http: Option<String> = Some("127.0.0.1:7071".to_string());
    let mut capacity = 65_536usize;
    let mut policy = OverloadPolicy::Block;
    let mut pump_interval = Some(Duration::from_millis(1));
    let mut buffer = 1024usize;
    let defaults = NetConfig::default();
    let mut max_conns = defaults.max_connections;
    let mut idle_timeout = defaults.idle_timeout;
    let mut http_max_requests = defaults.http_max_requests;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--dir" => dir = Some(value()),
            "--tcp" => tcp = value(),
            "--http" => {
                let v = value();
                http = if v == "none" { None } else { Some(v) };
            }
            "--capacity" => capacity = value().parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                policy = match value().as_str() {
                    "block" => OverloadPolicy::Block,
                    "reject" => OverloadPolicy::Reject,
                    "shed" => OverloadPolicy::ShedLowest,
                    _ => usage(),
                }
            }
            "--pump-ms" => {
                let v = value();
                pump_interval = if v == "none" {
                    None
                } else {
                    Some(Duration::from_millis(v.parse().unwrap_or_else(|_| usage())))
                };
            }
            "--buffer" => buffer = value().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => max_conns = value().parse().unwrap_or_else(|_| usage()),
            "--idle-timeout" => {
                let v = value();
                idle_timeout = if v == "none" {
                    None
                } else {
                    Some(Duration::from_millis(v.parse().unwrap_or_else(|_| usage())))
                };
            }
            "--http-max-requests" => {
                http_max_requests = value().parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let config = ServerConfig {
        ingest_capacity: capacity,
        overload: policy,
        ..Default::default()
    };
    let engine = match &dir {
        Some(path) => EventServer::open(path, config),
        None => EventServer::in_memory(config),
    };
    let engine = match engine {
        Ok(e) => Arc::new(e),
        Err(e) => {
            eprintln!("evdb-server: failed to open engine: {e}");
            std::process::exit(1);
        }
    };

    let net = NetServer::start(
        engine,
        NetConfig {
            tcp_addr: tcp,
            http_addr: http,
            session_buffer: buffer,
            pump_interval,
            max_connections: max_conns,
            idle_timeout,
            http_max_requests,
        },
    );
    let net = match net {
        Ok(n) => n,
        Err(e) => {
            eprintln!("evdb-server: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "evdb-server: tcp {} http {} (dir: {})",
        net.tcp_addr(),
        net.http_addr().map_or("disabled".into(), |a| a.to_string()),
        dir.as_deref().unwrap_or("in-memory"),
    );

    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
