//! Dynamically typed values and their data types.
//!
//! [`Value`] is the cell type of every record, message payload and
//! expression result in EventDB. It is cheap to clone (strings and byte
//! arrays are reference counted) and has a **total order** and a **hash
//! consistent with equality**, so values can serve as index keys in the
//! storage engine and in the rule matcher's per-attribute hash indexes.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::time::TimestampMs;

/// The static type of a [`Value`].
///
/// Schemas attach a `DataType` to each field; the expression type checker
/// uses them to reject ill-typed predicates before any event is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Raw bytes.
    Bytes,
    /// Millisecond-precision timestamp.
    Timestamp,
}

impl DataType {
    /// Whether a value of this type can be compared numerically with the
    /// other type (ints and floats inter-compare in expressions).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Human-readable name used in error messages and schema printouts.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Bytes => "BYTES",
            DataType::Timestamp => "TIMESTAMP",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed value.
///
/// `Null` is a member of every type (field nullability is enforced by the
/// schema, not the value). Strings and byte arrays are `Arc`-backed so that
/// cloning a value — which happens on every index insertion and message
/// copy — never reallocates payload bytes.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Raw bytes.
    Bytes(Arc<[u8]>),
    /// Millisecond timestamp.
    Timestamp(TimestampMs),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Construct a bytes value.
    pub fn bytes(b: impl Into<Arc<[u8]>>) -> Self {
        Value::Bytes(b.into())
    }

    /// The runtime [`DataType`], or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a bool, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract the numeric content as `f64`: ints widen, floats pass
    /// through, timestamps expose their millisecond count.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(t.0 as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a timestamp, if this value is one.
    pub fn as_timestamp(&self) -> Option<TimestampMs> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether `self` can be stored in a field of type `dtype`.
    /// `Null` fits any type; ints may be stored in float fields.
    pub fn fits(&self, dtype: DataType) -> bool {
        match (self, dtype) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Float) => true,
            (v, d) => v.data_type() == Some(d),
        }
    }

    /// Coerce to the given type if a lossless (or int→float) conversion
    /// exists, otherwise return the value unchanged.
    pub fn coerce(self, dtype: DataType) -> Value {
        match (&self, dtype) {
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Int(i), DataType::Timestamp) => Value::Timestamp(TimestampMs(*i)),
            _ => self,
        }
    }

    /// Rank used to order values of *different* types; gives `Value` a
    /// total order so heterogeneous index keys sort deterministically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats inter-sort numerically
            Value::Timestamp(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
        }
    }

    /// SQL-style three-valued comparison used by the expression evaluator:
    /// returns `None` when either side is `Null` or the types are
    /// incomparable; numerics inter-compare.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: by type rank, then within-type. Ints and floats share a
    /// rank and compare numerically (`total_cmp` for NaN determinism), so
    /// `Int(1) == Float(1.0)` under this order — convenient for index keys
    /// fed from mixed numeric expressions.
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            _ => unreachable!("type ranks matched but variants differ"),
        }
    }
}

impl Hash for Value {
    /// Hash consistent with `Eq`: numeric values hash through their `f64`
    /// bit pattern so `Int(1)` and `Float(1.0)` collide as required.
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(2);
                // Normalize -0.0 to 0.0 (they are Ord-equal via total_cmp?
                // no: total_cmp orders -0.0 < 0.0, so they are NOT equal and
                // may hash differently; keep raw bits).
                state.write_u64(f.to_bits());
            }
            Value::Timestamp(t) => {
                state.write_u8(3);
                t.0.hash(state);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
            Value::Bytes(b) => {
                state.write_u8(5);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bytes(b) => {
                f.write_str("x'")?;
                for byte in b.iter() {
                    write!(f, "{byte:02x}")?;
                }
                f.write_str("'")
            }
            Value::Timestamp(t) => write!(f, "@{}", t.0),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}
impl<'a> From<Cow<'a, str>> for Value {
    fn from(s: Cow<'a, str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }
}
impl From<TimestampMs> for Value {
    fn from(t: TimestampMs) -> Self {
        Value::Timestamp(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_checks() {
        assert_eq!(Value::Int(3).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert!(Value::Int(1).fits(DataType::Float));
        assert!(!Value::Float(1.0).fits(DataType::Int));
        assert!(Value::Null.fits(DataType::Str));
    }

    #[test]
    fn numeric_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_ne!(Value::Int(7), Value::Float(7.5));
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = [
            Value::from("abc"),
            Value::Int(-1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
            Value::Timestamp(TimestampMs(10)),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(-1));
        assert_eq!(vals[3], Value::Float(0.5));
        assert_eq!(vals[4], Value::Timestamp(TimestampMs(10)));
        assert_eq!(vals[5], Value::from("abc"));
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
        // Incomparable types yield None rather than panicking.
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::from("o'brien").to_string(), "'o''brien'");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Int(2).to_string(), "2");
        assert_eq!(Value::bytes([0xde, 0xad].as_slice().to_vec()).to_string(), "x'dead'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
    }

    #[test]
    fn coerce_int_to_float() {
        assert_eq!(Value::Int(3).coerce(DataType::Float), Value::Float(3.0));
        assert_eq!(Value::from("x").coerce(DataType::Float), Value::from("x"));
    }
}
