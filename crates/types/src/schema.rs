//! Schemas: named, typed, ordered field lists.
//!
//! A [`Schema`] is shared (`Arc`) between the table that owns it, every
//! record flowing out of that table, the expression type checker and the
//! CQ planner. Field lookup by name is O(1) via an internal index.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::record::Record;
use crate::value::{DataType, Value};

/// A single field definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (case-sensitive).
    pub name: String,
    /// Field type.
    pub dtype: DataType,
    /// Whether NULL is admissible.
    pub nullable: bool,
}

impl FieldDef {
    /// A non-nullable field.
    pub fn required(name: impl Into<String>, dtype: DataType) -> FieldDef {
        FieldDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> FieldDef {
        FieldDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

/// An ordered list of fields with O(1) name lookup.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<FieldDef>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema; duplicate field names are rejected.
    pub fn new(fields: Vec<FieldDef>) -> Result<Arc<Schema>> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(Error::Schema(format!("duplicate field name '{}'", f.name)));
            }
        }
        Ok(Arc::new(Schema { fields, by_name }))
    }

    /// Convenience builder from `(name, dtype)` pairs, all non-nullable.
    pub fn of(fields: &[(&str, DataType)]) -> Arc<Schema> {
        Schema::new(
            fields
                .iter()
                .map(|(n, t)| FieldDef::required(*n, *t))
                .collect(),
        )
        .expect("static schema must have unique names")
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Validate a record against this schema: arity, per-field type fit,
    /// and nullability. Int values are accepted in Float fields.
    pub fn validate(&self, record: &Record) -> Result<()> {
        if record.len() != self.fields.len() {
            return Err(Error::Schema(format!(
                "record has {} values but schema has {} fields",
                record.len(),
                self.fields.len()
            )));
        }
        for (f, v) in self.fields.iter().zip(record.values()) {
            if v.is_null() {
                if !f.nullable {
                    return Err(Error::Schema(format!(
                        "NULL in non-nullable field '{}'",
                        f.name
                    )));
                }
            } else if !v.fits(f.dtype) {
                return Err(Error::Schema(format!(
                    "field '{}' expects {} but got {}",
                    f.name,
                    f.dtype,
                    v.data_type().map(|d| d.name()).unwrap_or("NULL"),
                )));
            }
        }
        Ok(())
    }

    /// Validate and coerce a record in place (int→float widening for float
    /// fields), returning the normalized record.
    pub fn normalize(&self, record: Record) -> Result<Record> {
        self.validate(&record)?;
        let values = record
            .into_values()
            .into_iter()
            .zip(self.fields.iter())
            .map(|(v, f)| if v.is_null() { v } else { v.coerce(f.dtype) })
            .collect();
        Ok(Record::new(values))
    }

    /// Project a sub-schema with the named fields, preserving given order.
    pub fn project(&self, names: &[&str]) -> Result<Arc<Schema>> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field(n)
                .ok_or_else(|| Error::Schema(format!("unknown field '{n}'")))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }

    /// Concatenate two schemas (used by stream-stream joins); duplicate
    /// names from the right side are prefixed.
    pub fn join(&self, right: &Schema, right_prefix: &str) -> Result<Arc<Schema>> {
        let mut fields = self.fields.clone();
        for f in right.fields() {
            let name = if self.index_of(&f.name).is_some() {
                format!("{right_prefix}{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(FieldDef {
                name,
                dtype: f.dtype,
                nullable: f.nullable,
            });
        }
        Schema::new(fields)
    }

    /// Extract the value of a named field from a record (None if the field
    /// does not exist).
    pub fn get<'r>(&self, record: &'r Record, name: &str) -> Option<&'r Value> {
        self.index_of(name).and_then(|i| record.get(i))
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}
impl Eq for Schema {}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, fd) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", fd.name, fd.dtype)?;
            if fd.nullable {
                f.write_str(" NULL")?;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::new(vec![
            FieldDef::required("id", DataType::Int),
            FieldDef::required("sym", DataType::Str),
            FieldDef::nullable("price", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_and_display() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("sym"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.to_string(), "(id INT, sym STR, price FLOAT NULL)");
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            FieldDef::required("a", DataType::Int),
            FieldDef::required("a", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn validate_checks_arity_types_nulls() {
        let s = schema();
        let ok = Record::new(vec![1i64.into(), "IBM".into(), Value::Null]);
        assert!(s.validate(&ok).is_ok());

        let bad_arity = Record::new(vec![1i64.into()]);
        assert!(s.validate(&bad_arity).is_err());

        let bad_type = Record::new(vec![1i64.into(), 2i64.into(), Value::Null]);
        assert!(s.validate(&bad_type).is_err());

        let bad_null = Record::new(vec![Value::Null, "IBM".into(), Value::Null]);
        assert!(s.validate(&bad_null).is_err());
    }

    #[test]
    fn normalize_widens_ints_in_float_fields() {
        let s = schema();
        let r = s
            .normalize(Record::new(vec![1i64.into(), "IBM".into(), 5i64.into()]))
            .unwrap();
        assert_eq!(r.get(2), Some(&Value::Float(5.0)));
    }

    #[test]
    fn project_and_join() {
        let s = schema();
        let p = s.project(&["price", "id"]).unwrap();
        assert_eq!(p.to_string(), "(price FLOAT NULL, id INT)");
        assert!(s.project(&["ghost"]).is_err());

        let j = s.join(&s, "r_").unwrap();
        assert_eq!(j.len(), 6);
        assert!(j.index_of("r_id").is_some());
        assert!(j.index_of("r_sym").is_some());
    }

    #[test]
    fn get_by_name() {
        let s = schema();
        let r = Record::new(vec![7i64.into(), "X".into(), Value::Null]);
        assert_eq!(s.get(&r, "id"), Some(&Value::Int(7)));
        assert_eq!(s.get(&r, "ghost"), None);
    }
}
