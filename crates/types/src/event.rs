//! The event envelope.
//!
//! An [`Event`] is a record plus provenance: a unique id, the source that
//! produced it (table name, queue, external feed), its event time, and a
//! shared schema describing the payload. Everything downstream — rule
//! matching, continuous queries, analytics models, notification routing —
//! consumes this one shape.

use std::fmt;
use std::sync::Arc;

use crate::record::Record;
use crate::schema::Schema;
use crate::time::TimestampMs;
use crate::trace::Trace;
use crate::value::Value;

/// Unique id of an event within one EventDB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evt#{}", self.0)
    }
}

/// A typed, timestamped, attributed event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Unique id (monotonic per instance).
    pub id: EventId,
    /// Name of the producing source: a table, a queue, a stream, a feed.
    pub source: Arc<str>,
    /// Event time (not arrival time) in milliseconds.
    pub timestamp: TimestampMs,
    /// The payload tuple.
    pub payload: Record,
    /// Schema of the payload.
    pub schema: Arc<Schema>,
    /// Pipeline trace: id + per-stage timestamps. Events converted from
    /// captured changes inherit the change's trace; directly constructed
    /// events start with an unstamped trace keyed by the event id.
    pub trace: Trace,
    /// True when this event *withdraws* a previously emitted event with
    /// the same payload (a retraction delta). Plain events are inserts.
    /// Speculative continuous queries emit retraction/insert pairs when
    /// late data revises an already-emitted result; subscribers compact
    /// the delta stream to the final answer.
    pub retraction: bool,
}

impl Event {
    /// Construct an event.
    pub fn new(
        id: EventId,
        source: impl Into<Arc<str>>,
        timestamp: TimestampMs,
        payload: Record,
        schema: Arc<Schema>,
    ) -> Event {
        Event {
            id,
            source: source.into(),
            timestamp,
            payload,
            schema,
            trace: Trace::new(id.0),
            retraction: false,
        }
    }

    /// Is this event a retraction delta?
    pub fn is_retraction(&self) -> bool {
        self.retraction
    }

    /// Clone of this event marked as a retraction. The payload is kept
    /// byte-identical so a subscriber can cancel it against the original
    /// insert by value.
    pub fn to_retraction(&self) -> Event {
        let mut e = self.clone();
        e.retraction = true;
        e
    }

    /// Payload field by name (None if absent from the schema).
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.schema.get(&self.payload, field)
    }

    /// Clone with a different payload/schema, preserving identity fields.
    /// Used by projection operators that transform the tuple but keep the
    /// event's time and provenance.
    pub fn with_payload(&self, payload: Record, schema: Arc<Schema>) -> Event {
        Event {
            id: self.id,
            source: Arc::clone(&self.source),
            timestamp: self.timestamp,
            payload,
            schema,
            trace: self.trace,
            retraction: self.retraction,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}@{} {}{}",
            self.id,
            self.source,
            self.timestamp,
            self.payload,
            if self.retraction { " (retract)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    #[test]
    fn field_access_and_display() {
        let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
        let e = Event::new(
            EventId(1),
            "ticks",
            TimestampMs(42),
            Record::from_iter([Value::from("IBM"), Value::Float(101.5)]),
            schema,
        );
        assert_eq!(e.get("sym"), Some(&Value::from("IBM")));
        assert_eq!(e.get("ghost"), None);
        assert_eq!(e.to_string(), "evt#1 ticks@42ms ['IBM', 101.5]");
    }

    #[test]
    fn with_payload_preserves_identity() {
        let s1 = Schema::of(&[("a", DataType::Int)]);
        let s2 = Schema::of(&[("b", DataType::Int)]);
        let e = Event::new(
            EventId(9),
            "src",
            TimestampMs(5),
            Record::from_iter([1i64]),
            s1,
        );
        let e2 = e.with_payload(Record::from_iter([2i64]), s2);
        assert_eq!(e2.id, e.id);
        assert_eq!(e2.timestamp, e.timestamp);
        assert_eq!(e2.source, e.source);
        assert_eq!(e2.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn retraction_marking() {
        let s = Schema::of(&[("a", DataType::Int)]);
        let e = Event::new(
            EventId(3),
            "src",
            TimestampMs(7),
            Record::from_iter([1i64]),
            Arc::clone(&s),
        );
        assert!(!e.is_retraction());
        let r = e.to_retraction();
        assert!(r.is_retraction());
        assert_eq!(r.payload, e.payload);
        assert!(r.to_string().ends_with("(retract)"));
        // The flag survives payload rewrites (projection operators).
        assert!(r.with_payload(Record::from_iter([2i64]), s).is_retraction());
    }
}
