//! Monotonic id generation.
//!
//! Every subsystem that mints ids (events, messages, transactions, rules)
//! uses an [`IdGenerator`]: a process-local atomic counter. Ids are unique
//! within a generator and strictly increasing, which the queue layer relies
//! on for FIFO ordering and the WAL for LSN assignment.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotonic u64 id source.
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Start issuing ids from `first`.
    pub fn starting_at(first: u64) -> IdGenerator {
        IdGenerator {
            next: AtomicU64::new(first),
        }
    }

    /// Take the next id.
    pub fn next_id(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Peek at the id that would be issued next (racy under concurrency;
    /// intended for recovery bootstrapping and tests).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Ensure the next issued id is at least `floor`. Used after recovery
    /// so new ids do not collide with ids read back from the journal.
    pub fn bump_to(&self, floor: u64) {
        self.next.fetch_max(floor, Ordering::Relaxed);
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        IdGenerator::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_ids() {
        let g = IdGenerator::default();
        assert_eq!(g.next_id(), 1);
        assert_eq!(g.next_id(), 2);
        assert_eq!(g.peek(), 3);
    }

    #[test]
    fn bump_to_only_raises() {
        let g = IdGenerator::starting_at(10);
        g.bump_to(5);
        assert_eq!(g.peek(), 10);
        g.bump_to(100);
        assert_eq!(g.next_id(), 100);
    }

    #[test]
    fn concurrent_ids_are_unique() {
        let g = Arc::new(IdGenerator::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_id()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8_000);
    }
}
