//! Records: ordered value tuples.
//!
//! A [`Record`] is schema-agnostic — the pairing with a [`crate::Schema`]
//! happens at the table / stream boundary. This keeps the hot path (copying
//! tuples between operators) a plain `Vec<Value>` clone with no metadata.

use std::fmt;

use crate::value::Value;

/// An ordered tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Wrap a value vector.
    pub fn new(values: Vec<Value>) -> Record {
        Record { values }
    }

    /// An empty record.
    pub fn empty() -> Record {
        Record { values: Vec::new() }
    }

    /// Build from anything convertible to values (also available through
    /// the `FromIterator` impl; the inherent name keeps call sites terse).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(iter: I) -> Record
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Record {
            values: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when there are no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Mutable value at position `i`.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut Value> {
        self.values.get_mut(i)
    }

    /// Replace the value at position `i`; panics if out of bounds.
    pub fn set(&mut self, i: usize, v: Value) {
        self.values[i] = v;
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Append a value (used by join/projection operators building rows).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Project positions into a new record. Panics if any index is out of
    /// bounds — projections are planned against a schema beforehand.
    pub fn project(&self, indices: &[usize]) -> Record {
        Record {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenate two records (join output).
    pub fn concat(&self, right: &Record) -> Record {
        let mut values = Vec::with_capacity(self.len() + right.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Record { values }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

impl<V: Into<Value>> FromIterator<V> for Record {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Record::from_iter(iter)
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let r = Record::from_iter([1i64, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(1), Some(&Value::Int(2)));
        assert_eq!(r.get(9), None);
        assert!(!r.is_empty());
        assert!(Record::empty().is_empty());
    }

    #[test]
    fn project_and_concat() {
        let r = Record::from_iter([10i64, 20, 30]);
        assert_eq!(r.project(&[2, 0]), Record::from_iter([30i64, 10]));
        let j = r.concat(&Record::from_iter([40i64]));
        assert_eq!(j.len(), 4);
        assert_eq!(j.get(3), Some(&Value::Int(40)));
    }

    #[test]
    fn mutation() {
        let mut r = Record::from_iter([1i64]);
        r.set(0, Value::from("x"));
        r.push(Value::Bool(true));
        assert_eq!(r.to_string(), "['x', true]");
        *r.get_mut(1).unwrap() = Value::Bool(false);
        assert_eq!(r.get(1), Some(&Value::Bool(false)));
    }
}
