//! # evdb-types
//!
//! Foundation types shared by every EventDB crate: the dynamic [`Value`]
//! model, [`Schema`]/[`Record`] relational building blocks, the [`Event`]
//! envelope that flows through the event-processing pipeline, error types,
//! and pluggable [`Clock`]s (a real clock and a deterministic simulated one
//! for tests and reproducible experiments).
//!
//! The paper this workspace reproduces (Chandy & Gawlick, SIGMOD'07) treats
//! the database as the center of an event-driven architecture; these types
//! are deliberately database-flavoured: values are typed, records conform to
//! schemas, and events are records with provenance and time.

pub mod error;
pub mod event;
pub mod id;
pub mod record;
pub mod schema;
pub mod time;
pub mod trace;
pub mod value;

pub use error::{Error, Result};
pub use event::{Event, EventId};
pub use id::IdGenerator;
pub use record::Record;
pub use schema::{FieldDef, Schema};
pub use time::{Clock, SimClock, SystemClock, TimestampMs};
pub use trace::{Stage, Trace};
pub use value::{DataType, Value};
