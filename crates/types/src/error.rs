//! The workspace-wide error type.
//!
//! One enum rather than per-crate error hierarchies: the subsystems compose
//! tightly (queues sit on storage, rules on expressions, the facade on
//! everything), and a single error type keeps `?` flowing across crate
//! boundaries without conversion boilerplate.

use std::fmt;
use std::io;

/// Result alias used across all EventDB crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified EventDB error.
#[derive(Debug)]
pub enum Error {
    /// Expression or CQL text failed to parse. Carries byte offset and message.
    Parse { offset: usize, message: String },
    /// An expression or record did not type-check against a schema.
    Type(String),
    /// Schema violation: unknown field, arity mismatch, null in non-null field.
    Schema(String),
    /// Named object (table, queue, rule, stream, …) does not exist.
    NotFound(String),
    /// Named object already exists.
    AlreadyExists(String),
    /// Transaction conflict or misuse (e.g. write on a read-only txn,
    /// operating on a finished transaction).
    Transaction(String),
    /// Primary-key or unique-index violation.
    Constraint(String),
    /// WAL or table-file corruption detected during recovery or mining.
    Corruption(String),
    /// Queue-level protocol errors (ack of unknown message, consumer gone…).
    Queue(String),
    /// Delivery/propagation failure in the distribution layer.
    Delivery(String),
    /// Authorization failure (principal lacks a privilege).
    Unauthorized(String),
    /// Underlying I/O failure.
    Io(io::Error),
    /// Invalid argument or configuration.
    Invalid(String),
    /// Admission control turned the producer away: the staged ingest
    /// buffer is at capacity under `OverloadPolicy::Reject`. Retryable —
    /// producers should back off and re-offer.
    Overloaded(String),
    /// A replay cursor's history was truncated out from under it (a
    /// checkpoint discarded journal records the cursor had not yet
    /// consumed). The missing changes are only recoverable from the
    /// checkpointed state, not the log — callers must re-baseline and
    /// resync the cursor rather than continue as if nothing was lost.
    TruncatedHistory(String),
}

impl Error {
    /// Convenience constructor for parse errors.
    pub fn parse(offset: usize, message: impl Into<String>) -> Error {
        Error::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Short machine-readable category, used by the audit log.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse { .. } => "parse",
            Error::Type(_) => "type",
            Error::Schema(_) => "schema",
            Error::NotFound(_) => "not_found",
            Error::AlreadyExists(_) => "already_exists",
            Error::Transaction(_) => "transaction",
            Error::Constraint(_) => "constraint",
            Error::Corruption(_) => "corruption",
            Error::Queue(_) => "queue",
            Error::Delivery(_) => "delivery",
            Error::Unauthorized(_) => "unauthorized",
            Error::Io(_) => "io",
            Error::Invalid(_) => "invalid",
            Error::Overloaded(_) => "overloaded",
            Error::TruncatedHistory(_) => "truncated_history",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::AlreadyExists(m) => write!(f, "already exists: {m}"),
            Error::Transaction(m) => write!(f, "transaction error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::Queue(m) => write!(f, "queue error: {m}"),
            Error::Delivery(m) => write!(f, "delivery error: {m}"),
            Error::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Invalid(m) => write!(f, "invalid: {m}"),
            Error::Overloaded(m) => write!(f, "overloaded: {m}"),
            Error::TruncatedHistory(m) => write!(f, "truncated history: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_kind() {
        let e = Error::parse(12, "unexpected ')'");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.to_string(), "parse error at byte 12: unexpected ')'");
        let e = Error::NotFound("table orders".into());
        assert_eq!(e.kind(), "not_found");
        assert!(e.to_string().contains("orders"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        let e: Error = io::Error::other("disk on fire").into();
        assert_eq!(e.kind(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }
}
