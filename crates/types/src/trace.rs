//! Stage tracing: a trace id plus a per-stage timestamp vector carried
//! by every event from capture to delivery.
//!
//! The pipeline has four observable stages — capture (a row change
//! becomes a `ChangeEvent`), route (the pump hands the event to an
//! evaluator), evaluate (rules/CQ/detectors run) and deliver (a
//! notification leaves the VIRT filter). A [`Trace`] records when the
//! event passed each stage, so per-stage latency histograms can be
//! derived from the stamps instead of the single capture→process number
//! the engine used to report.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::TimestampMs;

/// Process-wide trace-id source: every captured change gets a fresh id.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One observable stage of the event pipeline, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// A row change was captured (trigger/journal/snapshot/ingest).
    Capture,
    /// The pump routed the event toward an evaluator.
    Route,
    /// Rules, continuous queries and detectors ran over the event.
    Evaluate,
    /// A notification cleared the VIRT filter and left the engine.
    Deliver,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Capture, Stage::Route, Stage::Evaluate, Stage::Deliver];

    /// Lowercase stage name used in metric names and exposition.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Capture => "capture",
            Stage::Route => "route",
            Stage::Evaluate => "evaluate",
            Stage::Deliver => "deliver",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Capture => 0,
            Stage::Route => 1,
            Stage::Evaluate => 2,
            Stage::Deliver => 3,
        }
    }
}

/// A trace id plus one optional timestamp per [`Stage`].
///
/// `Copy` and 40 bytes, so threading it through event envelopes costs a
/// memcpy, not an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trace {
    /// Unique id shared by every envelope derived from one captured
    /// change (`0` for envelopes that never passed capture, e.g. events
    /// synthesized directly in tests).
    pub id: u64,
    stamps: [Option<TimestampMs>; 4],
}

impl Trace {
    /// Trace with a caller-chosen id and no stamps.
    pub fn new(id: u64) -> Trace {
        Trace {
            id,
            stamps: [None; 4],
        }
    }

    /// Allocate a fresh process-unique id and stamp [`Stage::Capture`]
    /// at `at` — the constructor capture mechanisms use.
    pub fn begin(at: TimestampMs) -> Trace {
        let mut t = Trace::new(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed));
        t.stamp(Stage::Capture, at);
        t
    }

    /// Record when the event passed `stage` (last write wins).
    pub fn stamp(&mut self, stage: Stage, at: TimestampMs) {
        self.stamps[stage.index()] = Some(at);
    }

    /// When the event passed `stage`, if stamped.
    pub fn stamp_of(&self, stage: Stage) -> Option<TimestampMs> {
        self.stamps[stage.index()]
    }

    /// Milliseconds from the `from` stamp to the `to` stamp (`None`
    /// unless both stages are stamped). Clamped at zero: clock skew
    /// between threads must not produce negative latencies.
    pub fn span_ms(&self, from: Stage, to: Stage) -> Option<i64> {
        let a = self.stamp_of(from)?;
        let b = self.stamp_of(to)?;
        Some(b.since(a).max(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_allocates_distinct_ids_and_stamps_capture() {
        let a = Trace::begin(TimestampMs(10));
        let b = Trace::begin(TimestampMs(20));
        assert_ne!(a.id, b.id);
        assert_ne!(a.id, 0);
        assert_eq!(a.stamp_of(Stage::Capture), Some(TimestampMs(10)));
        assert_eq!(a.stamp_of(Stage::Deliver), None);
    }

    #[test]
    fn spans_need_both_stamps_and_clamp_at_zero() {
        let mut t = Trace::begin(TimestampMs(100));
        assert_eq!(t.span_ms(Stage::Capture, Stage::Deliver), None);
        t.stamp(Stage::Deliver, TimestampMs(130));
        assert_eq!(t.span_ms(Stage::Capture, Stage::Deliver), Some(30));
        // A deliver stamp "before" capture (cross-thread skew) reads 0.
        t.stamp(Stage::Deliver, TimestampMs(90));
        assert_eq!(t.span_ms(Stage::Capture, Stage::Deliver), Some(0));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["capture", "route", "evaluate", "deliver"]);
    }
}
