//! Time: millisecond timestamps and pluggable clocks.
//!
//! Event processing is all about time — windows, WITHIN constraints on
//! patterns, visibility timeouts, retention. To keep every experiment
//! reproducible, all EventDB components read time through the [`Clock`]
//! trait; production code uses [`SystemClock`], tests and the benchmark
//! harness use [`SimClock`], which only advances when told to.

use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A timestamp in milliseconds since the Unix epoch.
///
/// Plain `i64` so arithmetic (window assignment, deadline math) stays
/// branch-free and cheap; negative values are permitted for simulated
/// pre-epoch time in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimestampMs(pub i64);

impl TimestampMs {
    /// The zero timestamp (epoch).
    pub const ZERO: TimestampMs = TimestampMs(0);

    /// Add a duration in milliseconds (saturating).
    pub fn plus(self, millis: i64) -> TimestampMs {
        TimestampMs(self.0.saturating_add(millis))
    }

    /// Subtract a duration in milliseconds (saturating).
    pub fn minus(self, millis: i64) -> TimestampMs {
        TimestampMs(self.0.saturating_sub(millis))
    }

    /// Milliseconds elapsed from `earlier` to `self` (may be negative).
    pub fn since(self, earlier: TimestampMs) -> i64 {
        self.0 - earlier.0
    }

    /// Align down to a window boundary of `width_ms` milliseconds.
    /// Used by tumbling/sliding window assignment. `width_ms` must be > 0.
    pub fn window_start(self, width_ms: i64) -> TimestampMs {
        debug_assert!(width_ms > 0);
        TimestampMs(self.0.div_euclid(width_ms) * width_ms)
    }
}

impl fmt::Display for TimestampMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A source of current time. Object-safe so engines can hold `Arc<dyn Clock>`.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> TimestampMs;
}

/// Wall-clock time from the operating system.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> TimestampMs {
        let d = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        TimestampMs(d.as_millis() as i64)
    }
}

/// A deterministic clock that only moves when explicitly advanced.
///
/// Shared via `Arc`, so a test can hand the same clock to the storage
/// engine, queue manager and CQ runtime and then step time forward to fire
/// visibility timeouts, window closes and retention sweeps on demand.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ms: AtomicI64,
}

impl SimClock {
    /// Create a simulated clock starting at `start`.
    pub fn new(start: TimestampMs) -> Arc<Self> {
        Arc::new(SimClock {
            now_ms: AtomicI64::new(start.0),
        })
    }

    /// Advance the clock by `millis` and return the new time.
    pub fn advance(&self, millis: i64) -> TimestampMs {
        TimestampMs(self.now_ms.fetch_add(millis, Ordering::SeqCst) + millis)
    }

    /// Jump the clock to an absolute time (must not move backwards in
    /// normal use; not enforced, tests may rewind deliberately).
    pub fn set(&self, t: TimestampMs) {
        self.now_ms.store(t.0, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> TimestampMs {
        TimestampMs(self.now_ms.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = TimestampMs(1_000);
        assert_eq!(t.plus(500), TimestampMs(1_500));
        assert_eq!(t.minus(500), TimestampMs(500));
        assert_eq!(t.plus(500).since(t), 500);
        assert_eq!(t.since(t.plus(500)), -500);
    }

    #[test]
    fn window_alignment_handles_negative_time() {
        assert_eq!(TimestampMs(1_250).window_start(1_000), TimestampMs(1_000));
        assert_eq!(TimestampMs(-1).window_start(1_000), TimestampMs(-1_000));
        assert_eq!(TimestampMs(0).window_start(1_000), TimestampMs(0));
    }

    #[test]
    fn sim_clock_is_deterministic() {
        let c = SimClock::new(TimestampMs(100));
        assert_eq!(c.now(), TimestampMs(100));
        assert_eq!(c.advance(50), TimestampMs(150));
        assert_eq!(c.now(), TimestampMs(150));
        c.set(TimestampMs(1_000));
        assert_eq!(c.now(), TimestampMs(1_000));
    }

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a.0 > 1_500_000_000_000); // after 2017 — sanity
    }
}
