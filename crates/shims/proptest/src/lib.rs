//! Shim for `proptest`: the API subset this workspace's property tests
//! use, implemented as deterministic random testing.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample;
//! * the RNG seed is derived from the test function's name, so every
//!   run explores the same case sequence (fully deterministic);
//! * string strategies accept only the simple character-class regexes
//!   the tests use (`[a-z]{0,6}`-style), not full regex syntax.
//!
//! Supported surface: `Strategy` (`prop_map`, `prop_recursive`,
//! `boxed`), `Just`, `any::<T>()`, integer/float range strategies,
//! tuple strategies, `collection::vec`, `option::of`, `Union` /
//! `prop_oneof!` (weighted and unweighted), `proptest!` with
//! `#![proptest_config(..)]`, and the `prop_assert*` macros.

pub mod test_runner {
    //! Config, error type, and the deterministic RNG driving generation.

    /// Error a property body may return; `prop_assert!` panics instead,
    /// so this mostly types `return Ok(())` early exits.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure.
        Fail(String),
        /// Input rejected by the test.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` matters to the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG (SplitMix64) used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded from an arbitrary label (e.g. the test name).
        pub fn deterministic_for(label: &str) -> TestRng {
            // FNV-1a over the label, so distinct tests get distinct
            // but reproducible streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift; bias is negligible for the spans used here.
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build recursive values: `f` receives a strategy for smaller
        /// instances (bottoming out at `self`) and returns the composite
        /// layer. `_desired_size` / `_expected_branch` are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Each layer is leaf-or-composite, so generated trees
                // have depth at most `depth` and varied shallow shapes.
                current =
                    Union::new(vec![(1, leaf.clone()), (2, f(current).boxed())]).boxed();
            }
            current
        }

        /// Type-erase into a clonable, shareable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Weighted choice among strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must not all
        /// be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof: all weights are zero");
            Union { arms, total }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("prop_oneof: weight walk exhausted")
        }
    }

    /// Strategy for a type's canonical distribution; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Canonical strategy for `T` (`bool`, `u8`, `i64`, `u64`, `f64`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;
        fn new_value(&self, rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Strategy for Any<i64> {
        type Value = i64;
        fn new_value(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            // Mostly arbitrary bit patterns (covers subnormals and NaN),
            // with special values mixed in explicitly.
            match rng.below(16) {
                0 => *[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0]
                    .get(rng.below(5) as usize)
                    .unwrap(),
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// `&'static str` patterns act as string strategies over a simple
    /// character-class grammar: `[items]{m,n}` or `[items]{n}`, where
    /// items are literal chars, `\xHH` escapes, and `a-z` ranges.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            let (ranges, min, max) = parse_class_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let total_span: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                .sum();
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let mut pick = rng.below(total_span);
                for (lo, hi) in &ranges {
                    let span = u64::from(*hi) - u64::from(*lo) + 1;
                    if pick < span {
                        let cp = u32::from(*lo) + pick as u32;
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        break;
                    }
                    pick -= span;
                }
            }
            out
        }
    }

    /// Parse `[class]{m,n}` into (codepoint ranges, min len, max len).
    fn parse_class_pattern(pat: &str) -> (Vec<(char, char)>, usize, usize) {
        fn bad(pat: &str) -> ! {
            panic!("string strategy: unsupported pattern `{pat}` (shim accepts only `[class]{{m,n}}`)")
        }
        let mut chars = pat.chars().peekable();
        if chars.next() != Some('[') {
            bad(pat);
        }
        // Collect class members, then fold trailing `-` ranges.
        let mut members: Vec<char> = Vec::new();
        let mut dashes: Vec<usize> = Vec::new(); // member indexes that were `-`
        loop {
            let c = chars.next().unwrap_or_else(|| bad(pat));
            match c {
                ']' => break,
                '\\' => match chars.next().unwrap_or_else(|| bad(pat)) {
                    'x' => {
                        let h1 = chars.next().unwrap_or_else(|| bad(pat));
                        let h2 = chars.next().unwrap_or_else(|| bad(pat));
                        let v = u32::from_str_radix(&format!("{h1}{h2}"), 16)
                            .unwrap_or_else(|_| bad(pat));
                        members.push(char::from_u32(v).unwrap_or_else(|| bad(pat)));
                    }
                    'n' => members.push('\n'),
                    't' => members.push('\t'),
                    other => members.push(other),
                },
                '-' => {
                    dashes.push(members.len());
                    members.push('-');
                }
                other => members.push(other),
            }
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut i = 0;
        while i < members.len() {
            // `a-z`: a dash with a member on both sides forms a range.
            if i + 2 < members.len() && dashes.contains(&(i + 1)) {
                let (lo, hi) = (members[i], members[i + 2]);
                assert!(lo <= hi, "string strategy: inverted range in `{pat}`");
                ranges.push((lo, hi));
                i += 3;
            } else {
                ranges.push((members[i], members[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            bad(pat);
        }
        if chars.next() != Some('{') {
            bad(pat);
        }
        let rest: String = chars.collect();
        let body = rest.strip_suffix('}').unwrap_or_else(|| bad(pat));
        let (min, max) = match body.split_once(',') {
            Some((m, n)) => (
                m.parse().unwrap_or_else(|_| bad(pat)),
                n.parse().unwrap_or_else(|_| bad(pat)),
            ),
            None => {
                let n: usize = body.parse().unwrap_or_else(|_| bad(pat));
                (n, n)
            }
        };
        assert!(min <= max, "string strategy: bad repeat in `{pat}`");
        (ranges, min, max)
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/a);
    impl_tuple_strategy!(A/a, B/b);
    impl_tuple_strategy!(A/a, B/b, C/c);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for generated collections (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `Some` three times out of four.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Option<T>` strategy from a `T` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run named properties over generated inputs; see module docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng =
                $crate::test_runner::TestRng::deterministic_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(__e) => {
                        panic!("property {} failed on case {}: {:?}", stringify!($name), __case, __e);
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Choose among strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert within a property body (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property body (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property body (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_strings_generate_in_bounds() {
        let mut rng = TestRng::deterministic_for("shim-test");
        let strat = (0i64..10, "[a-z]{0,6}", any::<bool>());
        for _ in 0..200 {
            let (n, s, _b) = Strategy::new_value(&strat, &mut rng);
            assert!((0..10).contains(&n));
            assert!(s.len() <= 6 && s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn hex_class_covers_full_span() {
        let mut rng = TestRng::deterministic_for("hex");
        let mut max_seen = 0u32;
        for _ in 0..500 {
            let s = Strategy::new_value(&"[\\x00-\\x7f]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            for c in s.chars() {
                assert!((c as u32) <= 0x7f);
                max_seen = max_seen.max(c as u32);
            }
        }
        assert!(max_seen > 0x60, "upper class never sampled");
    }

    #[test]
    fn union_respects_weights_roughly() {
        let u = prop_oneof![
            9 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut rng = TestRng::deterministic_for("weights");
        let ones = (0..1000)
            .filter(|_| Strategy::new_value(&u, &mut rng) == 1)
            .count();
        assert!((800..=980).contains(&ones), "got {ones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..100).prop_map(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::deterministic_for("rec");
        for _ in 0..200 {
            assert!(depth(&Strategy::new_value(&strat, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires args, config, and early `return Ok(())`.
        #[test]
        fn macro_round_trip(xs in crate::collection::vec(any::<i64>(), 0..8), flip in any::<bool>()) {
            if xs.is_empty() && flip {
                return Ok(());
            }
            let doubled: Vec<i64> = xs.iter().map(|x| x.wrapping_mul(2)).collect();
            prop_assert_eq!(doubled.len(), xs.len());
        }
    }
}
