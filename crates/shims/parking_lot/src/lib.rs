//! Shim for `parking_lot`: the `Mutex`/`RwLock` subset the workspace
//! uses, implemented over `std::sync` with poisoning erased (parking_lot
//! locks do not poison; a panic while holding the lock leaves the data
//! as-is, which is what callers here rely on).

use std::fmt;
use std::sync;

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

/// A reader-writer lock; acquisition never returns a poison error.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Whether a [`Condvar`] wait returned because the timeout elapsed.
pub type WaitTimeoutResult = sync::WaitTimeoutResult;

/// A condition variable paired with [`Mutex`], poisoning erased. The
/// wait methods take the guard by value (std's signature) rather than
/// `&mut` — a `std::sync::MutexGuard` cannot be re-acquired in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified; returns the re-acquired guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.0.wait(guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        match self.0.wait_timeout(guard, timeout) {
            Ok(r) => r,
            Err(p) => p.into_inner(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one()
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1); // no poison propagation
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert!(l.try_write().is_some());
    }
}
