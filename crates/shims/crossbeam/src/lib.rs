//! Shim for `crossbeam`: the `channel` subset the workspace uses
//! (bounded and unbounded MPSC channels), implemented over
//! `std::sync::mpsc`. Semantics match what callers rely on: `bounded`
//! senders block when the queue is full (backpressure), receivers
//! observe disconnection when every sender is dropped.

pub mod channel {
    //! Multi-producer single-consumer channels with a crossbeam-shaped API.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Tx<T> {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel. Clonable (multi-producer).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full. Errors only
        /// when the receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value),
                Tx::Unbounded(s) => s.send(value),
            }
        }

        /// Non-blocking send; `Err(Full)` when a bounded channel is at
        /// capacity.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.try_send(value),
                Tx::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator until disconnection.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages; senders block
    /// when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::sync_channel(cap.max(1));
        (Sender(Tx::Bounded(s)), Receiver(r))
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(Tx::Unbounded(s)), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn bounded_applies_backpressure() {
        let (s, r) = channel::bounded::<u32>(2);
        s.send(1).unwrap();
        s.send(2).unwrap();
        assert!(matches!(s.try_send(3), Err(channel::TrySendError::Full(3))));
        assert_eq!(r.recv().unwrap(), 1);
        s.try_send(3).unwrap();
        drop(s);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn disconnect_is_observable() {
        let (s, r) = channel::bounded::<u32>(1);
        let t = std::thread::spawn(move || {
            s.send(7).unwrap();
        });
        assert_eq!(r.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        t.join().unwrap();
        assert!(r.recv().is_err()); // all senders gone
    }
}
