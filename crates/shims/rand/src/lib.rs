//! Shim for `rand` 0.8: the `Rng`/`SeedableRng`/`StdRng` subset the
//! workspace uses. `StdRng` is SplitMix64 — statistically fine for the
//! workload generators and simulators here, deterministic per seed,
//! `Clone + Debug` like the original.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Generic over the output
/// type (rather than an associated type) so that the call site's
/// expected type drives inference of untyped range literals, exactly
/// as in real rand: `v[rng.gen_range(0..4)]` infers `usize`.
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // 128-bit multiply-shift avoids modulo bias for the spans used here.
    let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    // (x * span) >> 128, computed via the high half of a 128x128 product
    // restricted to span < 2^127 (always true for integer range spans).
    let hi = (x >> 64) * span;
    let lo = ((x & u128::from(u64::MAX)) * span) >> 64;
    (hi + lo) >> 64
}

/// Types with a uniform sampler over a half-open or closed interval.
/// The single blanket `SampleRange` impl below hangs off this trait so
/// that `Range<T>: SampleRange<U>` forces `U = T` during inference
/// (mirroring real rand's `impl<T> SampleRange<T> for Range<T>`).
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f32::sample(rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing random methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type (`bool`, `f64`, ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = r.gen_range(0i64..=3);
            assert!((0..=3).contains(&y));
            let f = r.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn spread_is_plausible() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "skewed: {counts:?}");
    }
}
