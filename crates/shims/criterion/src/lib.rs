//! Shim for `criterion`: the API subset the workspace's benches use,
//! measuring with plain wall-clock means (no statistics machinery).
//!
//! Behavior knobs:
//! * sample count defaults to 10 per bench (a group's `sample_size`
//!   overrides it);
//! * passing `--test` (what `cargo test` does for harness-less bench
//!   targets) runs every routine exactly once, so test runs stay fast;
//! * output is one line per benchmark: `name  ...  mean time`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("probe", 64)` → `probe/64`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Batch sizing for [`Bencher::iter_batched`]; the shim treats every
/// variant as per-iteration setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs (criterion would batch many per allocation).
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, `samples` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn default_samples() -> u64 {
    // Under `cargo test` the bench binaries run with `--test`: run each
    // routine once, enough to prove it executes.
    if std::env::args().any(|a| a == "--test") {
        1
    } else {
        10
    }
}

fn run_one(id: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        println!("bench: {:<48} {:>12}/iter", id, fmt_duration(b.total / b.iters as u32));
    } else {
        println!("bench: {id:<48} (no iterations)");
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    /// Override the per-bench sample count.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.samples = (n as u64).max(1);
        self
    }

    /// Parse CLI arguments (shim: accepts and ignores them).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&id.into().id, self.samples, &mut f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&id.id, self.samples, &mut |b| f(b, input));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Keep test runs at one iteration regardless of requested size.
        if !std::env::args().any(|a| a == "--test") {
            self.samples = (n as u64).max(1);
        }
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), self.samples, &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_formats() {
        let mut c = Criterion { samples: 3 };
        let mut runs = 0u64;
        c.bench_function("unit/three_iters", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::PerIteration)
        });
        g.finish();
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
