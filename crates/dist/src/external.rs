//! Delivery to external services (§2.2.d.ii.2 "forwarding messages to
//! external services").
//!
//! An [`ExternalService`] is anything that accepts a message and may
//! fail; [`ServiceDelivery`] drains a queue into it, acking successes and
//! nacking failures into the queue's retry/dead-letter machinery.
//! [`FlakyService`] injects deterministic failures for tests and E10.

use std::sync::atomic::{AtomicU64, Ordering};

use evdb_queue::{Message, QueueManager};
use evdb_types::{Error, Result};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An external message sink.
pub trait ExternalService: Send + Sync {
    /// Attempt to deliver one message.
    fn deliver(&self, message: &Message) -> Result<()>;

    /// Diagnostic name.
    fn name(&self) -> &str;
}

/// A service that fails a configurable fraction of calls.
pub struct FlakyService {
    fail_prob: f64,
    rng: Mutex<StdRng>,
    calls: AtomicU64,
    failures: AtomicU64,
    delivered: Mutex<Vec<u64>>,
}

impl FlakyService {
    /// Fails each call with probability `fail_prob` (seeded).
    pub fn new(fail_prob: f64, seed: u64) -> FlakyService {
        FlakyService {
            fail_prob,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            delivered: Mutex::new(Vec::new()),
        }
    }

    /// `(calls, failures)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.failures.load(Ordering::Relaxed),
        )
    }

    /// Ids of successfully delivered messages, in delivery order.
    pub fn delivered_ids(&self) -> Vec<u64> {
        self.delivered.lock().clone()
    }
}

impl ExternalService for FlakyService {
    fn deliver(&self, message: &Message) -> Result<()> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.fail_prob > 0.0 && self.rng.lock().gen::<f64>() < self.fail_prob {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Delivery("service unavailable".into()));
        }
        self.delivered.lock().push(message.id);
        Ok(())
    }

    fn name(&self) -> &str {
        "flaky"
    }
}

/// Drains a queue into an external service.
pub struct ServiceDelivery<'s> {
    queues: &'s QueueManager,
    queue: String,
    group: String,
    service: &'s dyn ExternalService,
    batch: usize,
    /// Successful deliveries.
    pub delivered: u64,
    /// Failed attempts (nacked).
    pub failed: u64,
}

impl<'s> ServiceDelivery<'s> {
    /// Create the agent and subscribe its consumer group.
    pub fn new(
        queues: &'s QueueManager,
        queue: &str,
        service: &'s dyn ExternalService,
    ) -> Result<ServiceDelivery<'s>> {
        let group = format!("__svc_{}", service.name());
        queues.subscribe(queue, &group)?;
        Ok(ServiceDelivery {
            queues,
            queue: queue.to_string(),
            group,
            service,
            batch: 32,
            delivered: 0,
            failed: 0,
        })
    }

    /// One pump iteration: reap timeouts, dequeue a batch, deliver each,
    /// ack/nack. Returns how many messages were processed.
    pub fn pump(&mut self) -> Result<usize> {
        self.queues.reap_timeouts(&self.queue)?;
        let deliveries = self.queues.dequeue(&self.queue, &self.group, self.batch)?;
        let n = deliveries.len();
        for d in deliveries {
            match self.service.deliver(&d.message) {
                Ok(()) => {
                    self.queues.ack(&d)?;
                    self.delivered += 1;
                }
                Err(e) => {
                    self.queues.nack(&d, &e.to_string())?;
                    self.failed += 1;
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_queue::QueueConfig;
    use evdb_storage::{Database, DbOptions};
    use evdb_types::{DataType, Record, Schema, Value};
    use std::sync::Arc;

    fn setup(max_attempts: u32) -> (Arc<Database>, QueueManager) {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        let q = QueueManager::attach(Arc::clone(&db)).unwrap();
        q.create_queue(
            "out",
            Schema::of(&[("x", DataType::Int)]),
            QueueConfig::default()
                .visibility_timeout(0)
                .max_attempts(max_attempts),
        )
        .unwrap();
        (db, q)
    }

    #[test]
    fn reliable_service_drains_queue() {
        let (_db, q) = setup(3);
        let svc = FlakyService::new(0.0, 1);
        let mut agent = ServiceDelivery::new(&q, "out", &svc).unwrap();
        for i in 0..10 {
            q.enqueue("out", Record::from_iter([Value::Int(i)]), "t").unwrap();
        }
        while agent.pump().unwrap() > 0 {}
        assert_eq!(agent.delivered, 10);
        assert_eq!(svc.delivered_ids().len(), 10);
        assert_eq!(q.depth("out").unwrap(), 0);
    }

    #[test]
    fn failures_retry_then_dead_letter() {
        let (_db, q) = setup(2);
        let svc = FlakyService::new(1.0, 1); // always fails
        let mut agent = ServiceDelivery::new(&q, "out", &svc).unwrap();
        q.enqueue("out", Record::from_iter([Value::Int(1)]), "t").unwrap();
        for _ in 0..10 {
            agent.pump().unwrap();
        }
        assert_eq!(agent.delivered, 0);
        assert_eq!(agent.failed, 2); // attempts capped at 2
        assert_eq!(q.dead_letter_count("out").unwrap(), 1);
        assert_eq!(q.depth("out").unwrap(), 0);
    }

    #[test]
    fn flaky_service_eventually_delivers_everything() {
        let (_db, q) = setup(50);
        let svc = FlakyService::new(0.5, 42);
        let mut agent = ServiceDelivery::new(&q, "out", &svc).unwrap();
        for i in 0..20 {
            q.enqueue("out", Record::from_iter([Value::Int(i)]), "t").unwrap();
        }
        for _ in 0..200 {
            if q.depth("out").unwrap() == 0 {
                break;
            }
            agent.pump().unwrap();
        }
        assert_eq!(agent.delivered, 20);
        let (calls, failures) = svc.stats();
        assert_eq!(calls - failures, 20);
        assert!(failures > 0);
    }
}
