//! A staging-area host: one database + queue manager under a name.

use std::sync::Arc;

use evdb_storage::{Database, DbOptions};
use evdb_queue::QueueManager;
use evdb_types::{Clock, Result};

/// A named node in the distribution fabric.
pub struct Node {
    name: String,
    db: Arc<Database>,
    queues: QueueManager,
}

impl Node {
    /// In-memory node sharing the fabric's clock.
    pub fn new(name: &str, clock: Arc<dyn Clock>) -> Result<Node> {
        let db = Database::in_memory(DbOptions {
            clock,
            ..Default::default()
        })?;
        let queues = QueueManager::attach(Arc::clone(&db))?;
        Ok(Node {
            name: name.to_string(),
            db,
            queues,
        })
    }

    /// Node backed by a durable database directory (for recovery tests).
    pub fn open(name: &str, dir: &std::path::Path, clock: Arc<dyn Clock>) -> Result<Node> {
        let db = Database::open(
            dir,
            DbOptions {
                clock,
                ..Default::default()
            },
        )?;
        let queues = QueueManager::attach(Arc::clone(&db))?;
        Ok(Node {
            name: name.to_string(),
            db,
            queues,
        })
    }

    /// The node's name (its network address).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The node's queues.
    pub fn queues(&self) -> &QueueManager {
        &self.queues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::{Schema, SimClock, TimestampMs, DataType, Record, Value};

    #[test]
    fn node_hosts_queues() {
        let clock = SimClock::new(TimestampMs(0));
        let n = Node::new("n1", clock).unwrap();
        n.queues()
            .create_queue(
                "q",
                Schema::of(&[("x", DataType::Int)]),
                Default::default(),
            )
            .unwrap();
        n.queues().subscribe("q", "g").unwrap();
        n.queues()
            .enqueue("q", Record::from_iter([Value::Int(1)]), "t")
            .unwrap();
        assert_eq!(n.queues().depth("q").unwrap(), 1);
        assert_eq!(n.name(), "n1");
    }
}
