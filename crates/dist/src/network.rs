//! The simulated network fabric.
//!
//! Deterministic: latency jitter, loss, duplication and reordering come
//! from a seeded RNG, and time comes from whatever clock drives `poll` —
//! tests advance a `SimClock` and observe exactly reproducible delivery
//! schedules. Partition *windows* can be scheduled in advance, so the
//! torture harness replays the same outage at the same simulated instant
//! on every run of a seed.

use std::collections::{BinaryHeap, HashMap};

use evdb_types::TimestampMs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-link behaviour.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Base one-way latency (ms).
    pub latency_ms: i64,
    /// Uniform jitter added on top (ms, `0..=jitter_ms`).
    pub jitter_ms: i64,
    /// Probability a packet is silently dropped.
    pub loss: f64,
    /// Hard partition: nothing gets through while true.
    pub partitioned: bool,
    /// Probability a packet is delivered twice (the duplicate takes an
    /// independent latency+jitter sample, so copies can also reorder).
    pub duplicate: f64,
    /// Probability a packet is held back an extra `0..=4×latency` ms,
    /// letting later sends overtake it.
    pub reorder: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_ms: 5,
            jitter_ms: 0,
            loss: 0.0,
            partitioned: false,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }
}

/// An opaque datagram between named nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Sending node.
    pub from: String,
    /// Receiving node.
    pub to: String,
    /// Serialized payload (the forwarder defines the framing).
    pub bytes: Vec<u8>,
}

/// Heap entry ordered so the earliest delivery pops first.
struct InFlight {
    at: i64,
    seq: u64,
    packet: Packet,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The fabric: directed links with latency/loss/partition, an in-flight
/// heap ordered by delivery time, and counters.
pub struct SimNetwork {
    links: HashMap<(String, String), LinkConfig>,
    default_link: LinkConfig,
    inflight: BinaryHeap<InFlight>,
    /// Scheduled outage windows: (node, node, from_ms, until_ms). Checked
    /// in both directions at send time.
    outages: Vec<(String, String, i64, i64)>,
    seq: u64,
    rng: StdRng,
    /// Packets accepted for transmission.
    pub sent: u64,
    /// Packets dropped by loss or partition.
    pub dropped: u64,
    /// Packets handed to receivers.
    pub delivered: u64,
    /// Extra copies injected by link duplication.
    pub duplicated: u64,
    /// Packets held back by reorder injection.
    pub reordered: u64,
}

impl SimNetwork {
    /// Fabric with the given default link behaviour and RNG seed.
    pub fn new(default_link: LinkConfig, seed: u64) -> SimNetwork {
        SimNetwork {
            links: HashMap::new(),
            default_link,
            inflight: BinaryHeap::new(),
            outages: Vec::new(),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
            dropped: 0,
            delivered: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// Configure one directed link.
    pub fn set_link(&mut self, from: &str, to: &str, config: LinkConfig) {
        self.links
            .insert((from.to_string(), to.to_string()), config);
    }

    /// Partition (or heal) both directions between two nodes.
    pub fn set_partition(&mut self, a: &str, b: &str, partitioned: bool) {
        for (x, y) in [(a, b), (b, a)] {
            let cfg = self
                .links
                .entry((x.to_string(), y.to_string()))
                .or_insert(self.default_link);
            cfg.partitioned = partitioned;
        }
    }

    /// Schedule a partition between `a` and `b` (both directions) for the
    /// half-open simulated-time window `[from_ms, until_ms)`. Windows are
    /// checked at send time, so an armed schedule replays identically for
    /// a given seed and clock trace.
    pub fn schedule_partition(&mut self, a: &str, b: &str, from_ms: i64, until_ms: i64) {
        self.outages
            .push((a.to_string(), b.to_string(), from_ms, until_ms));
    }

    fn in_outage(&self, from: &str, to: &str, now: TimestampMs) -> bool {
        self.outages.iter().any(|(a, b, start, end)| {
            ((a == from && b == to) || (a == to && b == from))
                && now.0 >= *start
                && now.0 < *end
        })
    }

    fn link(&self, from: &str, to: &str) -> LinkConfig {
        self.links
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Transmit a packet at time `now`. Loss and partitions drop it
    /// silently (the sender finds out by never seeing an ack — exactly
    /// like UDP). Duplication enqueues a second copy with its own latency
    /// sample; reordering holds a packet back so later sends overtake it.
    pub fn send(&mut self, packet: Packet, now: TimestampMs) {
        self.sent += 1;
        let link = self.link(&packet.from, &packet.to);
        if link.partitioned
            || self.in_outage(&packet.from, &packet.to, now)
            || (link.loss > 0.0 && self.rng.gen::<f64>() < link.loss)
        {
            self.dropped += 1;
            return;
        }
        let copies = if link.duplicate > 0.0 && self.rng.gen::<f64>() < link.duplicate {
            self.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let jitter = if link.jitter_ms > 0 {
                self.rng.gen_range(0..=link.jitter_ms)
            } else {
                0
            };
            let holdback = if link.reorder > 0.0 && self.rng.gen::<f64>() < link.reorder {
                self.reordered += 1;
                self.rng.gen_range(0..=link.latency_ms.max(1) * 4)
            } else {
                0
            };
            let at = now.0 + link.latency_ms + jitter + holdback;
            self.seq += 1;
            self.inflight.push(InFlight {
                at,
                seq: self.seq,
                packet: packet.clone(),
            });
        }
    }

    /// Packets whose delivery time has arrived, in delivery order.
    pub fn poll(&mut self, now: TimestampMs) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some(head) = self.inflight.peek() {
            if head.at > now.0 {
                break;
            }
            let entry = self.inflight.pop().expect("peeked");
            self.delivered += 1;
            out.push(entry.packet);
        }
        out
    }

    /// Packets still in the air.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(from: &str, to: &str, b: u8) -> Packet {
        Packet {
            from: from.into(),
            to: to.into(),
            bytes: vec![b],
        }
    }

    #[test]
    fn latency_orders_delivery() {
        let mut net = SimNetwork::new(
            LinkConfig {
                latency_ms: 10,
                ..Default::default()
            },
            42,
        );
        net.send(pkt("a", "b", 1), TimestampMs(0));
        net.send(pkt("a", "b", 2), TimestampMs(5));
        assert!(net.poll(TimestampMs(9)).is_empty());
        let d = net.poll(TimestampMs(10));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].bytes, vec![1]);
        let d = net.poll(TimestampMs(100));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].bytes, vec![2]);
        assert_eq!(net.inflight_count(), 0);
        assert_eq!((net.sent, net.delivered, net.dropped), (2, 2, 0));
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = SimNetwork::new(
                LinkConfig {
                    loss: 0.5,
                    ..Default::default()
                },
                seed,
            );
            for i in 0..100 {
                net.send(pkt("a", "b", i as u8), TimestampMs(0));
            }
            net.dropped
        };
        assert_eq!(run(7), run(7));
        let d = run(7);
        assert!(d > 20 && d < 80, "dropped {d}");
    }

    #[test]
    fn partition_blocks_until_healed() {
        let mut net = SimNetwork::new(LinkConfig::default(), 1);
        net.set_partition("a", "b", true);
        net.send(pkt("a", "b", 1), TimestampMs(0));
        net.send(pkt("b", "a", 2), TimestampMs(0));
        assert_eq!(net.dropped, 2);
        net.set_partition("a", "b", false);
        net.send(pkt("a", "b", 3), TimestampMs(0));
        assert_eq!(net.poll(TimestampMs(100)).len(), 1);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut net = SimNetwork::new(
            LinkConfig {
                duplicate: 1.0,
                ..Default::default()
            },
            3,
        );
        for i in 0..10 {
            net.send(pkt("a", "b", i), TimestampMs(0));
        }
        let delivered = net.poll(TimestampMs(1_000));
        assert_eq!(delivered.len(), 20);
        assert_eq!(net.duplicated, 10);
    }

    #[test]
    fn reorder_lets_later_sends_overtake() {
        // Deterministic check: an armed reorder schedule must hold some
        // packet back past a later send, for at least one seed; and the
        // same seed must reproduce the identical delivery order.
        let run = |seed| {
            let mut net = SimNetwork::new(
                LinkConfig {
                    reorder: 0.5,
                    ..Default::default()
                },
                seed,
            );
            for i in 0..20 {
                net.send(pkt("a", "b", i), TimestampMs(i as i64));
            }
            net.poll(TimestampMs(10_000))
                .into_iter()
                .map(|p| p.bytes[0])
                .collect::<Vec<_>>()
        };
        let order = run(11);
        assert_eq!(order, run(11), "same seed, same schedule");
        assert!(
            (1..order.len()).any(|i| order[i] < order[i - 1]),
            "no inversion in {order:?}"
        );
    }

    #[test]
    fn scheduled_partition_window_drops_then_heals() {
        let mut net = SimNetwork::new(LinkConfig::default(), 1);
        net.schedule_partition("a", "b", 100, 200);
        net.send(pkt("a", "b", 1), TimestampMs(50)); // before window
        net.send(pkt("a", "b", 2), TimestampMs(150)); // inside window
        net.send(pkt("b", "a", 3), TimestampMs(199)); // inside, reverse dir
        net.send(pkt("a", "b", 4), TimestampMs(200)); // window closed
        assert_eq!(net.dropped, 2);
        let delivered = net.poll(TimestampMs(1_000));
        assert_eq!(delivered.len(), 2);
    }

    #[test]
    fn per_link_overrides() {
        let mut net = SimNetwork::new(LinkConfig::default(), 1);
        net.set_link(
            "a",
            "c",
            LinkConfig {
                latency_ms: 1_000,
                ..Default::default()
            },
        );
        net.send(pkt("a", "b", 1), TimestampMs(0)); // default 5ms
        net.send(pkt("a", "c", 2), TimestampMs(0)); // 1000ms
        assert_eq!(net.poll(TimestampMs(10)).len(), 1);
        assert_eq!(net.poll(TimestampMs(1_000)).len(), 1);
    }
}
