//! # evdb-dist
//!
//! Message consumption and distribution (Chandy & Gawlick §2.2.d):
//! forwarding messages between staging areas on different nodes and
//! delivering them to external services — with the operational
//! characteristics the tutorial demands (recoverability, at-least-once
//! delivery, auditability) exercised under injected failures.
//!
//! Substitution note (see DESIGN.md): there is no real network here. The
//! [`network::SimNetwork`] simulates per-link latency, probabilistic
//! loss, duplication, reordering and (scheduled) partitions, driven by
//! the shared simulated clock, so every retry/dedup/ordering code path a
//! socket transport would exercise runs deterministically in-process —
//! including the failure schedules the paper's recoverability claims are
//! about (experiments E10 and E12).
//!
//! * [`node::Node`] — a staging-area host: its own database + queues.
//! * [`forwarder::QueueForwarder`] — propagates one queue to a queue on
//!   another node: dequeue → packet → (lossy) network → receiver dedup
//!   table → enqueue → ack packet → sender ack. Unacked deliveries
//!   retry via the queue's visibility timeout; the receiver's dedup
//!   table makes retries idempotent; every accepted message is recorded
//!   in the receiver's audit table.
//! * [`external::ServiceDelivery`] — drains a queue into an
//!   [`external::ExternalService`] (§2.2.d.ii.2), acking on success and
//!   nacking into redelivery/dead-letter on failure.
//! * [`fabric::Fabric`] — owns nodes, network and forwarders and drives
//!   the whole deployment with one step loop.

pub mod external;
pub mod fabric;
pub mod forwarder;
pub mod network;
pub mod node;

pub use external::{ExternalService, FlakyService, ServiceDelivery};
pub use fabric::Fabric;
pub use forwarder::QueueForwarder;
pub use network::{LinkConfig, SimNetwork};
pub use node::Node;
