//! Queue-to-queue propagation across nodes (§2.2.d.ii.1 "forwarding
//! messages to other staging areas").
//!
//! Protocol (driven by an external pump loop — the core engine's or a
//! test's):
//!
//! 1. The forwarder dequeues from its consumer group on the source queue
//!    and sends each message as a DATA packet. The delivery stays
//!    in-flight on the source queue; if no ACK arrives before the
//!    visibility timeout, the queue redelivers and the forwarder resends
//!    (at-least-once).
//! 2. The receiver checks its durable **dedup table** (origin node +
//!    queue + message id); duplicates are acknowledged without
//!    re-enqueueing (idempotence). Fresh messages are enqueued on the
//!    destination queue, recorded in the **audit table**, and ACKed.
//! 3. An ACK routes back to the forwarder, which acks the source-queue
//!    delivery, completing the transfer.
//!
//! Packet loss in either direction only costs a retry; experiment E10
//! verifies zero loss and bounded duplication under partitions.

use std::collections::HashMap;

use evdb_queue::Delivery;
use evdb_storage::codec::{self, Reader};
use evdb_types::{DataType, Error, Record, Result, Schema, TimestampMs, Value};

use crate::network::{Packet, SimNetwork};
use crate::node::Node;

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

const DEDUP_TABLE: &str = "__dist_dedup";
const AUDIT_TABLE: &str = "__dist_audit";

/// Make sure a node has the receiver-side system tables.
pub fn ensure_receiver_tables(node: &Node) -> Result<()> {
    let db = node.db();
    if db.table(DEDUP_TABLE).is_err() {
        db.create_table(
            DEDUP_TABLE,
            Schema::of(&[("dk", DataType::Str)]),
            "dk",
        )?;
    }
    if db.table(AUDIT_TABLE).is_err() {
        db.create_table(
            AUDIT_TABLE,
            Schema::of(&[
                ("ak", DataType::Str),
                ("ts", DataType::Timestamp),
                ("origin", DataType::Str),
                ("msg_id", DataType::Int),
                ("status", DataType::Str),
            ]),
            "ak",
        )?;
    }
    Ok(())
}

/// Number of audit rows on a node (observability for tests/benches).
pub fn audit_count(node: &Node) -> usize {
    node.db()
        .table(AUDIT_TABLE)
        .map(|t| t.len())
        .unwrap_or(0)
}

/// Forwards one source queue to a queue on another node.
pub struct QueueForwarder {
    source_node: String,
    source_queue: String,
    group: String,
    dest_node: String,
    dest_queue: String,
    batch: usize,
    pending: HashMap<u64, Delivery>,
    /// DATA packets sent (including resends).
    pub sends: u64,
    /// DATA packets re-sent for a delivery attempt beyond the first.
    pub resends: u64,
    /// Deliveries acknowledged end-to-end.
    pub acked: u64,
    /// ACKs for deliveries no longer pending (duplicated ACK packets) —
    /// absorbed without effect.
    pub duplicate_acks: u64,
    /// ACKs whose source-queue ack failed because the delivery had already
    /// timed out and been redelivered (the retry's own ACK completes it).
    pub stale_acks: u64,
}

impl QueueForwarder {
    /// Create the forwarder and subscribe its consumer group on the
    /// source queue.
    pub fn new(
        source: &Node,
        source_queue: &str,
        dest_node: &str,
        dest_queue: &str,
    ) -> Result<QueueForwarder> {
        let group = format!("__fwd_{dest_node}_{dest_queue}");
        source.queues().subscribe(source_queue, &group)?;
        Ok(QueueForwarder {
            source_node: source.name().to_string(),
            source_queue: source_queue.to_string(),
            group,
            dest_node: dest_node.to_string(),
            dest_queue: dest_queue.to_string(),
            batch: 64,
            pending: HashMap::new(),
            sends: 0,
            acked: 0,
            resends: 0,
            duplicate_acks: 0,
            stale_acks: 0,
        })
    }

    /// The forwarder's consumer group on the source queue.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// The node this forwarder dequeues from.
    pub fn source_node(&self) -> &str {
        &self.source_node
    }

    /// The queue this forwarder dequeues from.
    pub fn source_queue(&self) -> &str {
        &self.source_queue
    }

    /// Deliveries awaiting acknowledgement.
    /// Push the forwarder's counters into `registry` as gauges
    /// (`evdb_dist_sends`, `evdb_dist_resends`, `evdb_dist_acked`,
    /// `evdb_dist_duplicate_acks`, `evdb_dist_stale_acks`,
    /// `evdb_dist_pending`). The forwarder is single-threaded and polled,
    /// so a push-style snapshot fits better than live handles.
    pub fn publish_metrics(&self, registry: &evdb_obs::Registry) {
        registry.gauge("evdb_dist_sends").set(self.sends as f64);
        registry.gauge("evdb_dist_resends").set(self.resends as f64);
        registry.gauge("evdb_dist_acked").set(self.acked as f64);
        registry
            .gauge("evdb_dist_duplicate_acks")
            .set(self.duplicate_acks as f64);
        registry
            .gauge("evdb_dist_stale_acks")
            .set(self.stale_acks as f64);
        registry
            .gauge("evdb_dist_pending")
            .set(self.pending.len() as f64);
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Dequeue newly ready (or redelivered) messages and transmit them.
    pub fn pump(&mut self, source: &Node, net: &mut SimNetwork, now: TimestampMs) -> Result<()> {
        source.queues().reap_timeouts(&self.source_queue)?;
        let deliveries = source
            .queues()
            .dequeue(&self.source_queue, &self.group, self.batch)?;
        for d in deliveries {
            let mut bytes = Vec::new();
            bytes.push(KIND_DATA);
            codec::put_str(&mut bytes, &self.source_node);
            codec::put_str(&mut bytes, &self.source_queue);
            codec::put_u64(&mut bytes, d.message.id);
            codec::put_str(&mut bytes, &self.dest_queue);
            codec::put_str(&mut bytes, &d.message.source);
            codec::put_i64(&mut bytes, d.message.priority);
            codec::encode_record(&mut bytes, &d.message.payload);
            net.send(
                Packet {
                    from: self.source_node.clone(),
                    to: self.dest_node.clone(),
                    bytes,
                },
                now,
            );
            self.sends += 1;
            if d.attempt > 1 {
                self.resends += 1;
            }
            self.pending.insert(d.message.id, d);
        }
        Ok(())
    }

    /// Receiver-side handling of a DATA packet addressed to `node`.
    /// Returns the ACK packet to send back.
    pub fn receive(node: &Node, packet: &Packet) -> Result<Packet> {
        ensure_receiver_tables(node)?;
        let mut r = Reader::new(&packet.bytes);
        let kind = r.u8()?;
        if kind != KIND_DATA {
            return Err(Error::Delivery(format!("unexpected packet kind {kind}")));
        }
        let origin_node = r.str()?;
        let origin_queue = r.str()?;
        let msg_id = r.u64()?;
        let dest_queue = r.str()?;
        let src_label = r.str()?;
        let priority = r.i64()?;
        let payload = codec::decode_record(&mut r)?;

        let dk = format!("{origin_node}\u{1}{origin_queue}\u{1}{msg_id}");
        let db = node.db();
        let fresh = db.table(DEDUP_TABLE)?.get(&Value::from(dk.as_str())).is_none();
        if fresh {
            db.insert(DEDUP_TABLE, Record::from_iter([Value::from(dk.as_str())]))?;
            node.queues().enqueue_with(
                &dest_queue,
                payload,
                &format!("fwd:{origin_node}:{src_label}"),
                Some(priority),
                0,
            )?;
        }
        // Audit both outcomes — §2.2.d.iii "security, auditing, tracking".
        let status = if fresh { "accepted" } else { "duplicate" };
        let ak = format!("{dk}\u{1}{}", db.now().0);
        // Duplicate audit keys (same ms) are tolerable: ignore conflicts.
        let _ = db.insert(
            AUDIT_TABLE,
            Record::from_iter([
                Value::from(ak),
                Value::Timestamp(db.now()),
                Value::from(origin_node.as_str()),
                Value::Int(msg_id as i64),
                Value::from(status),
            ]),
        );

        let mut bytes = Vec::new();
        bytes.push(KIND_ACK);
        codec::put_str(&mut bytes, &origin_queue);
        codec::put_u64(&mut bytes, msg_id);
        Ok(Packet {
            from: packet.to.clone(),
            to: packet.from.clone(),
            bytes,
        })
    }

    /// Is this packet a DATA packet?
    pub fn is_data(packet: &Packet) -> bool {
        packet.bytes.first() == Some(&KIND_DATA)
    }

    /// Is this packet an ACK for this forwarder?
    pub fn owns_ack(&self, packet: &Packet) -> bool {
        if packet.bytes.first() != Some(&KIND_ACK) {
            return false;
        }
        let mut r = Reader::new(&packet.bytes[1..]);
        matches!(r.str(), Ok(q) if q == self.source_queue)
            && packet.to == self.source_node
    }

    /// Sender-side handling of an ACK packet: ack the source delivery.
    pub fn on_ack(&mut self, source: &Node, packet: &Packet) -> Result<()> {
        let mut r = Reader::new(&packet.bytes);
        let kind = r.u8()?;
        if kind != KIND_ACK {
            return Err(Error::Delivery(format!("unexpected packet kind {kind}")));
        }
        let _queue = r.str()?;
        let msg_id = r.u64()?;
        if let Some(d) = self.pending.remove(&msg_id) {
            // The delivery may have timed out and been redelivered; an
            // ack for an already-acked or re-inflight message is benign.
            match source.queues().ack(&d) {
                Ok(()) => self.acked += 1,
                Err(_) => {
                    // Stale receipt: the current in-flight attempt will be
                    // acked by its own (duplicate) ACK.
                    self.stale_acks += 1;
                }
            }
        } else {
            self.duplicate_acks += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkConfig;
    use evdb_types::{Clock, SimClock};
    use std::sync::Arc;

    fn payload_schema() -> Arc<Schema> {
        Schema::of(&[("x", DataType::Int)])
    }

    struct Rig {
        clock: Arc<SimClock>,
        a: Node,
        b: Node,
        net: SimNetwork,
        fwd: QueueForwarder,
    }

    fn rig(link: LinkConfig, seed: u64) -> Rig {
        let clock = SimClock::new(TimestampMs(0));
        let a = Node::new("a", clock.clone()).unwrap();
        let b = Node::new("b", clock.clone()).unwrap();
        for n in [&a, &b] {
            n.queues()
                .create_queue(
                    "q",
                    payload_schema(),
                    // Generous retry budget: the lossy-link test asserts
                    // at-least-once delivery, which only holds while
                    // retries don't exhaust into the dead-letter queue
                    // (default max_attempts=5 dead-letters a message
                    // with probability loss^5 per message — flaky).
                    evdb_queue::QueueConfig::default()
                        .visibility_timeout(1_000)
                        .max_attempts(100),
                )
                .unwrap();
        }
        b.queues().subscribe("q", "consumer").unwrap();
        let fwd = QueueForwarder::new(&a, "q", "b", "q").unwrap();
        Rig {
            clock,
            a,
            b,
            net: SimNetwork::new(link, seed),
            fwd,
        }
    }

    /// Drive the full loop for `steps` ticks of `tick_ms`.
    fn drive(r: &mut Rig, steps: usize, tick_ms: i64) {
        for _ in 0..steps {
            let now = r.clock.now();
            r.fwd.pump(&r.a, &mut r.net, now).unwrap();
            for pkt in r.net.poll(now) {
                if QueueForwarder::is_data(&pkt) {
                    let ack = QueueForwarder::receive(&r.b, &pkt).unwrap();
                    r.net.send(ack, now);
                } else if r.fwd.owns_ack(&pkt) {
                    r.fwd.on_ack(&r.a, &pkt).unwrap();
                }
            }
            r.clock.advance(tick_ms);
        }
    }

    fn received(r: &Rig) -> Vec<i64> {
        let mut got = Vec::new();
        loop {
            let ds = r.b.queues().dequeue("q", "consumer", 64).unwrap();
            if ds.is_empty() {
                break;
            }
            for d in ds {
                got.push(d.message.payload.get(0).unwrap().as_int().unwrap());
                r.b.queues().ack(&d).unwrap();
            }
        }
        got.sort_unstable();
        got
    }

    #[test]
    fn clean_link_transfers_everything_once() {
        let mut r = rig(LinkConfig::default(), 1);
        for i in 0..20 {
            r.a.queues()
                .enqueue("q", Record::from_iter([Value::Int(i)]), "t")
                .unwrap();
        }
        drive(&mut r, 20, 10);
        assert_eq!(received(&r), (0..20).collect::<Vec<_>>());
        assert_eq!(r.fwd.acked, 20);
        assert_eq!(r.fwd.pending_count(), 0);
        assert_eq!(r.a.queues().depth("q").unwrap(), 0); // reclaimed
        assert_eq!(audit_count(&r.b), 20);
    }

    #[test]
    fn lossy_link_is_at_least_once_and_idempotent() {
        let mut r = rig(
            LinkConfig {
                loss: 0.4,
                ..Default::default()
            },
            99,
        );
        for i in 0..30 {
            r.a.queues()
                .enqueue("q", Record::from_iter([Value::Int(i)]), "t")
                .unwrap();
        }
        // Long drive so visibility-timeout retries get through.
        drive(&mut r, 400, 100);
        assert_eq!(received(&r), (0..30).collect::<Vec<_>>()); // no loss, no dup
        assert!(r.fwd.sends > 30, "loss must force resends");
        assert_eq!(r.a.queues().depth("q").unwrap(), 0);
    }

    #[test]
    fn partition_heals_and_delivery_resumes() {
        let mut r = rig(LinkConfig::default(), 5);
        r.net.set_partition("a", "b", true);
        for i in 0..5 {
            r.a.queues()
                .enqueue("q", Record::from_iter([Value::Int(i)]), "t")
                .unwrap();
        }
        drive(&mut r, 30, 100);
        assert_eq!(r.b.queues().depth("q").unwrap(), 0); // nothing through
        r.net.set_partition("a", "b", false);
        drive(&mut r, 60, 100);
        assert_eq!(received(&r), (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn duplicating_reordering_link_stays_exactly_once() {
        // The network injects duplicate and reordered packets in both
        // directions; the receiver dedup table + benign-ack handling must
        // still yield exactly-once delivery at the destination.
        let mut r = rig(
            LinkConfig {
                duplicate: 0.5,
                reorder: 0.5,
                jitter_ms: 20,
                ..Default::default()
            },
            77,
        );
        for i in 0..25 {
            r.a.queues()
                .enqueue("q", Record::from_iter([Value::Int(i)]), "t")
                .unwrap();
        }
        drive(&mut r, 300, 100);
        assert_eq!(received(&r), (0..25).collect::<Vec<_>>());
        assert!(r.net.duplicated > 0, "schedule must actually duplicate");
        assert_eq!(r.a.queues().depth("q").unwrap(), 0);
        // Duplicated ACK packets are absorbed by the counter, not errors.
        assert!(r.fwd.duplicate_acks > 0 || r.fwd.stale_acks > 0);
    }

    #[test]
    fn duplicate_data_packets_are_deduped() {
        let r = rig(LinkConfig::default(), 1);
        r.a.queues()
            .enqueue("q", Record::from_iter([Value::Int(7)]), "t")
            .unwrap();
        // Build a data packet by pumping once, then replay it.
        let mut net = SimNetwork::new(LinkConfig::default(), 1);
        let mut f = r.fwd;
        f.pump(&r.a, &mut net, TimestampMs(0)).unwrap();
        let pkts = net.poll(TimestampMs(1_000));
        assert_eq!(pkts.len(), 1);
        // Deliver twice.
        QueueForwarder::receive(&r.b, &pkts[0]).unwrap();
        QueueForwarder::receive(&r.b, &pkts[0]).unwrap();
        assert_eq!(r.b.queues().depth("q").unwrap(), 1);
    }
}
