//! The fabric: a convenience orchestrator owning nodes, the simulated
//! network and the forwarders between them, with a single
//! [`Fabric::step`]/[`Fabric::run_until_idle`] drive loop.
//!
//! Examples and tests previously hand-rolled the pump/poll/ack loop;
//! the fabric packages it (and routes ACKs to the right forwarder when
//! several share a node).

use std::collections::HashMap;
use std::sync::Arc;

use evdb_types::{Clock, Error, Result};

use crate::forwarder::QueueForwarder;
use crate::network::{LinkConfig, SimNetwork};
use crate::node::Node;

/// A multi-node deployment with managed propagation.
pub struct Fabric {
    clock: Arc<dyn Clock>,
    nodes: HashMap<String, Node>,
    network: SimNetwork,
    forwarders: Vec<QueueForwarder>,
    /// Milliseconds the clock advances per [`Fabric::step`] when driven
    /// by a `SimClock` owner (informational; the fabric never advances
    /// the clock itself).
    pub stats_steps: u64,
}

impl Fabric {
    /// A fabric over a shared clock with the given default link.
    pub fn new(clock: Arc<dyn Clock>, default_link: LinkConfig, seed: u64) -> Fabric {
        Fabric {
            clock,
            nodes: HashMap::new(),
            network: SimNetwork::new(default_link, seed),
            forwarders: Vec::new(),
            stats_steps: 0,
        }
    }

    /// Create and register an in-memory node.
    pub fn add_node(&mut self, name: &str) -> Result<&Node> {
        if self.nodes.contains_key(name) {
            return Err(Error::AlreadyExists(format!("node '{name}'")));
        }
        let node = Node::new(name, Arc::clone(&self.clock))?;
        self.nodes.insert(name.to_string(), node);
        Ok(&self.nodes[name])
    }

    /// A registered node.
    pub fn node(&self, name: &str) -> Result<&Node> {
        self.nodes
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("node '{name}'")))
    }

    /// The simulated network (for link configuration / partitions).
    pub fn network_mut(&mut self) -> &mut SimNetwork {
        &mut self.network
    }

    /// Network counters `(sent, dropped, delivered)`.
    pub fn network_stats(&self) -> (u64, u64, u64) {
        (self.network.sent, self.network.dropped, self.network.delivered)
    }

    /// Wire a forwarder: `source_node:source_queue → dest_node:dest_queue`.
    /// Call before producing so the forwarder's group sees every message.
    pub fn connect(
        &mut self,
        source_node: &str,
        source_queue: &str,
        dest_node: &str,
        dest_queue: &str,
    ) -> Result<()> {
        if !self.nodes.contains_key(dest_node) {
            return Err(Error::NotFound(format!("node '{dest_node}'")));
        }
        let src = self.node(source_node)?;
        let fwd = QueueForwarder::new(src, source_queue, dest_node, dest_queue)?;
        self.forwarders.push(fwd);
        Ok(())
    }

    /// One pump cycle: every forwarder sends what is ready, due packets
    /// deliver, ACKs route home. Returns how many packets moved.
    pub fn step(&mut self) -> Result<usize> {
        self.stats_steps += 1;
        let now = self.clock.now();
        for fwd in &mut self.forwarders {
            let src = self
                .nodes
                .get(fwd.source_node())
                .ok_or_else(|| Error::NotFound(format!("node '{}'", fwd.source_node())))?;
            fwd.pump(src, &mut self.network, now)?;
        }
        let packets = self.network.poll(now);
        let moved = packets.len();
        for pkt in packets {
            if QueueForwarder::is_data(&pkt) {
                let dest = self
                    .nodes
                    .get(&pkt.to)
                    .ok_or_else(|| Error::Delivery(format!("unknown node '{}'", pkt.to)))?;
                let ack = QueueForwarder::receive(dest, &pkt)?;
                self.network.send(ack, now);
            } else {
                for fwd in &mut self.forwarders {
                    if fwd.owns_ack(&pkt) {
                        let src = self
                            .nodes
                            .get(fwd.source_node())
                            .expect("forwarder's node exists");
                        fwd.on_ack(src, &pkt)?;
                        break;
                    }
                }
            }
        }
        Ok(moved)
    }

    /// Step until no packets are in flight and every forwarder's source
    /// backlog is drained, advancing the provided `advance` callback
    /// between steps (pass a closure that bumps a `SimClock`), up to
    /// `max_steps`. Returns `true` if the fabric went idle.
    pub fn run_until_idle(
        &mut self,
        max_steps: usize,
        mut advance: impl FnMut(),
    ) -> Result<bool> {
        for _ in 0..max_steps {
            self.step()?;
            let idle = self.network.inflight_count() == 0
                && self
                    .forwarders
                    .iter()
                    .map(|f| {
                        let src = &self.nodes[f.source_node()];
                        let backlog = src
                            .queues()
                            .depth(f.source_queue())
                            .unwrap_or(0);
                        backlog + f.pending_count()
                    })
                    .sum::<usize>()
                    == 0;
            if idle {
                return Ok(true);
            }
            advance();
        }
        Ok(false)
    }

    /// Total end-to-end acknowledged transfers across all forwarders.
    pub fn total_acked(&self) -> u64 {
        self.forwarders.iter().map(|f| f.acked).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_queue::QueueConfig;
    use evdb_types::{DataType, Record, Schema, SimClock, TimestampMs, Value};

    fn payload() -> Arc<Schema> {
        Schema::of(&[("x", DataType::Int)])
    }

    fn queue_on(node: &Node) {
        node.queues()
            .create_queue(
                "q",
                payload(),
                QueueConfig::default().visibility_timeout(300).max_attempts(100),
            )
            .unwrap();
    }

    #[test]
    fn two_hop_relay_through_fabric() {
        let clock = SimClock::new(TimestampMs(0));
        let mut fabric = Fabric::new(
            clock.clone(),
            LinkConfig {
                latency_ms: 10,
                loss: 0.1,
                ..Default::default()
            },
            3,
        );
        for n in ["edge", "relay", "center"] {
            let node = fabric.add_node(n).unwrap();
            queue_on(node);
        }
        fabric.node("center").unwrap().queues().subscribe("q", "sink").unwrap();
        // edge → relay → center.
        fabric.connect("edge", "q", "relay", "q").unwrap();
        fabric.connect("relay", "q", "center", "q").unwrap();

        for i in 0..25 {
            fabric
                .node("edge")
                .unwrap()
                .queues()
                .enqueue("q", Record::from_iter([Value::Int(i)]), "t")
                .unwrap();
        }
        let c2 = clock.clone();
        let idle = fabric
            .run_until_idle(5_000, move || {
                c2.advance(50);
            })
            .unwrap();
        assert!(idle, "fabric should drain");

        let center = fabric.node("center").unwrap();
        let mut got = Vec::new();
        loop {
            let ds = center.queues().dequeue("q", "sink", 64).unwrap();
            if ds.is_empty() {
                break;
            }
            for d in ds {
                got.push(d.message.payload.get(0).unwrap().as_int().unwrap());
                center.queues().ack(&d).unwrap();
            }
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, (0..25).collect::<Vec<_>>());
        assert_eq!(fabric.total_acked(), 50); // 25 per hop
    }

    #[test]
    fn fabric_validates_wiring() {
        let clock = SimClock::new(TimestampMs(0));
        let mut fabric = Fabric::new(clock, LinkConfig::default(), 1);
        let n = fabric.add_node("a").unwrap();
        queue_on(n);
        assert!(fabric.add_node("a").is_err());
        assert!(fabric.connect("a", "q", "ghost", "q").is_err());
        assert!(fabric.connect("ghost", "q", "a", "q").is_err());
        assert!(fabric.node("ghost").is_err());
    }
}
