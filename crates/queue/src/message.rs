//! Messages and delivery receipts.

use evdb_types::{Record, TimestampMs, Trace};

/// A message as stored in (and read back from) a queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Queue-manager-wide unique id; also the FIFO tiebreaker.
    pub id: u64,
    /// Queue the message lives in.
    pub queue: String,
    /// Typed payload (conforms to the queue's schema).
    pub payload: Record,
    /// When the message was enqueued.
    pub enqueued_at: TimestampMs,
    /// Delivery priority (higher first).
    pub priority: i64,
    /// Producer-supplied origin label (client id, trigger name, node…).
    pub source: String,
}

/// A dequeued message plus the bookkeeping needed to ack or nack it.
///
/// Dropping a `Delivery` without acking is safe: the visibility timeout
/// returns the message to `Ready` for the group.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The message.
    pub message: Message,
    /// The consumer group this delivery belongs to.
    pub group: String,
    /// Which delivery attempt this is (1-based).
    pub attempt: u32,
    /// Pipeline trace: capture stamped at enqueue time, deliver stamped
    /// at dequeue time, id = the message id.
    pub trace: Trace,
}

impl Delivery {
    /// Whether the group has seen this message before (attempt > 1) — a
    /// crash between processing and a durable ack, a lapsed visibility
    /// timeout, or an explicit nack. At-least-once consumers key their
    /// dedup/idempotency logic off this plus [`Delivery::dedup_key`].
    pub fn is_redelivery(&self) -> bool {
        self.attempt > 1
    }

    /// Stable identity of this (message, group) delivery stream across
    /// redeliveries and crash recovery — what a receiver-side dedup table
    /// should key on (cf. `dist::forwarder`).
    pub fn dedup_key(&self) -> (u64, &str) {
        (self.message.id, self.group.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::Value;

    #[test]
    fn delivery_redelivery_flags() {
        let m = Message {
            id: 9,
            queue: "q".into(),
            payload: Record::from_iter([Value::Int(1)]),
            enqueued_at: TimestampMs(5),
            priority: 0,
            source: "test".into(),
        };
        let first = Delivery {
            message: m.clone(),
            group: "g".into(),
            attempt: 1,
            trace: Trace::default(),
        };
        let again = Delivery {
            message: m,
            group: "g".into(),
            attempt: 2,
            trace: Trace::default(),
        };
        assert!(!first.is_redelivery());
        assert!(again.is_redelivery());
        assert_eq!(first.dedup_key(), again.dedup_key());
    }

    #[test]
    fn message_shape() {
        let m = Message {
            id: 1,
            queue: "q".into(),
            payload: Record::from_iter([Value::Int(1)]),
            enqueued_at: TimestampMs(5),
            priority: 0,
            source: "test".into(),
        };
        let d = Delivery {
            message: m.clone(),
            group: "g".into(),
            attempt: 1,
            trace: Trace::default(),
        };
        assert_eq!(d.message, m);
        assert_eq!(d.attempt, 1);
    }
}
