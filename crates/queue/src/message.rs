//! Messages and delivery receipts.

use evdb_types::{Record, TimestampMs};

/// A message as stored in (and read back from) a queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Queue-manager-wide unique id; also the FIFO tiebreaker.
    pub id: u64,
    /// Queue the message lives in.
    pub queue: String,
    /// Typed payload (conforms to the queue's schema).
    pub payload: Record,
    /// When the message was enqueued.
    pub enqueued_at: TimestampMs,
    /// Delivery priority (higher first).
    pub priority: i64,
    /// Producer-supplied origin label (client id, trigger name, node…).
    pub source: String,
}

/// A dequeued message plus the bookkeeping needed to ack or nack it.
///
/// Dropping a `Delivery` without acking is safe: the visibility timeout
/// returns the message to `Ready` for the group.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The message.
    pub message: Message,
    /// The consumer group this delivery belongs to.
    pub group: String,
    /// Which delivery attempt this is (1-based).
    pub attempt: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::Value;

    #[test]
    fn message_shape() {
        let m = Message {
            id: 1,
            queue: "q".into(),
            payload: Record::from_iter([Value::Int(1)]),
            enqueued_at: TimestampMs(5),
            priority: 0,
            source: "test".into(),
        };
        let d = Delivery {
            message: m.clone(),
            group: "g".into(),
            attempt: 1,
        };
        assert_eq!(d.message, m);
        assert_eq!(d.attempt, 1);
    }
}
