//! Queue configuration.

use evdb_types::{Error, Result};

/// Per-queue delivery configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// How long a dequeued-but-unacked message stays invisible before it
    /// becomes redeliverable (milliseconds).
    pub visibility_timeout_ms: i64,
    /// Delivery attempts per group before the message is dead-lettered.
    pub max_attempts: u32,
    /// Priority assigned when the producer does not specify one. Higher
    /// delivers first; ties break by enqueue order (FIFO).
    pub default_priority: i64,
    /// Messages older than this are eligible for [`purge_expired`]
    /// regardless of delivery state (milliseconds; `i64::MAX` = keep
    /// forever).
    ///
    /// [`purge_expired`]: crate::QueueManager::purge_expired
    pub retention_ms: i64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            visibility_timeout_ms: 30_000,
            max_attempts: 5,
            default_priority: 0,
            retention_ms: i64::MAX,
        }
    }
}

impl QueueConfig {
    /// Builder-style: set the visibility timeout.
    pub fn visibility_timeout(mut self, ms: i64) -> Self {
        self.visibility_timeout_ms = ms;
        self
    }

    /// Builder-style: set max delivery attempts.
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n;
        self
    }

    /// Builder-style: set the default priority.
    pub fn default_priority(mut self, p: i64) -> Self {
        self.default_priority = p;
        self
    }

    /// Builder-style: set the retention window.
    pub fn retention(mut self, ms: i64) -> Self {
        self.retention_ms = ms;
        self
    }

    /// Reject configurations that break the delivery state machine:
    /// a negative visibility timeout is meaningless (zero is allowed —
    /// it makes every dequeued message instantly redeliverable, the
    /// mode pump-driven retry loops rely on), and zero `max_attempts`
    /// can neither deliver nor dead-letter. Checked at queue creation
    /// and again when metadata is loaded from storage (a stored
    /// negative `max_attempts` must not wrap through the `u32` cast).
    pub fn validate(&self) -> Result<()> {
        if self.visibility_timeout_ms < 0 {
            return Err(Error::Invalid(format!(
                "queue visibility_timeout_ms must be non-negative (got {})",
                self.visibility_timeout_ms
            )));
        }
        if self.max_attempts == 0 {
            return Err(Error::Invalid(
                "queue max_attempts must be at least 1".into(),
            ));
        }
        if self.retention_ms <= 0 {
            return Err(Error::Invalid(format!(
                "queue retention_ms must be positive (got {})",
                self.retention_ms
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = QueueConfig::default()
            .visibility_timeout(1_000)
            .max_attempts(2)
            .default_priority(7)
            .retention(60_000);
        assert_eq!(c.visibility_timeout_ms, 1_000);
        assert_eq!(c.max_attempts, 2);
        assert_eq!(c.default_priority, 7);
        assert_eq!(c.retention_ms, 60_000);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(QueueConfig::default().validate().is_ok());
        // Zero visibility = instantly redeliverable: valid (dist's
        // pump-driven retry tests depend on it).
        assert!(QueueConfig::default().visibility_timeout(0).validate().is_ok());
        for bad in [
            QueueConfig::default().visibility_timeout(-5),
            QueueConfig::default().max_attempts(0),
            QueueConfig::default().retention(0),
            QueueConfig::default().retention(-1),
        ] {
            let err = bad.validate().unwrap_err();
            assert_eq!(err.kind(), "invalid");
        }
    }
}
