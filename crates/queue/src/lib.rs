//! # evdb-queue
//!
//! Message storage / staging areas (Chandy & Gawlick §2.2.b), built *on*
//! the storage engine so messages inherit the database's operational
//! characteristics — recoverability through the journal, transactional
//! enqueue/dequeue, auditability — exactly the argument the tutorial makes
//! for databases as message stores.
//!
//! Model:
//!
//! * A **queue** has a payload schema and configuration (visibility
//!   timeout, max delivery attempts, default priority).
//! * **Consumer groups** subscribe to a queue; every message is delivered
//!   independently to each group (publish/subscribe-style fan-out at the
//!   storage level). Within a group, a message is delivered to one
//!   consumer at a time, guarded by a visibility timeout.
//! * Message lifecycle per group: `Ready → InFlight → Acked`, with
//!   `Nack`/timeout returning it to `Ready` until `max_attempts`, after
//!   which it moves to the queue's **dead-letter queue**.
//! * A message's storage is reclaimed once every group has terminally
//!   processed it (acked or dead-lettered).
//!
//! Everything — queue catalog, messages, per-group delivery state, dead
//! letters — lives in ordinary database tables, so a crash-recovered
//! database resumes delivery where it stopped.
//!
//! Two enqueue paths exist deliberately (DESIGN.md D2, experiment E7):
//! [`QueueManager::enqueue`] is the *client* path ("extended INSERT
//! interface"): it validates the payload against the queue schema and
//! runs its own transaction. [`QueueManager::enqueue_internal`] is the
//! *engine* path for internally created messages (trigger actions, rule
//! consequences): it trusts its caller, skips validation and joins an
//! already-open transaction — the "significant opportunities for
//! optimization" of §2.2.b.i.3.

pub mod config;
pub mod manager;
pub mod message;

pub use config::QueueConfig;
pub use manager::{QueueManager, QueueStats};
pub use message::{Delivery, Message};
