//! The queue manager: staging areas stored entirely in database tables.
//!
//! Storage layout (all ordinary tables, so the journal makes every
//! transition recoverable and auditable):
//!
//! ```text
//! __q_meta            queue catalog: name → payload schema + config
//! __q_seq             message-id high-water mark (sequence caching)
//! __q_groups          consumer-group registry
//! __q_<q>_m           messages: id, enqueue ts, priority, delay, source, payload
//! __q_<q>_s           per-(message, group) delivery state
//! __q_<q>_d           dead letters
//! ```
//!
//! Per-group **ready heaps** (priority desc, id asc) accelerate dequeue;
//! they are a volatile cache over the state table and are rebuilt from it
//! on [`QueueManager::attach`] — a popped entry is always re-verified
//! against the state row before delivery, so a stale heap can cause extra
//! work but never a wrong delivery.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use evdb_storage::codec::{self, Reader};
use evdb_storage::{Database, Transaction};
use evdb_types::{
    DataType, Error, Record, Result, Schema, Stage, TimestampMs, Trace, Value,
};
use parking_lot::Mutex;

use crate::config::QueueConfig;
use crate::message::{Delivery, Message};

const META: &str = "__q_meta";
const SEQ: &str = "__q_seq";
const GROUPS: &str = "__q_groups";
const SEQ_BLOCK: u64 = 1024;

const STATE_READY: i64 = 0;
const STATE_INFLIGHT: i64 = 1;
const STATE_ACKED: i64 = 2;
const STATE_DEAD: i64 = 3;

/// Heap key: higher priority first, then FIFO by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReadyKey {
    priority: i64,
    id: u64,
}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: order by priority, then by *smaller*
        // id first.
        self.priority
            .cmp(&other.priority)
            .then(other.id.cmp(&self.id))
    }
}
impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct GroupRuntime {
    ready: BinaryHeap<ReadyKey>,
    /// Delayed messages not yet visible: (visible-from, key).
    delayed: Vec<(TimestampMs, ReadyKey)>,
}

struct QueueInfo {
    schema: Arc<Schema>,
    config: QueueConfig,
    groups: Vec<String>,
    runtimes: HashMap<String, GroupRuntime>,
    /// Delivery sids whose in-flight state rows were removed by
    /// [`QueueManager::purge_expired`] (retention outran the consumer).
    /// Acks/nacks for these are idempotent no-ops instead of errors —
    /// the consumer cannot observe the retention race. Volatile, like
    /// the ready heaps: after a restart such an ack surfaces as
    /// "unknown delivery" again, which is the pre-existing at-least-once
    /// contract.
    purged_inflight: HashSet<String>,
}

/// Manages every queue stored in one database.
pub struct QueueManager {
    db: Arc<Database>,
    queues: Mutex<HashMap<String, QueueInfo>>,
    ids: Mutex<IdBlock>,
    obs: QueueObs,
}

/// Counter handles into the database's metric registry. All no-ops when
/// the registry is disabled, so the hot paths stay uninstrumented unless
/// the embedder opted in.
struct QueueObs {
    enqueued: Arc<evdb_obs::Counter>,
    dequeued: Arc<evdb_obs::Counter>,
    acked: Arc<evdb_obs::Counter>,
    nacked: Arc<evdb_obs::Counter>,
    redeliveries: Arc<evdb_obs::Counter>,
    reclaimed: Arc<evdb_obs::Counter>,
    purged_inflight: Arc<evdb_obs::Counter>,
}

impl QueueObs {
    fn bind(registry: &evdb_obs::Registry) -> QueueObs {
        QueueObs {
            enqueued: registry.counter("evdb_queue_enqueued_total"),
            dequeued: registry.counter("evdb_queue_dequeued_total"),
            acked: registry.counter("evdb_queue_acked_total"),
            nacked: registry.counter("evdb_queue_nacked_total"),
            redeliveries: registry.counter("evdb_queue_redeliveries_total"),
            reclaimed: registry.counter("evdb_queue_reclaimed_total"),
            purged_inflight: registry.counter("evdb_queue_purged_inflight_total"),
        }
    }
}

struct IdBlock {
    next: u64,
    reserved_until: u64,
}

fn msg_table(q: &str) -> String {
    format!("__q_{q}_m")
}
fn state_table(q: &str) -> String {
    format!("__q_{q}_s")
}
fn dlq_table(q: &str) -> String {
    format!("__q_{q}_d")
}
fn sid(msg_id: u64, group: &str) -> String {
    format!("{msg_id:020}\u{1}{group}")
}

fn msg_schema() -> Arc<Schema> {
    Schema::of(&[
        ("id", DataType::Int),
        ("ts", DataType::Timestamp),
        ("priority", DataType::Int),
        ("delay_until", DataType::Timestamp),
        ("src", DataType::Str),
        ("payload", DataType::Bytes),
    ])
}

fn state_schema() -> Arc<Schema> {
    Schema::of(&[
        ("sid", DataType::Str),
        ("msg_id", DataType::Int),
        ("grp", DataType::Str),
        ("state", DataType::Int),
        ("visible_at", DataType::Timestamp),
        ("attempts", DataType::Int),
        ("priority", DataType::Int),
        ("delay_until", DataType::Timestamp),
    ])
}

fn dlq_schema() -> Arc<Schema> {
    Schema::of(&[
        ("did", DataType::Str),
        ("msg_id", DataType::Int),
        ("grp", DataType::Str),
        ("ts", DataType::Timestamp),
        ("reason", DataType::Str),
        ("payload", DataType::Bytes),
    ])
}

impl QueueManager {
    /// Attach to (or initialize) the queue subsystem in a database,
    /// rebuilding queue metadata, id allocation and ready heaps from the
    /// recovered tables.
    pub fn attach(db: Arc<Database>) -> Result<QueueManager> {
        // System tables (idempotent creation).
        if db.table(META).is_err() {
            db.create_table(
                META,
                Schema::of(&[
                    ("queue", DataType::Str),
                    ("schema", DataType::Bytes),
                    ("vis_ms", DataType::Int),
                    ("max_att", DataType::Int),
                    ("def_pri", DataType::Int),
                    ("retention", DataType::Int),
                ]),
                "queue",
            )?;
        }
        if db.table(SEQ).is_err() {
            db.create_table(
                SEQ,
                Schema::of(&[("k", DataType::Str), ("hwm", DataType::Int)]),
                "k",
            )?;
            db.insert(SEQ, Record::from_iter([Value::from("msg"), Value::Int(0)]))?;
        }
        if db.table(GROUPS).is_err() {
            db.create_table(
                GROUPS,
                Schema::of(&[
                    ("gid", DataType::Str),
                    ("queue", DataType::Str),
                    ("grp", DataType::Str),
                ]),
                "gid",
            )?;
        }

        let hwm = db
            .table(SEQ)?
            .get(&Value::from("msg"))
            .and_then(|r| r.get(1).and_then(Value::as_int))
            .unwrap_or(0) as u64;

        let obs = QueueObs::bind(db.registry());
        let mgr = QueueManager {
            db,
            queues: Mutex::new(HashMap::new()),
            ids: Mutex::new(IdBlock {
                next: hwm + 1,
                reserved_until: hwm,
            }),
            obs,
        };

        // Load queue catalog and rebuild runtimes.
        let metas = mgr.db.table(META)?.scan();
        let groups_rows = mgr.db.table(GROUPS)?.scan();
        let mut queues = mgr.queues.lock();
        for m in metas {
            let name = m.get(0).unwrap().as_str().unwrap().to_string();
            let schema_bytes = match m.get(1) {
                Some(Value::Bytes(b)) => b.clone(),
                _ => return Err(Error::Corruption("queue meta payload".into())),
            };
            let schema = codec::decode_schema(&mut Reader::new(&schema_bytes))?;
            // Range-check before the narrowing cast: a stored negative
            // max_attempts would otherwise wrap to ~4 billion and turn
            // dead-lettering off.
            let max_att = m.get(3).unwrap().as_int().unwrap();
            if !(1..=i64::from(u32::MAX)).contains(&max_att) {
                return Err(Error::Corruption(format!(
                    "queue '{name}' meta: max_attempts {max_att} out of range"
                )));
            }
            let config = QueueConfig {
                visibility_timeout_ms: m.get(2).unwrap().as_int().unwrap(),
                max_attempts: max_att as u32,
                default_priority: m.get(4).unwrap().as_int().unwrap(),
                retention_ms: m.get(5).unwrap().as_int().unwrap(),
            };
            config.validate().map_err(|e| {
                Error::Corruption(format!("queue '{name}' meta rejected: {e}"))
            })?;
            let groups: Vec<String> = groups_rows
                .iter()
                .filter(|g| g.get(1).unwrap().as_str() == Some(&name))
                .map(|g| g.get(2).unwrap().as_str().unwrap().to_string())
                .collect();
            let mut info = QueueInfo {
                schema,
                config,
                groups: groups.clone(),
                runtimes: HashMap::new(),
                purged_inflight: HashSet::new(),
            };
            // Rebuild heaps from the state table.
            let states = mgr.db.table(&state_table(&name))?.scan();
            let now = mgr.db.now();
            for g in &groups {
                info.runtimes.insert(g.clone(), GroupRuntime::default());
            }
            for s in states {
                let grp = s.get(2).unwrap().as_str().unwrap().to_string();
                let state = s.get(3).unwrap().as_int().unwrap();
                let visible_at = s.get(4).unwrap().as_timestamp().unwrap();
                let key = ReadyKey {
                    priority: s.get(6).unwrap().as_int().unwrap(),
                    id: s.get(1).unwrap().as_int().unwrap() as u64,
                };
                let delay_until = s.get(7).unwrap().as_timestamp().unwrap();
                if let Some(rt) = info.runtimes.get_mut(&grp) {
                    match state {
                        STATE_READY if delay_until > now => rt.delayed.push((delay_until, key)),
                        STATE_READY => rt.ready.push(key),
                        // In-flight from before the crash: redeliverable
                        // once its visibility window lapses.
                        STATE_INFLIGHT => {
                            if visible_at <= now {
                                rt.ready.push(key);
                            } else {
                                rt.delayed.push((visible_at, key));
                            }
                        }
                        _ => {}
                    }
                }
            }
            queues.insert(name, info);
        }
        drop(queues);
        Ok(mgr)
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Create a queue with the given payload schema.
    pub fn create_queue(
        &self,
        name: &str,
        schema: Arc<Schema>,
        config: QueueConfig,
    ) -> Result<()> {
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            || name.is_empty()
        {
            return Err(Error::Invalid(format!("bad queue name '{name}'")));
        }
        config.validate()?;
        let mut queues = self.queues.lock();
        if queues.contains_key(name) {
            return Err(Error::AlreadyExists(format!("queue '{name}'")));
        }
        self.db.create_table(&msg_table(name), msg_schema(), "id")?;
        self.db
            .create_table(&state_table(name), state_schema(), "sid")?;
        self.db.create_index(&state_table(name), "grp")?;
        self.db.create_index(&state_table(name), "msg_id")?;
        self.db.create_table(&dlq_table(name), dlq_schema(), "did")?;

        let mut schema_bytes = Vec::new();
        codec::encode_schema(&mut schema_bytes, &schema);
        self.db.insert(
            META,
            Record::from_iter([
                Value::from(name),
                Value::bytes(schema_bytes),
                Value::Int(config.visibility_timeout_ms),
                Value::Int(config.max_attempts as i64),
                Value::Int(config.default_priority),
                Value::Int(config.retention_ms),
            ]),
        )?;
        queues.insert(
            name.to_string(),
            QueueInfo {
                schema,
                config,
                groups: Vec::new(),
                runtimes: HashMap::new(),
                purged_inflight: HashSet::new(),
            },
        );
        Ok(())
    }

    /// Drop a queue and all its storage.
    pub fn drop_queue(&self, name: &str) -> Result<()> {
        let mut queues = self.queues.lock();
        if queues.remove(name).is_none() {
            return Err(Error::NotFound(format!("queue '{name}'")));
        }
        self.db.drop_table(&msg_table(name))?;
        self.db.drop_table(&state_table(name))?;
        self.db.drop_table(&dlq_table(name))?;
        self.db.delete(META, &Value::from(name))?;
        // Remove group registrations.
        let stale: Vec<Value> = self
            .db
            .table(GROUPS)?
            .scan()
            .into_iter()
            .filter(|g| g.get(1).unwrap().as_str() == Some(name))
            .map(|g| g.get(0).unwrap().clone())
            .collect();
        for k in stale {
            self.db.delete(GROUPS, &k)?;
        }
        Ok(())
    }

    /// Names of all queues.
    pub fn queue_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.queues.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// The payload schema of a queue.
    pub fn queue_schema(&self, queue: &str) -> Result<Arc<Schema>> {
        let queues = self.queues.lock();
        let info = queues
            .get(queue)
            .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
        Ok(Arc::clone(&info.schema))
    }

    /// Register a consumer group. The group sees messages enqueued from
    /// this point on (no backfill).
    pub fn subscribe(&self, queue: &str, group: &str) -> Result<()> {
        let mut queues = self.queues.lock();
        let info = queues
            .get_mut(queue)
            .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
        if info.groups.iter().any(|g| g == group) {
            return Err(Error::AlreadyExists(format!(
                "group '{group}' on queue '{queue}'"
            )));
        }
        self.db.insert(
            GROUPS,
            Record::from_iter([
                Value::from(format!("{queue}\u{1}{group}")),
                Value::from(queue),
                Value::from(group),
            ]),
        )?;
        info.groups.push(group.to_string());
        info.runtimes
            .insert(group.to_string(), GroupRuntime::default());
        Ok(())
    }

    /// Remove a consumer group; its pending delivery state is discarded.
    pub fn unsubscribe(&self, queue: &str, group: &str) -> Result<()> {
        let mut queues = self.queues.lock();
        let info = queues
            .get_mut(queue)
            .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
        let pos = info
            .groups
            .iter()
            .position(|g| g == group)
            .ok_or_else(|| Error::NotFound(format!("group '{group}'")))?;
        info.groups.remove(pos);
        info.runtimes.remove(group);
        self.db
            .delete(GROUPS, &Value::from(format!("{queue}\u{1}{group}")))?;
        // Delete this group's state rows and reclaim fully-processed msgs.
        let st = self.db.table(&state_table(queue))?;
        let mine: Vec<(Value, i64)> = st
            .scan()
            .into_iter()
            .filter(|s| s.get(2).unwrap().as_str() == Some(group))
            .map(|s| {
                (
                    s.get(0).unwrap().clone(),
                    s.get(1).unwrap().as_int().unwrap(),
                )
            })
            .collect();
        let mut tx = self.db.begin();
        for (k, _) in &mine {
            tx.delete(&state_table(queue), k)?;
        }
        tx.commit()?;
        for (_, msg_id) in mine {
            self.reclaim_if_done(queue, msg_id as u64)?;
        }
        Ok(())
    }

    /// Consumer groups of a queue.
    pub fn groups(&self, queue: &str) -> Result<Vec<String>> {
        let queues = self.queues.lock();
        let info = queues
            .get(queue)
            .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
        Ok(info.groups.clone())
    }

    /// Mint a message id. When the cached block is exhausted, the
    /// durable high-water mark is bumped — through `tx` when the caller
    /// already holds an open transaction (the write gate is not
    /// reentrant), else via an autocommit update. If a caller's
    /// transaction rolls back, the in-memory reservation stands, so ids
    /// are skipped rather than reused.
    fn next_id(&self, tx: Option<&mut Transaction<'_>>) -> Result<u64> {
        let mut ids = self.ids.lock();
        if ids.next > ids.reserved_until {
            // Reserve a new block by bumping the durable high-water mark,
            // so recovered managers never reuse ids (gaps are fine).
            let new_hwm = ids.next + SEQ_BLOCK - 1;
            let row = Record::from_iter([Value::from("msg"), Value::Int(new_hwm as i64)]);
            match tx {
                Some(tx) => {
                    tx.update(SEQ, &Value::from("msg"), row)?;
                }
                None => {
                    self.db.update(SEQ, &Value::from("msg"), row)?;
                }
            }
            ids.reserved_until = new_hwm;
        }
        let id = ids.next;
        ids.next += 1;
        Ok(id)
    }

    // ---- enqueue ---------------------------------------------------------

    /// Client-path enqueue ("extended INSERT"): validates the payload
    /// against the queue schema, assigns an id and commits its own
    /// transaction. Returns the message id.
    pub fn enqueue(&self, queue: &str, payload: Record, source: &str) -> Result<u64> {
        self.enqueue_with(queue, payload, source, None, 0)
    }

    /// Client-path enqueue with explicit priority and delivery delay.
    pub fn enqueue_with(
        &self,
        queue: &str,
        payload: Record,
        source: &str,
        priority: Option<i64>,
        delay_ms: i64,
    ) -> Result<u64> {
        let (schema, config, groups) = {
            let queues = self.queues.lock();
            let info = queues
                .get(queue)
                .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
            (
                Arc::clone(&info.schema),
                info.config,
                info.groups.clone(),
            )
        };
        let payload = schema.normalize(payload)?; // the "validation" of the client path
        let priority = priority.unwrap_or(config.default_priority);
        let id = self.next_id(None)?;
        // Crash site: the id block reservation is durable but the message
        // is not — recovery must surface a gap, never a phantom message.
        self.db.fault_point("queue.enqueue.pre")?;
        let mut tx = self.db.begin();
        self.write_message(&mut tx, queue, id, &payload, source, priority, delay_ms, &groups)?;
        tx.commit()?;
        self.index_ready(queue, &groups, id, priority, delay_ms);
        self.obs.enqueued.inc();
        Ok(id)
    }

    /// Engine-path enqueue for internally created messages (§2.2.b.i.3):
    /// joins the caller's open transaction and skips payload validation —
    /// internal producers (triggers, rules) are trusted to emit
    /// schema-conformant records. The ready heaps are only updated after
    /// the caller commits, via the returned [`PendingEnqueue`].
    pub fn enqueue_internal(
        &self,
        tx: &mut Transaction<'_>,
        queue: &str,
        payload: Record,
        source: &str,
    ) -> Result<PendingEnqueue> {
        let (config, groups) = {
            let queues = self.queues.lock();
            let info = queues
                .get(queue)
                .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
            (info.config, info.groups.clone())
        };
        let priority = config.default_priority;
        let id = self.next_id(Some(tx))?;
        self.write_message(tx, queue, id, &payload, source, priority, 0, &groups)?;
        Ok(PendingEnqueue {
            queue: queue.to_string(),
            groups,
            id,
            priority,
        })
    }

    /// Publish a committed internal enqueue to the ready heaps.
    pub fn complete_internal(&self, pending: PendingEnqueue) {
        self.index_ready(&pending.queue, &pending.groups, pending.id, pending.priority, 0);
        self.obs.enqueued.inc();
    }

    #[allow(clippy::too_many_arguments)]
    fn write_message(
        &self,
        tx: &mut Transaction<'_>,
        queue: &str,
        id: u64,
        payload: &Record,
        source: &str,
        priority: i64,
        delay_ms: i64,
        groups: &[String],
    ) -> Result<()> {
        let now = self.db.now();
        let delay_until = now.plus(delay_ms.max(0));
        let mut bytes = Vec::new();
        codec::encode_record(&mut bytes, payload);
        tx.insert(
            &msg_table(queue),
            Record::from_iter([
                Value::Int(id as i64),
                Value::Timestamp(now),
                Value::Int(priority),
                Value::Timestamp(delay_until),
                Value::from(source),
                Value::bytes(bytes),
            ]),
        )?;
        for g in groups {
            tx.insert(
                &state_table(queue),
                Record::from_iter([
                    Value::from(sid(id, g)),
                    Value::Int(id as i64),
                    Value::from(g.as_str()),
                    Value::Int(STATE_READY),
                    Value::Timestamp(TimestampMs::ZERO),
                    Value::Int(0),
                    Value::Int(priority),
                    Value::Timestamp(delay_until),
                ]),
            )?;
        }
        Ok(())
    }

    fn index_ready(&self, queue: &str, groups: &[String], id: u64, priority: i64, delay_ms: i64) {
        let now = self.db.now();
        let mut queues = self.queues.lock();
        if let Some(info) = queues.get_mut(queue) {
            for g in groups {
                if let Some(rt) = info.runtimes.get_mut(g) {
                    let key = ReadyKey { priority, id };
                    if delay_ms > 0 {
                        rt.delayed.push((now.plus(delay_ms), key));
                    } else {
                        rt.ready.push(key);
                    }
                }
            }
        }
    }

    // ---- dequeue / ack / nack --------------------------------------------

    /// Dequeue up to `max` messages for a consumer group. Each delivered
    /// message becomes invisible to the group for the queue's visibility
    /// timeout; unacked deliveries are redelivered afterwards (check
    /// [`QueueManager::reap_timeouts`]).
    pub fn dequeue(&self, queue: &str, group: &str, max: usize) -> Result<Vec<Delivery>> {
        let now = self.db.now();
        let (config,) = {
            let queues = self.queues.lock();
            let info = queues
                .get(queue)
                .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
            if !info.groups.iter().any(|g| g == group) {
                return Err(Error::Queue(format!(
                    "group '{group}' is not subscribed to '{queue}'"
                )));
            }
            (info.config,)
        };

        let st = self.db.table(&state_table(queue))?;
        let mt = self.db.table(&msg_table(queue))?;
        let mut out = Vec::new();
        let mut to_reclaim: Vec<u64> = Vec::new();
        let mut tx = self.db.begin();

        loop {
            if out.len() >= max {
                break;
            }
            let key = {
                let mut queues = self.queues.lock();
                // The queue/group may have been dropped by another thread
                // between our entry check and this iteration.
                let Some(info) = queues.get_mut(queue) else { break };
                let Some(rt) = info.runtimes.get_mut(group) else { break };
                // Promote due delayed entries first.
                let mut i = 0;
                while i < rt.delayed.len() {
                    if rt.delayed[i].0 <= now {
                        let (_, k) = rt.delayed.swap_remove(i);
                        rt.ready.push(k);
                    } else {
                        i += 1;
                    }
                }
                rt.ready.pop()
            };
            let Some(key) = key else { break };

            // Verify against the durable state row; the heap may be stale.
            let sid_v = Value::from(sid(key.id, group));
            let Some(state_row) = st.get(&sid_v) else {
                continue; // rolled-back enqueue or already reclaimed
            };
            let state = state_row.get(3).unwrap().as_int().unwrap();
            let visible_at = state_row.get(4).unwrap().as_timestamp().unwrap();
            let attempts = state_row.get(5).unwrap().as_int().unwrap();
            let delay_until = state_row.get(7).unwrap().as_timestamp().unwrap();
            let deliverable = match state {
                STATE_READY => delay_until <= now,
                STATE_INFLIGHT => visible_at <= now,
                _ => false,
            };
            if !deliverable {
                if state == STATE_READY && delay_until > now {
                    // Put it back on the delayed list.
                    let mut queues = self.queues.lock();
                    if let Some(rt) = queues
                        .get_mut(queue)
                        .and_then(|i| i.runtimes.get_mut(group))
                    {
                        rt.delayed.push((delay_until, key));
                    }
                }
                continue;
            }
            let Some(msg_row) = mt.get(&Value::Int(key.id as i64)) else {
                continue;
            };

            // Attempts exhausted by visibility timeouts (never nacked):
            // dead-letter instead of delivering forever.
            if attempts as u32 >= config.max_attempts {
                let payload_bytes = match msg_row.get(5) {
                    Some(Value::Bytes(b)) => b.clone(),
                    _ => return Err(Error::Corruption("message payload".into())),
                };
                tx.insert(
                    &dlq_table(queue),
                    Record::from_iter([
                        Value::from(format!("{:020}\u{1}{}", key.id, group)),
                        Value::Int(key.id as i64),
                        Value::from(group),
                        Value::Timestamp(now),
                        Value::from("visibility timeout attempts exhausted"),
                        Value::Bytes(payload_bytes),
                    ]),
                )?;
                let mut updated = state_row.clone();
                updated.set(3, Value::Int(STATE_DEAD));
                tx.update(&state_table(queue), &sid_v, updated)?;
                to_reclaim.push(key.id);
                continue;
            }

            let attempt = attempts as u32 + 1;
            let mut updated = state_row.clone();
            updated.set(3, Value::Int(STATE_INFLIGHT));
            updated.set(4, Value::Timestamp(now.plus(config.visibility_timeout_ms)));
            updated.set(5, Value::Int(attempt as i64));
            tx.update(&state_table(queue), &sid_v, updated)?;

            let payload_bytes = match msg_row.get(5) {
                Some(Value::Bytes(b)) => b.clone(),
                _ => return Err(Error::Corruption("message payload".into())),
            };
            let payload = codec::decode_record(&mut Reader::new(&payload_bytes))?;
            let enqueued_at = msg_row.get(1).unwrap().as_timestamp().unwrap();
            // Staging-area deliveries trace like pipeline events: the
            // enqueue is their capture, this dequeue their delivery.
            let mut trace = Trace::new(key.id);
            trace.stamp(Stage::Capture, enqueued_at);
            trace.stamp(Stage::Deliver, now);
            self.obs.dequeued.inc();
            if attempt > 1 {
                self.obs.redeliveries.inc();
            }
            out.push(Delivery {
                message: Message {
                    id: key.id,
                    queue: queue.to_string(),
                    payload,
                    enqueued_at,
                    priority: key.priority,
                    source: msg_row.get(4).unwrap().as_str().unwrap().to_string(),
                },
                group: group.to_string(),
                attempt,
                trace,
            });
        }
        // Crash site: deliveries are chosen but their INFLIGHT transitions
        // are not yet durable — after recovery they must still be READY.
        self.db.fault_point("queue.dequeue.commit")?;
        tx.commit()?;
        for id in to_reclaim {
            self.reclaim_if_done(queue, id)?;
        }
        Ok(out)
    }

    /// Acknowledge a delivery; when every group has terminally processed
    /// the message, its storage is reclaimed.
    pub fn ack(&self, delivery: &Delivery) -> Result<()> {
        let queue = &delivery.message.queue;
        let st = self.db.table(&state_table(queue))?;
        let sid_s = sid(delivery.message.id, &delivery.group);
        let sid_v = Value::from(sid_s.as_str());
        let Some(row) = st.get(&sid_v) else {
            // A retention purge removed this delivery while it was in
            // flight — a race the consumer cannot observe, and its work
            // is done either way, so the ack is an idempotent no-op
            // (counted by evdb_queue_purged_inflight_total at purge
            // time). Anything else missing is still a protocol error.
            if self.was_purged_inflight(queue, &sid_s) {
                return Ok(());
            }
            return Err(Error::Queue("ack of unknown delivery".into()));
        };
        if row.get(3).unwrap().as_int() != Some(STATE_INFLIGHT) {
            return Err(Error::Queue("ack of a non-inflight delivery".into()));
        }
        let mut updated = row.clone();
        updated.set(3, Value::Int(STATE_ACKED));
        // Crash site: before the ACKED transition is durable the consumer
        // has processed the message but recovery will redeliver it —
        // at-least-once, bounded by max_attempts.
        self.db.fault_point("queue.ack.pre")?;
        self.db.update(&state_table(queue), &sid_v, updated)?;
        // Crash site: ACKED is durable but reclaim has not run — recovery
        // must never redeliver, and a later ack/reclaim sweep cleans up.
        self.db.fault_point("queue.ack.durable")?;
        self.reclaim_if_done(queue, delivery.message.id)?;
        self.obs.acked.inc();
        Ok(())
    }

    /// Negatively acknowledge: either return the message to ready (for
    /// redelivery) or, once `max_attempts` is exhausted, move it to the
    /// dead-letter queue with `reason`.
    pub fn nack(&self, delivery: &Delivery, reason: &str) -> Result<()> {
        let queue = &delivery.message.queue;
        let config = {
            let queues = self.queues.lock();
            queues
                .get(queue)
                .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?
                .config
        };
        let st = self.db.table(&state_table(queue))?;
        let sid_s = sid(delivery.message.id, &delivery.group);
        let sid_v = Value::from(sid_s.as_str());
        let Some(row) = st.get(&sid_v) else {
            // Same retention race as in `ack`: the purged message cannot
            // be redelivered or dead-lettered, so the nack is a no-op.
            if self.was_purged_inflight(queue, &sid_s) {
                return Ok(());
            }
            return Err(Error::Queue("nack of unknown delivery".into()));
        };
        let attempts = row.get(5).unwrap().as_int().unwrap() as u32;
        // Crash site: an un-durable nack leaves the delivery INFLIGHT; the
        // visibility timeout redelivers it after recovery.
        self.db.fault_point("queue.nack.pre")?;

        if attempts >= config.max_attempts {
            // Dead-letter.
            let mut payload = Vec::new();
            codec::encode_record(&mut payload, &delivery.message.payload);
            let mut tx = self.db.begin();
            tx.insert(
                &dlq_table(queue),
                Record::from_iter([
                    Value::from(format!("{:020}\u{1}{}", delivery.message.id, delivery.group)),
                    Value::Int(delivery.message.id as i64),
                    Value::from(delivery.group.as_str()),
                    Value::Timestamp(self.db.now()),
                    Value::from(reason),
                    Value::bytes(payload),
                ]),
            )?;
            let mut updated = row.clone();
            updated.set(3, Value::Int(STATE_DEAD));
            tx.update(&state_table(queue), &sid_v, updated)?;
            tx.commit()?;
            self.reclaim_if_done(queue, delivery.message.id)?;
        } else {
            let mut updated = row.clone();
            updated.set(3, Value::Int(STATE_READY));
            updated.set(4, Value::Timestamp(TimestampMs::ZERO));
            self.db.update(&state_table(queue), &sid_v, updated)?;
            let mut queues = self.queues.lock();
            if let Some(rt) = queues
                .get_mut(queue)
                .and_then(|i| i.runtimes.get_mut(&delivery.group))
            {
                rt.ready.push(ReadyKey {
                    priority: delivery.message.priority,
                    id: delivery.message.id,
                });
            }
        }
        self.obs.nacked.inc();
        Ok(())
    }

    fn reclaim_if_done(&self, queue: &str, msg_id: u64) -> Result<()> {
        let st = self.db.table(&state_table(queue))?;
        let pred = evdb_expr::Expr::binary(
            evdb_expr::BinaryOp::Eq,
            evdb_expr::Expr::field("msg_id"),
            evdb_expr::Expr::lit(msg_id as i64),
        );
        let states = st.select(&pred)?;
        let all_done = states
            .iter()
            .all(|s| s.get(3).unwrap().as_int().unwrap() >= STATE_ACKED);
        if all_done {
            // Crash site: every group is terminal but the rows are not yet
            // reclaimed — recovery must tolerate terminal leftovers.
            self.db.fault_point("queue.reclaim")?;
            let mut tx = self.db.begin();
            for s in &states {
                tx.delete(&state_table(queue), s.get(0).unwrap())?;
            }
            if self
                .db
                .table(&msg_table(queue))?
                .get(&Value::Int(msg_id as i64))
                .is_some()
            {
                tx.delete(&msg_table(queue), &Value::Int(msg_id as i64))?;
            }
            tx.commit()?;
        }
        Ok(())
    }

    /// Find in-flight deliveries whose visibility window has lapsed and
    /// make them dequeueable again. Returns how many were reaped. Run
    /// this periodically (the core engine does).
    pub fn reap_timeouts(&self, queue: &str) -> Result<usize> {
        let now = self.db.now();
        let st = self.db.table(&state_table(queue))?;
        let expired: Vec<Record> = st
            .scan()
            .into_iter()
            .filter(|s| {
                s.get(3).unwrap().as_int() == Some(STATE_INFLIGHT)
                    && s.get(4).unwrap().as_timestamp().unwrap() <= now
            })
            .collect();
        let n = expired.len();
        let mut queues = self.queues.lock();
        let info = queues
            .get_mut(queue)
            .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?;
        for s in expired {
            let grp = s.get(2).unwrap().as_str().unwrap().to_string();
            if let Some(rt) = info.runtimes.get_mut(&grp) {
                rt.ready.push(ReadyKey {
                    priority: s.get(6).unwrap().as_int().unwrap(),
                    id: s.get(1).unwrap().as_int().unwrap() as u64,
                });
            }
        }
        self.obs.reclaimed.add(n as u64);
        Ok(n)
    }

    // ---- observation -------------------------------------------------------

    /// Non-destructive read of up to `limit` messages in id order.
    pub fn browse(&self, queue: &str, limit: usize) -> Result<Vec<Message>> {
        let mt = self.db.table(&msg_table(queue))?;
        mt.scan()
            .into_iter()
            .take(limit)
            .map(|row| {
                let payload_bytes = match row.get(5) {
                    Some(Value::Bytes(b)) => b.clone(),
                    _ => return Err(Error::Corruption("message payload".into())),
                };
                Ok(Message {
                    id: row.get(0).unwrap().as_int().unwrap() as u64,
                    queue: queue.to_string(),
                    payload: codec::decode_record(&mut Reader::new(&payload_bytes))?,
                    enqueued_at: row.get(1).unwrap().as_timestamp().unwrap(),
                    priority: row.get(2).unwrap().as_int().unwrap(),
                    source: row.get(4).unwrap().as_str().unwrap().to_string(),
                })
            })
            .collect()
    }

    /// Evaluate a predicate over the *payloads* of stored messages — the
    /// paper's "evaluation of internal data; e.g., messages in queues"
    /// (§2.2.c.iii). Non-destructive; returns matching messages in id
    /// order.
    pub fn select_messages(
        &self,
        queue: &str,
        predicate: &evdb_expr::Expr,
    ) -> Result<Vec<Message>> {
        let schema = self.queue_schema(queue)?;
        let bound = evdb_expr::CompiledExpr::compile(&predicate.bind_predicate(&schema)?);
        let mut out = Vec::new();
        for m in self.browse(queue, usize::MAX)? {
            if bound.matches(&m.payload)? {
                out.push(m);
            }
        }
        Ok(out)
    }

    /// Number of messages currently stored in the queue.
    pub fn depth(&self, queue: &str) -> Result<usize> {
        Ok(self.db.table(&msg_table(queue))?.len())
    }

    /// Per-state delivery counts across all consumer groups.
    pub fn stats(&self, queue: &str) -> Result<QueueStats> {
        let mut stats = QueueStats {
            depth: self.depth(queue)?,
            ..Default::default()
        };
        for s in self.db.table(&state_table(queue))?.scan() {
            match s.get(3).and_then(Value::as_int) {
                Some(STATE_READY) => stats.ready += 1,
                Some(STATE_INFLIGHT) => stats.inflight += 1,
                Some(STATE_ACKED) => stats.acked += 1,
                Some(STATE_DEAD) => stats.dead += 1,
                _ => {}
            }
        }
        stats.dead_letters = self.dead_letter_count(queue)?;
        Ok(stats)
    }

    /// Number of dead-lettered deliveries.
    pub fn dead_letter_count(&self, queue: &str) -> Result<usize> {
        Ok(self.db.table(&dlq_table(queue))?.len())
    }

    /// Move a dead-lettered delivery back onto the queue as a fresh
    /// message (operator tooling: replay after fixing the consumer).
    /// Returns the new message id.
    pub fn requeue_dead_letter(&self, queue: &str, msg_id: u64, group: &str) -> Result<u64> {
        let dt = self.db.table(&dlq_table(queue))?;
        let did = Value::from(format!("{msg_id:020}\u{1}{group}"));
        let row = dt
            .get(&did)
            .ok_or_else(|| Error::NotFound(format!("dead letter {msg_id} for '{group}'")))?;
        let payload_bytes = match row.get(5) {
            Some(Value::Bytes(b)) => b.clone(),
            _ => return Err(Error::Corruption("dead letter payload".into())),
        };
        let payload = codec::decode_record(&mut Reader::new(&payload_bytes))?;
        let new_id = self.enqueue(queue, payload, &format!("requeue:{group}"))?;
        self.db.delete(&dlq_table(queue), &did)?;
        Ok(new_id)
    }

    /// Delete messages older than the queue's retention window, whatever
    /// their delivery state. Returns how many were purged.
    pub fn purge_expired(&self, queue: &str) -> Result<usize> {
        let config = {
            let queues = self.queues.lock();
            queues
                .get(queue)
                .ok_or_else(|| Error::NotFound(format!("queue '{queue}'")))?
                .config
        };
        if config.retention_ms == i64::MAX {
            return Ok(0);
        }
        let cutoff = self.db.now().minus(config.retention_ms);
        let mt = self.db.table(&msg_table(queue))?;
        let st = self.db.table(&state_table(queue))?;
        let old: Vec<i64> = mt
            .scan()
            .into_iter()
            .filter(|m| m.get(1).unwrap().as_timestamp().unwrap() < cutoff)
            .map(|m| m.get(0).unwrap().as_int().unwrap())
            .collect();
        let mut tx = self.db.begin();
        let mut purged_inflight: Vec<String> = Vec::new();
        for id in &old {
            tx.delete(&msg_table(queue), &Value::Int(*id))?;
            let pred = evdb_expr::Expr::binary(
                evdb_expr::BinaryOp::Eq,
                evdb_expr::Expr::field("msg_id"),
                evdb_expr::Expr::lit(*id),
            );
            for s in st.select(&pred)? {
                // Remember in-flight deliveries the purge is racing: a
                // consumer still holds them and will ack/nack later,
                // which must then be a no-op rather than an error.
                if s.get(3).unwrap().as_int() == Some(STATE_INFLIGHT) {
                    purged_inflight.push(s.get(0).unwrap().as_str().unwrap().to_string());
                }
                tx.delete(&state_table(queue), s.get(0).unwrap())?;
            }
        }
        let n = old.len();
        tx.commit()?;
        if !purged_inflight.is_empty() {
            self.obs.purged_inflight.add(purged_inflight.len() as u64);
            let mut queues = self.queues.lock();
            if let Some(info) = queues.get_mut(queue) {
                info.purged_inflight.extend(purged_inflight);
            }
        }
        Ok(n)
    }

    fn was_purged_inflight(&self, queue: &str, sid: &str) -> bool {
        self.queues
            .lock()
            .get(queue)
            .is_some_and(|i| i.purged_inflight.contains(sid))
    }
}

/// Point-in-time delivery-state counts for one queue (across groups).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Messages stored (not yet fully processed by every group).
    pub depth: usize,
    /// Per-group deliveries waiting to be dequeued.
    pub ready: usize,
    /// Per-group deliveries currently invisible (dequeued, unacked).
    pub inflight: usize,
    /// Per-group deliveries acked but whose message still awaits other
    /// groups.
    pub acked: usize,
    /// Per-group deliveries terminally dead (mirrored in the DLQ).
    pub dead: usize,
    /// Rows in the dead-letter queue.
    pub dead_letters: usize,
}

/// Handle returned by [`QueueManager::enqueue_internal`]; pass it to
/// [`QueueManager::complete_internal`] after committing the transaction so
/// the message becomes visible to consumers' ready heaps. (If the
/// transaction rolls back, simply drop it — stale heap entries are
/// filtered at dequeue.)
#[derive(Debug)]
pub struct PendingEnqueue {
    queue: String,
    groups: Vec<String>,
    id: u64,
    priority: i64,
}

impl PendingEnqueue {
    /// The id the message will have once committed.
    pub fn id(&self) -> u64 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_storage::DbOptions;
    use evdb_types::SimClock;

    fn setup() -> (Arc<Database>, QueueManager, Arc<SimClock>) {
        let clock = SimClock::new(TimestampMs(1_000));
        let db = Database::in_memory(DbOptions {
            clock: clock.clone(),
            ..Default::default()
        })
        .unwrap();
        let mgr = QueueManager::attach(Arc::clone(&db)).unwrap();
        mgr.create_queue(
            "orders",
            Schema::of(&[("oid", DataType::Int), ("amt", DataType::Float)]),
            QueueConfig::default()
                .visibility_timeout(5_000)
                .max_attempts(2),
        )
        .unwrap();
        mgr.subscribe("orders", "billing").unwrap();
        (db, mgr, clock)
    }

    fn pay(oid: i64, amt: f64) -> Record {
        Record::from_iter([Value::Int(oid), Value::Float(amt)])
    }

    #[test]
    fn enqueue_dequeue_ack_lifecycle() {
        let (_db, mgr, _clock) = setup();
        let id1 = mgr.enqueue("orders", pay(1, 10.0), "test").unwrap();
        let id2 = mgr.enqueue("orders", pay(2, 20.0), "test").unwrap();
        assert!(id2 > id1);
        assert_eq!(mgr.depth("orders").unwrap(), 2);

        let d = mgr.dequeue("orders", "billing", 10).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].message.id, id1); // FIFO
        assert_eq!(d[0].attempt, 1);
        assert_eq!(d[0].message.payload, pay(1, 10.0));

        // Invisible while in flight.
        assert!(mgr.dequeue("orders", "billing", 10).unwrap().is_empty());

        mgr.ack(&d[0]).unwrap();
        mgr.ack(&d[1]).unwrap();
        assert_eq!(mgr.depth("orders").unwrap(), 0); // reclaimed
        assert!(mgr.ack(&d[0]).is_err()); // double ack
    }

    #[test]
    fn schema_validation_on_client_path() {
        let (_db, mgr, _clock) = setup();
        assert!(mgr
            .enqueue("orders", Record::from_iter([Value::from("bad")]), "t")
            .is_err());
        assert!(mgr.enqueue("ghost", pay(1, 1.0), "t").is_err());
    }

    #[test]
    fn priorities_beat_fifo() {
        let (_db, mgr, _clock) = setup();
        mgr.enqueue_with("orders", pay(1, 1.0), "t", Some(0), 0).unwrap();
        mgr.enqueue_with("orders", pay(2, 2.0), "t", Some(5), 0).unwrap();
        mgr.enqueue_with("orders", pay(3, 3.0), "t", Some(5), 0).unwrap();
        let d = mgr.dequeue("orders", "billing", 3).unwrap();
        let oids: Vec<i64> = d
            .iter()
            .map(|x| x.message.payload.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(oids, vec![2, 3, 1]); // high priority first, FIFO within
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let (_db, mgr, clock) = setup();
        mgr.enqueue("orders", pay(1, 1.0), "t").unwrap();
        let d = mgr.dequeue("orders", "billing", 1).unwrap();
        assert_eq!(d.len(), 1);
        assert!(mgr.dequeue("orders", "billing", 1).unwrap().is_empty());

        clock.advance(6_000); // past the 5s visibility timeout
        assert_eq!(mgr.reap_timeouts("orders").unwrap(), 1);
        let d2 = mgr.dequeue("orders", "billing", 1).unwrap();
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].attempt, 2);
    }

    #[test]
    fn nack_redelivers_then_dead_letters() {
        let (_db, mgr, _clock) = setup();
        mgr.enqueue("orders", pay(1, 1.0), "t").unwrap();

        let d = mgr.dequeue("orders", "billing", 1).unwrap().remove(0);
        mgr.nack(&d, "boom").unwrap(); // attempt 1 < max 2 → ready again

        let d = mgr.dequeue("orders", "billing", 1).unwrap().remove(0);
        assert_eq!(d.attempt, 2);
        mgr.nack(&d, "boom again").unwrap(); // attempts exhausted → DLQ

        assert!(mgr.dequeue("orders", "billing", 1).unwrap().is_empty());
        assert_eq!(mgr.dead_letter_count("orders").unwrap(), 1);
        assert_eq!(mgr.depth("orders").unwrap(), 0); // reclaimed after DLQ
    }

    #[test]
    fn fan_out_to_multiple_groups() {
        let (_db, mgr, _clock) = setup();
        mgr.subscribe("orders", "audit").unwrap();
        mgr.enqueue("orders", pay(1, 1.0), "t").unwrap();

        let b = mgr.dequeue("orders", "billing", 1).unwrap();
        let a = mgr.dequeue("orders", "audit", 1).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(a.len(), 1);

        mgr.ack(&b[0]).unwrap();
        assert_eq!(mgr.depth("orders").unwrap(), 1); // audit still owes an ack
        mgr.ack(&a[0]).unwrap();
        assert_eq!(mgr.depth("orders").unwrap(), 0);
    }

    #[test]
    fn delayed_messages_become_visible_later() {
        let (_db, mgr, clock) = setup();
        mgr.enqueue_with("orders", pay(1, 1.0), "t", None, 10_000)
            .unwrap();
        assert!(mgr.dequeue("orders", "billing", 1).unwrap().is_empty());
        clock.advance(10_001);
        assert_eq!(mgr.dequeue("orders", "billing", 1).unwrap().len(), 1);
    }

    #[test]
    fn internal_enqueue_joins_caller_txn() {
        let (db, mgr, _clock) = setup();
        // Committed path.
        let mut tx = db.begin();
        let pending = mgr
            .enqueue_internal(&mut tx, "orders", pay(1, 1.0), "trigger:x")
            .unwrap();
        tx.commit().unwrap();
        mgr.complete_internal(pending);
        assert_eq!(mgr.dequeue("orders", "billing", 1).unwrap().len(), 1);

        // Rolled-back path: message must never surface.
        let mut tx = db.begin();
        let pending = mgr
            .enqueue_internal(&mut tx, "orders", pay(2, 2.0), "trigger:x")
            .unwrap();
        tx.rollback();
        mgr.complete_internal(pending); // heap gets a stale entry
        assert!(mgr.dequeue("orders", "billing", 1).unwrap().is_empty());
    }

    #[test]
    fn unsubscribe_releases_messages() {
        let (_db, mgr, _clock) = setup();
        mgr.subscribe("orders", "audit").unwrap();
        mgr.enqueue("orders", pay(1, 1.0), "t").unwrap();
        let b = mgr.dequeue("orders", "billing", 1).unwrap();
        mgr.ack(&b[0]).unwrap();
        assert_eq!(mgr.depth("orders").unwrap(), 1);
        mgr.unsubscribe("orders", "audit").unwrap();
        assert_eq!(mgr.depth("orders").unwrap(), 0); // reclaimed
        assert!(mgr.dequeue("orders", "audit", 1).is_err());
    }

    #[test]
    fn browse_is_non_destructive() {
        let (_db, mgr, _clock) = setup();
        mgr.enqueue("orders", pay(1, 1.0), "src-a").unwrap();
        mgr.enqueue("orders", pay(2, 2.0), "src-b").unwrap();
        let msgs = mgr.browse("orders", 10).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].source, "src-a");
        assert_eq!(mgr.depth("orders").unwrap(), 2);
    }

    #[test]
    fn retention_purge() {
        let clock = SimClock::new(TimestampMs(1_000));
        let db = Database::in_memory(DbOptions {
            clock: clock.clone(),
            ..Default::default()
        })
        .unwrap();
        let mgr = QueueManager::attach(Arc::clone(&db)).unwrap();
        mgr.create_queue(
            "q",
            Schema::of(&[("x", DataType::Int)]),
            QueueConfig::default().retention(1_000),
        )
        .unwrap();
        mgr.subscribe("q", "g").unwrap();
        mgr.enqueue("q", Record::from_iter([1i64]), "t").unwrap();
        clock.advance(500);
        mgr.enqueue("q", Record::from_iter([2i64]), "t").unwrap();
        clock.advance(700); // first message is now 1200ms old
        assert_eq!(mgr.purge_expired("q").unwrap(), 1);
        assert_eq!(mgr.depth("q").unwrap(), 1);
        let d = mgr.dequeue("q", "g", 10).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].message.payload, Record::from_iter([2i64]));
    }

    #[test]
    fn select_messages_evaluates_internal_data() {
        let (_db, mgr, _clock) = setup();
        for i in 0..10 {
            mgr.enqueue("orders", pay(i, i as f64 * 10.0), "t").unwrap();
        }
        let hot = mgr
            .select_messages("orders", &evdb_expr::parse("amt >= 70").unwrap())
            .unwrap();
        assert_eq!(hot.len(), 3);
        assert!(hot.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(mgr.depth("orders").unwrap(), 10); // non-destructive
        assert!(mgr
            .select_messages("orders", &evdb_expr::parse("ghost = 1").unwrap())
            .is_err());
    }

    #[test]
    fn dead_letters_can_be_requeued() {
        let (_db, mgr, _clock) = setup();
        mgr.enqueue("orders", pay(1, 1.0), "t").unwrap();
        let d = mgr.dequeue("orders", "billing", 1).unwrap().remove(0);
        mgr.nack(&d, "boom").unwrap();
        let d = mgr.dequeue("orders", "billing", 1).unwrap().remove(0);
        mgr.nack(&d, "boom").unwrap(); // max 2 attempts → DLQ
        assert_eq!(mgr.dead_letter_count("orders").unwrap(), 1);
        assert_eq!(mgr.depth("orders").unwrap(), 0);

        let new_id = mgr
            .requeue_dead_letter("orders", d.message.id, "billing")
            .unwrap();
        assert!(new_id > d.message.id);
        assert_eq!(mgr.dead_letter_count("orders").unwrap(), 0);
        let rd = mgr.dequeue("orders", "billing", 1).unwrap().remove(0);
        assert_eq!(rd.message.payload, pay(1, 1.0));
        assert_eq!(rd.attempt, 1); // fresh attempt budget
        assert!(rd.message.source.starts_with("requeue:"));
        assert!(mgr
            .requeue_dead_letter("orders", d.message.id, "billing")
            .is_err()); // already requeued
    }

    #[test]
    fn stats_reflect_delivery_states() {
        let (_db, mgr, _clock) = setup();
        mgr.subscribe("orders", "audit").unwrap();
        for i in 0..3 {
            mgr.enqueue("orders", pay(i, 1.0), "t").unwrap();
        }
        let d = mgr.dequeue("orders", "billing", 2).unwrap();
        mgr.ack(&d[0]).unwrap();

        let st = mgr.stats("orders").unwrap();
        assert_eq!(st.depth, 3);
        // billing: 1 acked, 1 inflight, 1 ready; audit: 3 ready.
        assert_eq!(st.acked, 1);
        assert_eq!(st.inflight, 1);
        assert_eq!(st.ready, 4);
        assert_eq!(st.dead, 0);
        assert_eq!(st.dead_letters, 0);
    }

    #[test]
    fn drop_queue_cleans_catalog() {
        let (db, mgr, _clock) = setup();
        mgr.enqueue("orders", pay(1, 1.0), "t").unwrap();
        mgr.drop_queue("orders").unwrap();
        assert!(mgr.drop_queue("orders").is_err());
        assert!(mgr.depth("orders").is_err());
        assert!(db.table(&msg_table("orders")).is_err());
        assert!(db.table(GROUPS).unwrap().scan().is_empty());
    }

    #[test]
    fn purge_then_ack_is_idempotent_noop() {
        // Retention purge races an in-flight consumer: the consumer's
        // later ack/nack must be a counted no-op, not a protocol error.
        let clock = SimClock::new(TimestampMs(1_000));
        let registry = Arc::new(evdb_obs::Registry::new());
        let db = Database::in_memory(DbOptions {
            clock: clock.clone(),
            registry: Arc::clone(&registry),
            ..Default::default()
        })
        .unwrap();
        let mgr = QueueManager::attach(Arc::clone(&db)).unwrap();
        mgr.create_queue(
            "jobs",
            Schema::of(&[("jid", DataType::Int)]),
            QueueConfig::default()
                .visibility_timeout(60_000)
                .retention(10_000),
        )
        .unwrap();
        mgr.subscribe("jobs", "workers").unwrap();
        mgr.enqueue("jobs", Record::from_iter([Value::Int(1)]), "t").unwrap();

        let d = mgr.dequeue("jobs", "workers", 1).unwrap().remove(0);
        clock.advance(20_000); // past retention, inside visibility
        assert_eq!(mgr.purge_expired("jobs").unwrap(), 1);
        assert_eq!(mgr.depth("jobs").unwrap(), 0);

        mgr.ack(&d).unwrap(); // would have been "ack of unknown delivery"
        mgr.ack(&d).unwrap(); // idempotent: repeated acks stay no-ops
        mgr.nack(&d, "late").unwrap(); // nack of the purged delivery too
        assert_eq!(
            registry.counter("evdb_queue_purged_inflight_total").get(),
            1
        );
        // The race path must not loosen the protocol for anything else:
        // a delivery that was never handed out is still unknown.
        let mut ghost = d.clone();
        ghost.message.id += 1;
        assert!(mgr.ack(&ghost).is_err());
    }

    #[test]
    fn create_queue_rejects_invalid_config() {
        let (_db, mgr, _clock) = setup();
        for bad in [
            QueueConfig::default().visibility_timeout(-1),
            QueueConfig::default().max_attempts(0),
            QueueConfig::default().retention(-1),
        ] {
            let err = mgr
                .create_queue("badq", Schema::of(&[("k", DataType::Int)]), bad)
                .unwrap_err();
            assert_eq!(err.kind(), "invalid");
        }
        // Nothing half-created: the name stays free for a valid config.
        mgr.create_queue(
            "badq",
            Schema::of(&[("k", DataType::Int)]),
            QueueConfig::default(),
        )
        .unwrap();
    }

    #[test]
    fn attach_rejects_wrapped_max_attempts() {
        // A stored negative max_attempts used to wrap through `as u32`
        // to ~4 billion, silently disabling dead-lettering.
        let (db, _mgr, _clock) = setup();
        let row = db.table(META).unwrap().get(&Value::from("orders")).unwrap();
        let mut bad = row.clone();
        bad.set(3, Value::Int(-3));
        db.update(META, &Value::from("orders"), bad).unwrap();
        let err = QueueManager::attach(Arc::clone(&db)).err().unwrap();
        assert_eq!(err.kind(), "corruption");
        assert!(err.to_string().contains("max_attempts"));

        // Out-of-range-positive wraps are rejected by the same check.
        let mut huge = row.clone();
        huge.set(3, Value::Int(i64::from(u32::MAX) + 1));
        db.update(META, &Value::from("orders"), huge).unwrap();
        assert!(QueueManager::attach(Arc::clone(&db)).is_err());

        // And a stored negative visibility timeout is rejected too
        // (zero is legal: instantly-redeliverable mode).
        let mut neg_vis = row.clone();
        neg_vis.set(2, Value::Int(-1));
        db.update(META, &Value::from("orders"), neg_vis).unwrap();
        assert!(QueueManager::attach(Arc::clone(&db)).is_err());

        db.update(META, &Value::from("orders"), row).unwrap();
        QueueManager::attach(db).unwrap();
    }
}
