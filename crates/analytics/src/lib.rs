//! # evdb-analytics
//!
//! Continuous analytics — the tutorial's §2.1.f ("specifying expected
//! behavior by models; identifying when reality deviates from
//! expectation; updating models") and §2.2.c.i.4 ("(Continuous) Analytics
//! provide the technology to identify valuable Continuous Queries"),
//! plus the paper's keyword trio *errors, false positives, false
//! negatives*:
//!
//! * [`stats`] — allocation-free online statistics: Welford mean/variance,
//!   EWMA, the P² streaming quantile estimator, fixed-bin histograms.
//! * [`model`] — **expectation models**: threshold bands, statistical
//!   control charts (±kσ), EWMA forecasts with residual-scaled bands,
//!   Holt linear-trend forecasts, and seasonal-naive models. Each
//!   predicts an expected interval for the next observation and updates
//!   itself continuously.
//! * [`detector`] — **management by exception**: a detector feeds
//!   observations to a model and emits a [`detector::Deviation`] only
//!   when reality leaves the expected band (after a warm-up period).
//! * [`eval`] — detector quality: confusion matrices,
//!   precision/recall/F1, ROC sweeps and AUC over ground-truth-labelled
//!   traces — how experiment E8 quantifies false positives and false
//!   negatives per model.

pub mod detector;
pub mod eval;
pub mod model;
pub mod stats;

pub use detector::{Deviation, DeviationDetector};
pub use eval::{auc, roc_sweep, ConfusionMatrix, RocPoint};
pub use model::{
    ControlChartModel, EwmaForecastModel, ExpectationModel, HoltTrendModel, RateOfChangeModel,
    SeasonalNaiveModel, ThresholdModel,
};
pub use stats::{Ewma, Histogram, P2Quantile, Welford};
