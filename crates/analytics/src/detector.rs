//! Deviation detection — management by exception.
//!
//! A [`DeviationDetector`] owns an [`ExpectationModel`]. For every
//! observation it first asks the model what it expected, emits a
//! [`Deviation`] if the actual value falls outside the band, and then
//! (policy-dependent) updates the model — the tutorial's loop of
//! "identifying when reality deviates from expectation; updating models".

use evdb_types::TimestampMs;

use crate::model::ExpectationModel;

/// How the model learns from observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// Update on every observation, including deviant ones (adapts fast,
    /// but a sustained anomaly gets absorbed into the expectation).
    Always,
    /// Update only on observations inside the expected band (robust to
    /// outliers, but a genuine regime change is never learned).
    InBandOnly,
}

/// A detected deviation from expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct Deviation {
    /// When the observation was made.
    pub timestamp: TimestampMs,
    /// The observed value.
    pub value: f64,
    /// The expected band at the time.
    pub expected_low: f64,
    /// Upper edge of the expected band.
    pub expected_high: f64,
    /// Severity: distance outside the band, in band half-widths
    /// (0 at the edge; ≥ 0 outside). For callers that rank alerts.
    pub score: f64,
}

/// Model + policy + counters.
pub struct DeviationDetector {
    model: Box<dyn ExpectationModel>,
    policy: UpdatePolicy,
    observations: u64,
    deviations: u64,
}

impl DeviationDetector {
    /// Wrap a model with the [`UpdatePolicy::Always`] policy.
    pub fn new(model: Box<dyn ExpectationModel>) -> DeviationDetector {
        DeviationDetector::with_policy(model, UpdatePolicy::Always)
    }

    /// Wrap a model with an explicit update policy.
    pub fn with_policy(
        model: Box<dyn ExpectationModel>,
        policy: UpdatePolicy,
    ) -> DeviationDetector {
        DeviationDetector {
            model,
            policy,
            observations: 0,
            deviations: 0,
        }
    }

    /// The wrapped model's name.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// `(observations, deviations)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.observations, self.deviations)
    }

    /// Feed one observation; returns a deviation if the model's
    /// expectation was violated (never during warm-up).
    pub fn observe(&mut self, timestamp: TimestampMs, value: f64) -> Option<Deviation> {
        self.observations += 1;
        let expected = self.model.expected();
        let deviation = match expected {
            Some((lo, hi)) if value < lo || value > hi => {
                self.deviations += 1;
                let half = ((hi - lo) / 2.0).max(f64::MIN_POSITIVE);
                let dist = if value < lo { lo - value } else { value - hi };
                Some(Deviation {
                    timestamp,
                    value,
                    expected_low: lo,
                    expected_high: hi,
                    score: dist / half,
                })
            }
            _ => None,
        };
        let update = match self.policy {
            UpdatePolicy::Always => true,
            UpdatePolicy::InBandOnly => deviation.is_none(),
        };
        if update {
            self.model.observe(value);
        }
        deviation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ControlChartModel, ThresholdModel};

    #[test]
    fn threshold_detector_flags_out_of_band() {
        let mut d = DeviationDetector::new(Box::new(ThresholdModel::new(0.0, 100.0)));
        assert!(d.observe(TimestampMs(1), 50.0).is_none());
        let dev = d.observe(TimestampMs(2), 150.0).unwrap();
        assert_eq!(dev.expected_high, 100.0);
        assert!((dev.score - 1.0).abs() < 1e-9); // 50 beyond / 50 half-width
        let dev = d.observe(TimestampMs(3), -25.0).unwrap();
        assert!((dev.score - 0.5).abs() < 1e-9);
        assert_eq!(d.stats(), (3, 2));
        assert_eq!(d.model_name(), "threshold");
    }

    #[test]
    fn warmup_produces_no_alerts() {
        let mut d = DeviationDetector::new(Box::new(ControlChartModel::new(3.0, 20)));
        for i in 0..19 {
            assert!(d.observe(TimestampMs(i), 1_000_000.0 * i as f64).is_none());
        }
    }

    #[test]
    fn in_band_only_policy_resists_outlier_absorption() {
        // Feed a stable series, then a burst of anomalies; with
        // InBandOnly the model keeps expecting the old regime.
        let mk = |policy| {
            DeviationDetector::with_policy(Box::new(ControlChartModel::new(3.0, 10)), policy)
        };
        let mut always = mk(UpdatePolicy::Always);
        let mut robust = mk(UpdatePolicy::InBandOnly);
        for i in 0..100 {
            let v = 100.0 + (i % 5) as f64;
            always.observe(TimestampMs(i), v);
            robust.observe(TimestampMs(i), v);
        }
        let mut always_flags = 0;
        let mut robust_flags = 0;
        for i in 100..160 {
            let v = 500.0; // sustained anomaly
            always_flags += always.observe(TimestampMs(i), v).is_some() as u32;
            robust_flags += robust.observe(TimestampMs(i), v).is_some() as u32;
        }
        assert_eq!(robust_flags, 60); // never absorbed
        assert!(always_flags < 60); // eventually absorbed into the mean
    }
}
