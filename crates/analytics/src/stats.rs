//! Online (single-pass, O(1)-memory) statistics.

/// Welford's online mean/variance.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Fold in one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`None` when empty — a real 0.0 mean must stay
    /// distinguishable from "no data" in detector baselines).
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Sample variance (`None` with fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n - 1) as f64)
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

/// Exponentially weighted moving average (and EW variance, for
/// residual-scaled tolerance bands).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    var: f64,
}

impl Ewma {
    /// `alpha ∈ (0, 1]`: weight of the newest observation.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma {
            alpha,
            value: None,
            var: 0.0,
        }
    }

    /// Fold in one observation.
    pub fn observe(&mut self, x: f64) {
        match self.value {
            None => self.value = Some(x),
            Some(v) => {
                let diff = x - v;
                // EW variance of the one-step prediction residual.
                self.var = (1.0 - self.alpha) * (self.var + self.alpha * diff * diff);
                self.value = Some(v + self.alpha * diff);
            }
        }
    }

    /// Current smoothed value.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// EW residual standard deviation.
    pub fn residual_std(&self) -> f64 {
        self.var.sqrt()
    }
}

/// P² (Jain & Chlamtac) streaming quantile estimator: five markers,
/// O(1) per observation, no buffering.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based).
    positions: [f64; 5],
    /// Desired positions.
    desired: [f64; 5],
    /// Desired position increments.
    increments: [f64; 5],
    n: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> P2Quantile {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Fold in one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find cell k.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            if (d >= 1.0 && self.positions[i + 1] - self.positions[i] > 1.0)
                || (d <= -1.0 && self.positions[i - 1] - self.positions[i] < -1.0)
            {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    self.heights[i] = candidate;
                } else {
                    self.heights[i] = self.linear(i, s);
                }
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.heights;
        let p = &self.positions;
        q[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (q[i + 1] - q[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (q[i] - q[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (`None` before 5 observations).
    pub fn value(&self) -> Option<f64> {
        if self.initial.len() < 5 {
            if self.initial.is_empty() {
                return None;
            }
            let mut v = self.initial.clone();
            v.sort_by(f64::total_cmp);
            let idx = ((v.len() as f64 - 1.0) * self.q).round() as usize;
            return Some(v[idx]);
        }
        Some(self.heights[2])
    }

    /// Observations seen.
    pub fn count(&self) -> usize {
        self.n
    }
}

/// Fixed-range histogram with uniform bins plus under/overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    /// `nbins / (hi - lo)`, precomputed so `observe` costs a multiply
    /// instead of a divide (it sits on metric hot paths).
    inv_width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `nbins` uniform bins.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(hi > lo && nbins > 0);
        Histogram {
            lo,
            hi,
            inv_width: nbins as f64 / (hi - lo),
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let last = self.bins.len() - 1;
            let i = ((x - self.lo) * self.inv_width) as usize;
            self.bins[i.min(last)] += 1;
        }
    }

    /// Total observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Out-of-range counts `(under, over)`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Has any observation landed at or above the `hi` edge? When true,
    /// upper quantiles are clamped to `hi` and should be read as
    /// "at least" values.
    pub fn saturated(&self) -> bool {
        self.overflow > 0
    }

    /// Approximate quantile from bin midpoints (`None` when empty).
    ///
    /// Out-of-range mass participates in the cumulative walk: underflow
    /// reports the `lo` edge, overflow the `hi` edge. Quantiles over the
    /// *total* count mean a saturated histogram can no longer understate
    /// its tail — a p99 that lands past the cap comes back as `hi`, not
    /// as the midpoint of the last in-range bin.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // Exclusive rank convention: the quantile is the first value with
        // cumulative count strictly above q·n. With 1 of 100 samples past
        // the cap, p99 must land on that overflow sample (rank 100), not
        // on the 99th in-range one — the whole point of the clamp.
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).floor() as u64 + 1).min(self.count);
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = self.underflow;
        if cum >= target {
            return Some(self.lo);
        }
        for (i, b) in self.bins.iter().enumerate() {
            cum += b;
            if cum >= target {
                return Some(self.lo + w * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut w = Welford::new();
        for &x in &data {
            w.observe(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean().unwrap() - mean).abs() < 1e-9);
        assert!((w.variance().unwrap() - var).abs() < 1e-6);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn welford_small_samples() {
        let mut w = Welford::new();
        assert_eq!(w.variance(), None);
        w.observe(5.0);
        assert_eq!(w.mean(), Some(5.0));
        assert_eq!(w.stddev(), None);
        w.observe(7.0);
        assert!((w.variance().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_mean_is_none() {
        // Regression: an empty accumulator used to report mean 0.0,
        // indistinguishable from a genuine zero baseline.
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        let mut w = Welford::new();
        w.observe(0.0);
        assert_eq!(w.mean(), Some(0.0));
    }

    #[test]
    fn ewma_converges_and_tracks() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        for _ in 0..50 {
            e.observe(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
        assert!(e.residual_std() < 1e-6);
        e.observe(20.0);
        assert!(e.value().unwrap() > 10.0);
        assert!(e.residual_std() > 1.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn p2_estimates_median_of_uniform() {
        let mut p = P2Quantile::new(0.5);
        let mut state = 1u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64; // U(0,1)
            p.observe(x);
        }
        let est = p.value().unwrap();
        assert!((est - 0.5).abs() < 0.03, "median estimate {est}");
    }

    #[test]
    fn p2_tail_quantile() {
        let mut p = P2Quantile::new(0.95);
        for i in 0..1_000 {
            p.observe((i % 100) as f64);
        }
        let est = p.value().unwrap();
        assert!((est - 94.0).abs() < 4.0, "p95 estimate {est}");
    }

    #[test]
    fn p2_before_five_observations_sorts() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), None);
        p.observe(3.0);
        p.observe(1.0);
        p.observe(2.0);
        assert_eq!(p.value(), Some(2.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.observe(i as f64);
        }
        h.observe(-5.0);
        h.observe(1000.0);
        assert_eq!(h.count(), 102);
        assert_eq!(h.out_of_range(), (1, 1));
        assert!(h.bins().iter().all(|&b| b == 10));
        let med = h.quantile(0.5).unwrap();
        assert!((med - 45.0).abs() <= 10.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 85.0);
    }

    #[test]
    fn histogram_quantile_counts_overflow_mass() {
        // Regression: with >1% of samples past the cap, the p99 used to
        // come back from the in-range bins only — silently low, the worst
        // failure mode for a latency monitor.
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..95 {
            h.observe((i % 100) as f64);
        }
        for _ in 0..5 {
            h.observe(5_000.0); // 5% of the mass beyond hi
        }
        assert!(h.saturated());
        assert_eq!(h.out_of_range(), (0, 5));
        // Target for p99 lands in the overflow region → report the cap,
        // not a bin midpoint below it.
        assert_eq!(h.quantile(0.99), Some(100.0));
        // Median is unaffected: rank floor(0.5·100)+1=51 ⇒ still in range.
        assert!(h.quantile(0.5).unwrap() < 100.0);
    }

    #[test]
    fn histogram_quantile_counts_underflow_mass() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for _ in 0..60 {
            h.observe(-1.0);
        }
        for i in 0..40 {
            h.observe(i as f64);
        }
        assert!(!h.saturated()); // underflow alone does not clamp the top
        // Median target (50) sits inside the underflow mass → lo edge.
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert!(h.quantile(0.99).unwrap() > 0.0);
    }

    #[test]
    fn histogram_all_out_of_range_still_answers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.observe(10.0);
        h.observe(20.0);
        assert_eq!(h.quantile(0.5), Some(1.0));
        let empty = Histogram::new(0.0, 1.0, 4);
        assert_eq!(empty.quantile(0.5), None);
    }
}
