//! Expectation models: "systems and individuals have models
//! (expectations) of behaviors of their environments" (§1).
//!
//! Every model predicts an **expected interval** for the next observation
//! and then updates itself with the actual value. The detector layer
//! turns interval violations into deviation events.

use crate::stats::{Ewma, Welford};

/// A model of expected behaviour over a univariate series.
pub trait ExpectationModel: Send {
    /// The interval `(low, high)` the next observation is expected to
    /// fall into, or `None` while the model is still warming up.
    fn expected(&self) -> Option<(f64, f64)>;

    /// Update the model with the actual observation.
    fn observe(&mut self, value: f64);

    /// Diagnostic name.
    fn name(&self) -> &'static str;
}

/// Fixed band `[low, high]` — the naive baseline (no learning).
#[derive(Debug, Clone)]
pub struct ThresholdModel {
    low: f64,
    high: f64,
}

impl ThresholdModel {
    /// Expected band `[low, high]`.
    pub fn new(low: f64, high: f64) -> ThresholdModel {
        assert!(low <= high);
        ThresholdModel { low, high }
    }
}

impl ExpectationModel for ThresholdModel {
    fn expected(&self) -> Option<(f64, f64)> {
        Some((self.low, self.high))
    }

    fn observe(&mut self, _value: f64) {}

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// Statistical process control chart: mean ± k·σ over all history.
#[derive(Debug, Clone)]
pub struct ControlChartModel {
    stats: Welford,
    k: f64,
    min_samples: u64,
}

impl ControlChartModel {
    /// Band of `k` standard deviations after `min_samples` observations.
    pub fn new(k: f64, min_samples: u64) -> ControlChartModel {
        assert!(k > 0.0);
        ControlChartModel {
            stats: Welford::new(),
            k,
            min_samples: min_samples.max(2),
        }
    }
}

impl ExpectationModel for ControlChartModel {
    fn expected(&self) -> Option<(f64, f64)> {
        if self.stats.count() < self.min_samples {
            return None;
        }
        let sd = self.stats.stddev()?;
        let m = self.stats.mean()?;
        Some((m - self.k * sd, m + self.k * sd))
    }

    fn observe(&mut self, value: f64) {
        self.stats.observe(value);
    }

    fn name(&self) -> &'static str {
        "control_chart"
    }
}

/// EWMA one-step forecast with a residual-scaled band: forecast ± k·σ_res.
#[derive(Debug, Clone)]
pub struct EwmaForecastModel {
    ewma: Ewma,
    k: f64,
    min_residual: f64,
    seen: u64,
    min_samples: u64,
}

impl EwmaForecastModel {
    /// `alpha` smoothing factor; band of `k` residual standard
    /// deviations, never narrower than ±`min_residual`.
    pub fn new(alpha: f64, k: f64, min_residual: f64, min_samples: u64) -> EwmaForecastModel {
        EwmaForecastModel {
            ewma: Ewma::new(alpha),
            k,
            min_residual,
            seen: 0,
            min_samples: min_samples.max(2),
        }
    }
}

impl ExpectationModel for EwmaForecastModel {
    fn expected(&self) -> Option<(f64, f64)> {
        if self.seen < self.min_samples {
            return None;
        }
        let f = self.ewma.value()?;
        let band = (self.k * self.ewma.residual_std()).max(self.min_residual);
        Some((f - band, f + band))
    }

    fn observe(&mut self, value: f64) {
        self.seen += 1;
        self.ewma.observe(value);
    }

    fn name(&self) -> &'static str {
        "ewma_forecast"
    }
}

/// Holt double-exponential smoothing (level + trend) forecast with a
/// residual-scaled band; tracks drifting series a plain EWMA lags behind.
#[derive(Debug, Clone)]
pub struct HoltTrendModel {
    alpha: f64,
    beta: f64,
    k: f64,
    min_residual: f64,
    level: Option<f64>,
    trend: f64,
    residual: Ewma,
    seen: u64,
    min_samples: u64,
}

impl HoltTrendModel {
    /// `alpha` level smoothing, `beta` trend smoothing, band `k` residual
    /// std-devs (never narrower than ±`min_residual`).
    pub fn new(
        alpha: f64,
        beta: f64,
        k: f64,
        min_residual: f64,
        min_samples: u64,
    ) -> HoltTrendModel {
        assert!(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0);
        HoltTrendModel {
            alpha,
            beta,
            k,
            min_residual,
            level: None,
            trend: 0.0,
            residual: Ewma::new(0.2),
            seen: 0,
            min_samples: min_samples.max(3),
        }
    }

    fn forecast(&self) -> Option<f64> {
        self.level.map(|l| l + self.trend)
    }
}

impl ExpectationModel for HoltTrendModel {
    fn expected(&self) -> Option<(f64, f64)> {
        if self.seen < self.min_samples {
            return None;
        }
        let f = self.forecast()?;
        let band = (self.k * self.residual.value().unwrap_or(0.0).sqrt().max(0.0))
            .max(self.min_residual);
        Some((f - band, f + band))
    }

    fn observe(&mut self, value: f64) {
        self.seen += 1;
        match self.level {
            None => self.level = Some(value),
            Some(level) => {
                let forecast = level + self.trend;
                let err = value - forecast;
                self.residual.observe(err * err);
                let new_level = self.alpha * value + (1.0 - self.alpha) * forecast;
                self.trend = self.beta * (new_level - level) + (1.0 - self.beta) * self.trend;
                self.level = Some(new_level);
            }
        }
    }

    fn name(&self) -> &'static str {
        "holt_trend"
    }
}

/// Seasonal-naive model: expects the value observed one period ago,
/// ± k·σ of the seasonal differences. For periodic loads (utility-meter
/// daily cycles, market open/close patterns).
#[derive(Debug, Clone)]
pub struct SeasonalNaiveModel {
    period: usize,
    history: Vec<f64>,
    pos: usize,
    filled: bool,
    diff_stats: Welford,
    k: f64,
    min_residual: f64,
}

impl SeasonalNaiveModel {
    /// `period`: observations per season; band `k` std-devs of seasonal
    /// differences (never narrower than ±`min_residual`).
    pub fn new(period: usize, k: f64, min_residual: f64) -> SeasonalNaiveModel {
        assert!(period >= 1);
        SeasonalNaiveModel {
            period,
            history: vec![0.0; period],
            pos: 0,
            filled: false,
            diff_stats: Welford::new(),
            k,
            min_residual,
        }
    }
}

impl ExpectationModel for SeasonalNaiveModel {
    fn expected(&self) -> Option<(f64, f64)> {
        if !self.filled || self.diff_stats.count() < 2 {
            return None;
        }
        let base = self.history[self.pos]; // value one period ago
        let band = (self.k * self.diff_stats.stddev().unwrap_or(0.0)).max(self.min_residual);
        Some((base - band, base + band))
    }

    fn observe(&mut self, value: f64) {
        if self.filled {
            self.diff_stats.observe(value - self.history[self.pos]);
        }
        self.history[self.pos] = value;
        self.pos = (self.pos + 1) % self.period;
        if self.pos == 0 {
            self.filled = true;
        }
    }

    fn name(&self) -> &'static str {
        "seasonal_naive"
    }
}

/// Rate-of-change model: expects the next observation within a band
/// around the last one, scaled by the historical distribution of
/// step-to-step deltas — catches jumps that level-based models accept
/// (a meter can legitimately read anywhere in [0, 100], but not move
/// 60 units in one interval).
#[derive(Debug, Clone)]
pub struct RateOfChangeModel {
    last: Option<f64>,
    delta_stats: Welford,
    k: f64,
    min_band: f64,
    min_samples: u64,
}

impl RateOfChangeModel {
    /// Band of `k` standard deviations of observed deltas (never
    /// narrower than ±`min_band`), active after `min_samples` deltas.
    pub fn new(k: f64, min_band: f64, min_samples: u64) -> RateOfChangeModel {
        assert!(k > 0.0);
        RateOfChangeModel {
            last: None,
            delta_stats: Welford::new(),
            k,
            min_band,
            min_samples: min_samples.max(2),
        }
    }
}

impl ExpectationModel for RateOfChangeModel {
    fn expected(&self) -> Option<(f64, f64)> {
        if self.delta_stats.count() < self.min_samples {
            return None;
        }
        let last = self.last?;
        let mean_delta = self.delta_stats.mean()?;
        let band = (self.k * self.delta_stats.stddev().unwrap_or(0.0)).max(self.min_band);
        let center = last + mean_delta;
        Some((center - band, center + band))
    }

    fn observe(&mut self, value: f64) {
        if let Some(last) = self.last {
            self.delta_stats.observe(value - last);
        }
        self.last = Some(value);
    }

    fn name(&self) -> &'static str {
        "rate_of_change"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_static() {
        let mut m = ThresholdModel::new(0.0, 10.0);
        assert_eq!(m.expected(), Some((0.0, 10.0)));
        m.observe(1e9);
        assert_eq!(m.expected(), Some((0.0, 10.0)));
        assert_eq!(m.name(), "threshold");
    }

    #[test]
    fn control_chart_warms_up_then_bands() {
        let mut m = ControlChartModel::new(3.0, 10);
        for i in 0..9 {
            m.observe(100.0 + (i % 3) as f64);
            assert_eq!(m.expected(), None);
        }
        m.observe(100.0);
        let (lo, hi) = m.expected().unwrap();
        assert!(lo > 90.0 && hi < 110.0);
        assert!(lo < 100.0 && hi > 101.0);
    }

    #[test]
    fn ewma_band_tightens_on_stable_series() {
        let mut m = EwmaForecastModel::new(0.3, 3.0, 0.5, 5);
        for _ in 0..100 {
            m.observe(50.0);
        }
        let (lo, hi) = m.expected().unwrap();
        assert!((lo - 49.5).abs() < 0.01 && (hi - 50.5).abs() < 0.01); // min_residual floor
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let mut holt = HoltTrendModel::new(0.5, 0.3, 3.0, 1.0, 3);
        let mut ewma = EwmaForecastModel::new(0.3, 3.0, 1.0, 3);
        for i in 0..200 {
            let v = i as f64 * 2.0; // steady climb
            holt.observe(v);
            ewma.observe(v);
        }
        let next = 200.0 * 2.0;
        let (hlo, hhi) = holt.expected().unwrap();
        assert!(
            hlo <= next && next <= hhi,
            "holt band ({hlo},{hhi}) should contain {next}"
        );
        // Holt's point forecast is nearly exact on a linear series; the
        // trendless EWMA's point forecast lags behind it.
        let holt_mid = (hlo + hhi) / 2.0;
        assert!((holt_mid - next).abs() < 2.0, "holt mid {holt_mid}");
        let (elo, ehi) = ewma.expected().unwrap();
        let ewma_mid = (elo + ehi) / 2.0;
        assert!(ewma_mid < next - 5.0, "ewma mid {ewma_mid}");
    }

    #[test]
    fn rate_of_change_flags_jumps_not_levels() {
        let mut m = RateOfChangeModel::new(4.0, 1.0, 5);
        // A steadily climbing series: large levels, small deltas.
        for i in 0..100 {
            let v = i as f64 * 2.0;
            if let Some((lo, hi)) = m.expected() {
                assert!(lo <= v && v <= hi, "step {i}: ({lo},{hi}) vs {v}");
            }
            m.observe(v);
        }
        // The level 260 is fine in general, but a +62 jump is not.
        let (lo, hi) = m.expected().unwrap();
        assert!(hi < 260.0, "jump must fall outside ({lo},{hi})");
        assert_eq!(m.name(), "rate_of_change");
    }

    #[test]
    fn seasonal_naive_learns_the_cycle() {
        let mut m = SeasonalNaiveModel::new(4, 3.0, 0.5);
        let cycle = [10.0, 50.0, 90.0, 30.0];
        for rep in 0..10 {
            for &v in &cycle {
                if rep >= 2 {
                    if let Some((lo, hi)) = m.expected() {
                        assert!(lo <= v && v <= hi, "expected ({lo},{hi}) to contain {v}");
                    }
                }
                m.observe(v);
            }
        }
        // Next expected value is the cycle phase value, not the mean.
        let (lo, hi) = m.expected().unwrap();
        assert!(lo <= 10.0 && 10.0 <= hi);
        assert!(hi < 40.0); // far below the off-phase values
    }
}
