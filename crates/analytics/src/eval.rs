//! Detector quality evaluation: confusion matrices, precision/recall and
//! ROC analysis over ground-truth-labelled traces — the paper's "errors,
//! false positives, false negatives, statistics" made measurable
//! (experiment E8).

/// Binary-classification tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Alert fired, anomaly truly present.
    pub tp: u64,
    /// Alert fired, no anomaly (false alarm).
    pub fp: u64,
    /// No alert, no anomaly.
    pub tn: u64,
    /// No alert, anomaly missed.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Record one `(alert_fired, anomaly_present)` outcome.
    pub fn record(&mut self, alerted: bool, truth: bool) {
        match (alerted, truth) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// TP / (TP + FP); `None` when no alerts fired.
    pub fn precision(&self) -> Option<f64> {
        let d = self.tp + self.fp;
        (d > 0).then(|| self.tp as f64 / d as f64)
    }

    /// TP / (TP + FN) — the true-positive rate; `None` with no positives.
    pub fn recall(&self) -> Option<f64> {
        let d = self.tp + self.fn_;
        (d > 0).then(|| self.tp as f64 / d as f64)
    }

    /// FP / (FP + TN) — the false-positive rate; `None` with no negatives.
    pub fn false_positive_rate(&self) -> Option<f64> {
        let d = self.fp + self.tn;
        (d > 0).then(|| self.fp as f64 / d as f64)
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

/// One operating point of a detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold that produced this point.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (recall) at this threshold.
    pub tpr: f64,
}

/// Sweep thresholds over `(score, truth)` pairs: an observation alerts
/// when `score ≥ threshold`. Returns one point per threshold, ordered as
/// given.
pub fn roc_sweep(scored: &[(f64, bool)], thresholds: &[f64]) -> Vec<RocPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let mut cm = ConfusionMatrix::default();
            for &(score, truth) in scored {
                cm.record(score >= t, truth);
            }
            RocPoint {
                threshold: t,
                fpr: cm.false_positive_rate().unwrap_or(0.0),
                tpr: cm.recall().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Area under the ROC curve computed by rank statistics
/// (Mann–Whitney U): probability a random positive scores above a random
/// negative. `None` if either class is empty.
pub fn auc(scored: &[(f64, bool)]) -> Option<f64> {
    let mut pos: Vec<f64> = scored.iter().filter(|(_, t)| *t).map(|(s, _)| *s).collect();
    let mut neg: Vec<f64> = scored.iter().filter(|(_, t)| !*t).map(|(s, _)| *s).collect();
    if pos.is_empty() || neg.is_empty() {
        return None;
    }
    pos.sort_by(f64::total_cmp);
    neg.sort_by(f64::total_cmp);
    // For each positive, count negatives below it (binary search).
    let mut wins = 0.0f64;
    for p in &pos {
        let below = neg.partition_point(|n| n < p);
        let ties = neg[below..].iter().take_while(|n| *n == p).count();
        wins += below as f64 + ties as f64 * 0.5;
    }
    Some(wins / (pos.len() as f64 * neg.len() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_rates() {
        let mut cm = ConfusionMatrix::default();
        for _ in 0..8 {
            cm.record(true, true);
        }
        for _ in 0..2 {
            cm.record(true, false);
        }
        for _ in 0..88 {
            cm.record(false, false);
        }
        for _ in 0..2 {
            cm.record(false, true);
        }
        assert_eq!(cm.total(), 100);
        assert!((cm.precision().unwrap() - 0.8).abs() < 1e-12);
        assert!((cm.recall().unwrap() - 0.8).abs() < 1e-12);
        assert!((cm.false_positive_rate().unwrap() - 2.0 / 90.0).abs() < 1e-12);
        assert!((cm.f1().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_classes_are_none() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.precision(), None);
        assert_eq!(cm.recall(), None);
        assert_eq!(cm.false_positive_rate(), None);
    }

    #[test]
    fn roc_sweep_is_monotone() {
        // Perfectly separable scores.
        let scored: Vec<(f64, bool)> = (0..50)
            .map(|i| (i as f64, false))
            .chain((50..100).map(|i| (i as f64, true)))
            .collect();
        let pts = roc_sweep(&scored, &[0.0, 25.0, 50.0, 75.0, 101.0]);
        assert_eq!(pts[0].tpr, 1.0);
        assert_eq!(pts[0].fpr, 1.0);
        assert_eq!(pts[2].tpr, 1.0);
        assert_eq!(pts[2].fpr, 0.0); // perfect operating point
        assert_eq!(pts[4].tpr, 0.0);
        assert_eq!(pts[4].fpr, 0.0);
    }

    #[test]
    fn auc_values() {
        // Perfect separation → 1.0.
        let perfect: Vec<(f64, bool)> = (0..10)
            .map(|i| (i as f64, i >= 5))
            .collect();
        assert!((auc(&perfect).unwrap() - 1.0).abs() < 1e-12);
        // Inverted → 0.0.
        let inverted: Vec<(f64, bool)> = (0..10).map(|i| (i as f64, i < 5)).collect();
        assert!(auc(&inverted).unwrap().abs() < 1e-12);
        // All same score → 0.5 (ties).
        let ties: Vec<(f64, bool)> = (0..10).map(|i| (1.0, i % 2 == 0)).collect();
        assert!((auc(&ties).unwrap() - 0.5).abs() < 1e-12);
        // One class empty → None.
        assert_eq!(auc(&[(1.0, true)]), None);
    }
}
