//! Delta queries: turning table-state changes into streams.
//!
//! The tutorial's §2.2.a.iii defines two query-based event notions:
//!
//! 1. *result-set change* — a query over the **current** state whose
//!    result set changed ([`DeltaQueryStream`], wrapping
//!    [`evdb_storage::QuerySnapshot`]);
//! 2. *pattern over current and previous states* — here provided by
//!    feeding either capture stream into a [`crate::PatternMatcher`].
//!
//! Both adapters produce ordinary [`Event`]s whose payload is the row
//! image plus change metadata, so the rest of the CQ stack is oblivious
//! to where the events came from.

use std::sync::Arc;

use evdb_expr::Expr;
use evdb_storage::{ChangeEvent, Database, QuerySnapshot};
use evdb_types::{
    DataType, Event, EventId, FieldDef, IdGenerator, Record, Result, Schema, Value,
};

/// Build the event schema for change events over a table schema:
/// `change STR` + `key`-typed column + the row image columns.
pub fn change_schema(table_schema: &Schema, key_type: DataType) -> Result<Arc<Schema>> {
    let mut fields = vec![
        FieldDef::required("change", DataType::Str),
        FieldDef::required("row_key", key_type),
    ];
    for f in table_schema.fields() {
        fields.push(FieldDef::nullable(f.name.clone(), f.dtype));
    }
    Schema::new(fields)
}

/// Convert a storage change event into a stream event.
/// Deletes carry the before image; inserts/updates the after image.
pub fn change_to_event(
    change: &ChangeEvent,
    schema: &Arc<Schema>,
    ids: &IdGenerator,
) -> Event {
    let mut values = Vec::with_capacity(schema.len());
    values.push(Value::from(change.kind.name()));
    values.push(change.key.clone());
    for v in change.row().values() {
        values.push(v.clone());
    }
    let mut event = Event::new(
        EventId(ids.next_id()),
        format!("delta:{}", change.table),
        change.timestamp,
        Record::new(values),
        Arc::clone(schema),
    );
    // The stream event continues the change's trace (capture stamp and id).
    event.trace = change.trace;
    event
}

/// A polled result-set-change stream over one table.
pub struct DeltaQueryStream {
    snapshot: QuerySnapshot,
    schema: Arc<Schema>,
    ids: IdGenerator,
}

impl DeltaQueryStream {
    /// Watch `predicate` over `table`. The first poll reports the current
    /// result set as inserts.
    pub fn new(db: &Database, table: &str, predicate: Expr) -> Result<DeltaQueryStream> {
        let t = db.table(table)?;
        let key_type = t.schema().fields()[t.def().pk].dtype;
        let schema = change_schema(t.schema(), key_type)?;
        Ok(DeltaQueryStream {
            snapshot: QuerySnapshot::new(table, predicate),
            schema,
            ids: IdGenerator::default(),
        })
    }

    /// Schema of emitted events.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Re-evaluate and emit result-set changes as events.
    pub fn poll(&mut self, db: &Database) -> Result<Vec<Event>> {
        let changes = self.snapshot.poll(db)?;
        Ok(changes
            .iter()
            .map(|c| change_to_event(c, &self.schema, &self.ids))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_storage::DbOptions;

    #[test]
    fn delta_stream_emits_typed_events() {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table(
            "pos",
            Schema::of(&[("sym", DataType::Str), ("qty", DataType::Int)]),
            "sym",
        )
        .unwrap();
        let mut s = DeltaQueryStream::new(&db, "pos", parse("qty > 100").unwrap()).unwrap();
        assert!(s.poll(&db).unwrap().is_empty());

        db.insert("pos", Record::from_iter([Value::from("A"), Value::Int(500)]))
            .unwrap();
        db.insert("pos", Record::from_iter([Value::from("B"), Value::Int(50)]))
            .unwrap();
        let events = s.poll(&db).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("change"), Some(&Value::from("insert")));
        assert_eq!(e.get("row_key"), Some(&Value::from("A")));
        assert_eq!(e.get("qty"), Some(&Value::Int(500)));
        assert!(e.source.starts_with("delta:"));

        db.update("pos", &Value::from("A"), Record::from_iter([Value::from("A"), Value::Int(10)]))
            .unwrap();
        let events = s.poll(&db).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("change"), Some(&Value::from("delete")));
        // Delete events carry the before image.
        assert_eq!(events[0].get("qty"), Some(&Value::Int(500)));
    }
}
