//! Delta queries and the insert/retract delta model.
//!
//! The tutorial's §2.2.a.iii defines two query-based event notions:
//!
//! 1. *result-set change* — a query over the **current** state whose
//!    result set changed ([`DeltaQueryStream`], wrapping
//!    [`evdb_storage::QuerySnapshot`]);
//! 2. *pattern over current and previous states* — here provided by
//!    feeding either capture stream into a [`crate::PatternMatcher`].
//!
//! Both adapters produce ordinary [`Event`]s whose payload is the row
//! image plus change metadata, so the rest of the CQ stack is oblivious
//! to where the events came from.
//!
//! Query *output* is a delta stream too (DESIGN.md D12): every derived
//! event is either an insert or a [`DeltaKind::Retract`]ion of an earlier
//! insert, following CEDR's speculative-output model ("Consistent
//! Streaming Through Time", Barga et al.). A [`ConsistencyLevel`] chooses
//! the trade per query — emit speculatively and retract on late data, or
//! gate on the watermark and never retract — and [`DeltaLog`] compacts a
//! delta stream back into its final answer (the convergence oracle the
//! order-equivalence property tests assert against).

use std::collections::HashMap;
use std::sync::Arc;

use evdb_expr::Expr;
use evdb_storage::{ChangeEvent, ChangeKind, Database, QuerySnapshot};
use evdb_types::{
    DataType, Event, EventId, FieldDef, IdGenerator, Record, Result, Schema, Value,
};

/// The two delta kinds a CQ pipeline emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaKind {
    /// A new result row.
    Insert,
    /// Withdrawal of a previously emitted row (same payload, by value).
    Retract,
}

impl DeltaKind {
    /// Classify a derived event.
    pub fn of(event: &Event) -> DeltaKind {
        if event.is_retraction() {
            DeltaKind::Retract
        } else {
            DeltaKind::Insert
        }
    }

    /// The delta a table change contributes to a monitored result set:
    /// deletes withdraw the row image, inserts/updates add one.
    pub fn of_change(kind: ChangeKind) -> DeltaKind {
        match kind {
            ChangeKind::Delete => DeltaKind::Retract,
            ChangeKind::Insert | ChangeKind::Update => DeltaKind::Insert,
        }
    }
}

/// Per-query emission consistency (DESIGN.md D12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyLevel {
    /// Emit a window result as soon as max event time passes the window
    /// end; when a late event (newer than the watermark) lands in an
    /// already-emitted pane, retract the old result and emit a corrected
    /// insert. Lowest latency; output is a revisable delta stream.
    Speculative,
    /// Gate emission on the stream watermark (max event time − allowed
    /// lateness): output is final and retraction-free, at the cost of
    /// the lateness bound in latency. The default (and the engine's
    /// pre-D12 behaviour).
    #[default]
    Watermark,
}

/// Retraction-compacting accumulator over a derived-event stream.
///
/// Inserts add a row (by rendered value), retractions cancel one. After
/// the stream is exhausted, [`DeltaLog::rows`] is the final answer —
/// identical, for a convergent query, to what an in-order feed would
/// have produced. Counts satisfy the D9 accounting rule
/// `inserted == final + retracted` whenever every retraction found its
/// insert.
#[derive(Debug, Default)]
pub struct DeltaLog {
    counts: HashMap<String, i64>,
    inserted: u64,
    retracted: u64,
}

impl DeltaLog {
    /// Empty log.
    pub fn new() -> DeltaLog {
        DeltaLog::default()
    }

    /// The rendered-row key used for compaction.
    pub fn key(event: &Event) -> String {
        event.payload.to_string()
    }

    /// Fold one derived event in.
    pub fn observe(&mut self, event: &Event) {
        self.observe_keyed(Self::key(event), event.is_retraction());
    }

    /// Fold a pre-rendered row in (for non-`Event` delta sources).
    pub fn observe_keyed(&mut self, key: String, retraction: bool) {
        let delta = if retraction {
            self.retracted += 1;
            -1
        } else {
            self.inserted += 1;
            1
        };
        let c = self.counts.entry(key.clone()).or_insert(0);
        *c += delta;
        if *c == 0 {
            self.counts.remove(&key);
        }
    }

    /// Total insert deltas observed.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Total retraction deltas observed.
    pub fn retracted(&self) -> u64 {
        self.retracted
    }

    /// The compacted multiset, sorted, with multiplicities expanded.
    /// Rows with non-positive count (a retraction that never matched an
    /// insert) are reported with a `-` prefix so tests fail loudly
    /// instead of silently ignoring them.
    pub fn rows(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, c) in &self.counts {
            if *c > 0 {
                for _ in 0..*c {
                    out.push(k.clone());
                }
            } else if *c < 0 {
                for _ in 0..c.unsigned_abs() {
                    out.push(format!("-{k}"));
                }
            }
        }
        out.sort();
        out
    }

    /// Rows currently live (compacted row count).
    pub fn len(&self) -> usize {
        self.counts.values().filter(|c| **c > 0).map(|c| *c as usize).sum()
    }

    /// True when compaction cancelled everything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Build the event schema for change events over a table schema:
/// `change STR` + `key`-typed column + the row image columns.
pub fn change_schema(table_schema: &Schema, key_type: DataType) -> Result<Arc<Schema>> {
    let mut fields = vec![
        FieldDef::required("change", DataType::Str),
        FieldDef::required("row_key", key_type),
    ];
    for f in table_schema.fields() {
        fields.push(FieldDef::nullable(f.name.clone(), f.dtype));
    }
    Schema::new(fields)
}

/// Convert a storage change event into a stream event.
/// Deletes carry the before image; inserts/updates the after image.
///
/// Journal-mined changes carry an LSN, which becomes the event id: a
/// WAL prefix replayed after recovery re-produces the *same* event ids,
/// so the runtime's dedup window can drop the duplicates instead of
/// double-counting them. Trigger/snapshot changes (no LSN) fall back to
/// the generator.
pub fn change_to_event(
    change: &ChangeEvent,
    schema: &Arc<Schema>,
    ids: &IdGenerator,
) -> Event {
    let mut values = Vec::with_capacity(schema.len());
    values.push(Value::from(change.kind.name()));
    values.push(change.key.clone());
    for v in change.row().values() {
        values.push(v.clone());
    }
    let id = match change.lsn {
        Some(lsn) => EventId(lsn),
        None => EventId(ids.next_id()),
    };
    let mut event = Event::new(
        id,
        format!("delta:{}", change.table),
        change.timestamp,
        Record::new(values),
        Arc::clone(schema),
    );
    // The stream event continues the change's trace (capture stamp and id).
    event.trace = change.trace;
    event
}

/// A polled result-set-change stream over one table.
pub struct DeltaQueryStream {
    snapshot: QuerySnapshot,
    schema: Arc<Schema>,
    ids: IdGenerator,
}

impl DeltaQueryStream {
    /// Watch `predicate` over `table`. The first poll reports the current
    /// result set as inserts.
    pub fn new(db: &Database, table: &str, predicate: Expr) -> Result<DeltaQueryStream> {
        let t = db.table(table)?;
        let key_type = t.schema().fields()[t.def().pk].dtype;
        let schema = change_schema(t.schema(), key_type)?;
        Ok(DeltaQueryStream {
            snapshot: QuerySnapshot::new(table, predicate),
            schema,
            ids: IdGenerator::default(),
        })
    }

    /// Schema of emitted events.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Re-evaluate and emit result-set changes as events.
    pub fn poll(&mut self, db: &Database) -> Result<Vec<Event>> {
        let changes = self.snapshot.poll(db)?;
        Ok(changes
            .iter()
            .map(|c| change_to_event(c, &self.schema, &self.ids))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_storage::DbOptions;

    #[test]
    fn delta_stream_emits_typed_events() {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        db.create_table(
            "pos",
            Schema::of(&[("sym", DataType::Str), ("qty", DataType::Int)]),
            "sym",
        )
        .unwrap();
        let mut s = DeltaQueryStream::new(&db, "pos", parse("qty > 100").unwrap()).unwrap();
        assert!(s.poll(&db).unwrap().is_empty());

        db.insert("pos", Record::from_iter([Value::from("A"), Value::Int(500)]))
            .unwrap();
        db.insert("pos", Record::from_iter([Value::from("B"), Value::Int(50)]))
            .unwrap();
        let events = s.poll(&db).unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("change"), Some(&Value::from("insert")));
        assert_eq!(e.get("row_key"), Some(&Value::from("A")));
        assert_eq!(e.get("qty"), Some(&Value::Int(500)));
        assert!(e.source.starts_with("delta:"));

        db.update("pos", &Value::from("A"), Record::from_iter([Value::from("A"), Value::Int(10)]))
            .unwrap();
        let events = s.poll(&db).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("change"), Some(&Value::from("delete")));
        // Delete events carry the before image.
        assert_eq!(events[0].get("qty"), Some(&Value::Int(500)));
    }

    #[test]
    fn delta_log_compacts_insert_retract_pairs() {
        let schema = Schema::of(&[("k", DataType::Str), ("n", DataType::Int)]);
        let mk = |id: u64, k: &str, n: i64| {
            Event::new(
                EventId(id),
                "q",
                evdb_types::TimestampMs(0),
                Record::from_iter([Value::from(k), Value::Int(n)]),
                Arc::clone(&schema),
            )
        };
        let mut log = DeltaLog::new();
        let a1 = mk(1, "A", 1);
        log.observe(&a1); // speculative result
        log.observe(&mk(2, "B", 7));
        log.observe(&a1.to_retraction()); // late data revises A
        log.observe(&mk(3, "A", 2)); // corrected insert
        assert_eq!(log.inserted(), 3);
        assert_eq!(log.retracted(), 1);
        // inserted == final + retracted (D9 accounting).
        assert_eq!(log.inserted(), log.len() as u64 + log.retracted());
        let rows = log.rows();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.contains('2')));
        assert!(!rows.iter().any(|r| r.starts_with('-')));
    }

    #[test]
    fn delta_log_flags_unmatched_retractions() {
        let schema = Schema::of(&[("n", DataType::Int)]);
        let e = Event::new(
            EventId(1),
            "q",
            evdb_types::TimestampMs(0),
            Record::from_iter([Value::Int(9)]),
            schema,
        );
        let mut log = DeltaLog::new();
        log.observe(&e.to_retraction());
        assert!(log.rows()[0].starts_with('-'));
        assert!(log.is_empty()); // no live rows
    }

    #[test]
    fn change_kinds_map_to_delta_kinds() {
        assert_eq!(DeltaKind::of_change(ChangeKind::Insert), DeltaKind::Insert);
        assert_eq!(DeltaKind::of_change(ChangeKind::Update), DeltaKind::Insert);
        assert_eq!(DeltaKind::of_change(ChangeKind::Delete), DeltaKind::Retract);
    }

    #[test]
    fn journal_changes_get_stable_lsn_ids() {
        let schema = Schema::of(&[("sym", DataType::Str), ("qty", DataType::Int)]);
        let ev_schema = change_schema(&schema, DataType::Str).unwrap();
        let change = ChangeEvent {
            table: "pos".into(),
            kind: ChangeKind::Insert,
            key: Value::from("A"),
            before: None,
            after: Some(Record::from_iter([Value::from("A"), Value::Int(1)])),
            txid: 1,
            lsn: Some(42),
            timestamp: evdb_types::TimestampMs(5),
            schema: Arc::clone(&schema),
            trace: evdb_types::Trace::new(42),
        };
        let ids = IdGenerator::default();
        // Replaying the same WAL entry yields the same event id.
        let a = change_to_event(&change, &ev_schema, &ids);
        let b = change_to_event(&change, &ev_schema, &ids);
        assert_eq!(a.id, EventId(42));
        assert_eq!(a.id, b.id);
    }
}
