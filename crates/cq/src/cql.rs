//! CQL — the textual continuous-query front-end.
//!
//! ```text
//! SELECT item {, item}
//! FROM <stream> [window] [WHERE expr] [GROUP BY field {, field}] [HAVING expr]
//!     [EMIT SPECULATIVE | EMIT WATERMARK]
//!
//! item   := expr [AS name]            -- over group fields / window_start / window_end
//!         | agg(field) [AS name]      -- count/sum/avg/min/max/stddev/first/last
//!         | count(*) [AS name]
//! window := [RANGE <n><unit> [SLIDE <n><unit>]]   -- sliding/tumbling time window
//!         | [ROWS <n>]                            -- count window
//!         | [SESSION <n><unit>]                   -- session window
//! unit   := ms | s | m | h
//! ```
//!
//! Compiles onto the operator pipeline: `WHERE` → window aggregate (when a
//! window or any aggregate appears) → `HAVING` → projection. Aggregates in
//! the select list and HAVING are rewritten to references to the
//! aggregation operator's output columns.
//!
//! `EMIT` selects the per-query consistency level (D12): `WATERMARK` (the
//! default) gates output on the watermark and never retracts; `SPECULATIVE`
//! emits eagerly on event time and issues retraction/correction pairs when
//! late events revise an already-emitted pane.

use std::sync::Arc;

use evdb_expr::parser::Parser;
use evdb_expr::token::{tokenize, TokenKind};
use evdb_expr::Expr;
use evdb_types::{Error, FieldDef, Result, Schema};

use crate::aggregate::{AggFunc, AggMode, AggSpec, WindowAggregateOp};
use crate::delta::ConsistencyLevel;
use crate::op::{FilterOp, Operator, Pipeline, ProjectOp};
use crate::window::WindowSpec;

/// A parsed (not yet compiled) continuous query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Select items: (expression, optional alias).
    pub items: Vec<(Expr, Option<String>)>,
    /// Source stream name.
    pub from: String,
    /// Window clause.
    pub window: Option<WindowSpec>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY field names.
    pub group_by: Vec<String>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// `EMIT` consistency level (default: [`ConsistencyLevel::Watermark`]).
    pub consistency: ConsistencyLevel,
}

/// Parse CQL text.
pub fn parse_query(src: &str) -> Result<Query> {
    let mut p = Parser::new(tokenize(src)?);
    p.expect_keyword("SELECT")?;
    let mut items = Vec::new();
    loop {
        let expr = p.parse_expr()?;
        let alias = if p.eat_keyword("AS") {
            Some(p.expect_ident()?)
        } else {
            None
        };
        items.push((expr, alias));
        if !p.eat(&TokenKind::Comma) {
            break;
        }
    }
    p.expect_keyword("FROM")?;
    let from = p.expect_ident()?;

    let mut window = None;
    if p.eat(&TokenKind::LBracket) {
        if p.eat_keyword("RANGE") {
            let width_ms = parse_duration(&mut p)?;
            let slide_ms = if p.eat_keyword("SLIDE") {
                parse_duration(&mut p)?
            } else {
                width_ms
            };
            window = Some(if slide_ms == width_ms {
                WindowSpec::Tumbling { width_ms }
            } else {
                WindowSpec::Sliding { width_ms, slide_ms }
            });
        } else if p.eat_keyword("ROWS") {
            let n = match p.advance().kind {
                TokenKind::Int(n) if n > 0 => n as usize,
                other => {
                    return Err(Error::Invalid(format!("ROWS needs a positive int, got {other:?}")))
                }
            };
            window = Some(WindowSpec::CountTumbling { count: n });
        } else if p.eat_keyword("SESSION") {
            let gap_ms = parse_duration(&mut p)?;
            window = Some(WindowSpec::Session { gap_ms });
        } else {
            return Err(Error::Invalid("expected RANGE, ROWS or SESSION".into()));
        }
        p.expect(&TokenKind::RBracket)?;
    }

    let where_clause = if p.eat_keyword("WHERE") {
        Some(p.parse_expr()?)
    } else {
        None
    };
    let mut group_by = Vec::new();
    if p.eat_keyword("GROUP") {
        p.expect_keyword("BY")?;
        loop {
            group_by.push(p.expect_ident()?);
            if !p.eat(&TokenKind::Comma) {
                break;
            }
        }
    }
    let having = if p.eat_keyword("HAVING") {
        Some(p.parse_expr()?)
    } else {
        None
    };
    let consistency = if p.eat_keyword("EMIT") {
        let level = p.expect_ident()?;
        match level.to_ascii_uppercase().as_str() {
            "SPECULATIVE" => ConsistencyLevel::Speculative,
            "WATERMARK" => ConsistencyLevel::Watermark,
            other => {
                return Err(Error::Invalid(format!(
                    "EMIT expects SPECULATIVE or WATERMARK, got '{other}'"
                )))
            }
        }
    } else {
        ConsistencyLevel::default()
    };
    let _ = p.eat(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(Query {
        items,
        from,
        window,
        where_clause,
        group_by,
        having,
        consistency,
    })
}

fn parse_duration(p: &mut Parser) -> Result<i64> {
    let n = match p.advance().kind {
        TokenKind::Int(n) if n > 0 => n,
        other => return Err(Error::Invalid(format!("expected duration, got {other:?}"))),
    };
    let unit = p.expect_ident()?;
    let factor = match unit.to_ascii_lowercase().as_str() {
        "ms" => 1,
        "s" => 1_000,
        "m" => 60_000,
        "h" => 3_600_000,
        u => return Err(Error::Invalid(format!("unknown time unit '{u}'"))),
    };
    Ok(n * factor)
}

/// Replace aggregate calls in `expr` with references to aggregation output
/// columns, appending new [`AggSpec`]s as they are discovered.
fn rewrite_aggs(expr: &Expr, aggs: &mut Vec<AggSpec>, alias: Option<&str>) -> Result<Expr> {
    Ok(match expr {
        Expr::Func { name, args } => {
            if let Some(func) = AggFunc::from_name(name) {
                // Plain fields keep the named fast path; any other single
                // argument becomes a computed (compiled) expression.
                let (field, arg_expr) = match args.as_slice() {
                    [] if func == AggFunc::Count => (None, None),
                    [Expr::Field(f)] => (Some(f.clone()), None),
                    [e] => (None, Some(e.clone())),
                    _ => {
                        return Err(Error::Invalid(format!(
                            "aggregate {name}() takes a single argument"
                        )))
                    }
                };
                let out_name = alias.map(String::from).unwrap_or_else(|| match &field {
                    Some(f) => format!("{name}_{f}"),
                    None if arg_expr.is_some() => format!("{name}_{}", aggs.len()),
                    None => name.clone(),
                });
                // Reuse an existing spec with the same function+argument.
                let existing = aggs
                    .iter()
                    .find(|a| a.func == func && a.field == field && a.expr == arg_expr)
                    .map(|a| a.out_name.clone());
                let col = match existing {
                    Some(c) => c,
                    None => {
                        aggs.push(AggSpec {
                            func,
                            field,
                            expr: arg_expr,
                            out_name: out_name.clone(),
                        });
                        out_name
                    }
                };
                Expr::Field(col)
            } else {
                Expr::Func {
                    name: name.clone(),
                    args: args
                        .iter()
                        .map(|a| rewrite_aggs(a, aggs, None))
                        .collect::<Result<_>>()?,
                }
            }
        }
        Expr::Literal(_) | Expr::Field(_) => expr.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_aggs(expr, aggs, None)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_aggs(left, aggs, None)?),
            right: Box::new(rewrite_aggs(right, aggs, None)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_aggs(expr, aggs, None)?),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_aggs(expr, aggs, None)?),
            low: Box::new(rewrite_aggs(low, aggs, None)?),
            high: Box::new(rewrite_aggs(high, aggs, None)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_aggs(expr, aggs, None)?),
            list: list
                .iter()
                .map(|e| rewrite_aggs(e, aggs, None))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_aggs(expr, aggs, None)?),
            pattern: Box::new(rewrite_aggs(pattern, aggs, None)?),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(rewrite_aggs(o, aggs, None)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((rewrite_aggs(w, aggs, None)?, rewrite_aggs(t, aggs, None)?))
                })
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite_aggs(e, aggs, None)?)),
                None => None,
            },
        },
    })
}

fn contains_agg(expr: &Expr) -> bool {
    let mut found = false;
    expr.walk(&mut |e| {
        if let Expr::Func { name, .. } = e {
            if AggFunc::from_name(name).is_some() {
                found = true;
            }
        }
    });
    found
}

/// Compile CQL text into a [`Pipeline`] over `input` events.
///
/// # Example
///
/// ```
/// use evdb_cq::aggregate::AggMode;
/// use evdb_cq::compile_query;
/// use evdb_types::{DataType, Event, EventId, Record, Schema, TimestampMs, Value};
///
/// let schema = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
/// let mut q = compile_query(
///     "SELECT sym, avg(px) AS vwap FROM ticks [ROWS 2] GROUP BY sym",
///     &schema,
///     AggMode::Incremental,
/// ).unwrap();
///
/// let tick = |i: u64, px: f64| Event::new(
///     EventId(i), "ticks", TimestampMs(i as i64),
///     Record::from_iter([Value::from("IBM"), Value::Float(px)]),
///     schema.clone(),
/// );
/// assert!(q.push(&tick(1, 100.0)).unwrap().is_empty());
/// let out = q.push(&tick(2, 110.0)).unwrap(); // window of 2 closes
/// assert_eq!(out[0].payload.get(1), Some(&Value::Float(105.0)));
/// ```
pub fn compile_query(src: &str, input: &Arc<Schema>, mode: AggMode) -> Result<Pipeline> {
    let q = parse_query(src)?;
    compile(&q, input, mode)
}

/// Compile a parsed query.
pub fn compile(q: &Query, input: &Arc<Schema>, mode: AggMode) -> Result<Pipeline> {
    let mut ops: Vec<Box<dyn Operator>> = Vec::new();

    // WHERE runs against raw input.
    if let Some(w) = &q.where_clause {
        if contains_agg(w) {
            return Err(Error::Invalid(
                "aggregates are not allowed in WHERE (use HAVING)".into(),
            ));
        }
        ops.push(Box::new(FilterOp::new(
            w.bind_predicate(input)?,
            Arc::clone(input),
        )));
    }

    let any_agg = q.items.iter().any(|(e, _)| contains_agg(e))
        || q.having.as_ref().map(contains_agg).unwrap_or(false);

    if q.window.is_none() && !any_agg {
        // Simple select: projection only.
        if q.having.is_some() || !q.group_by.is_empty() {
            return Err(Error::Invalid(
                "GROUP BY / HAVING require a window or aggregates".into(),
            ));
        }
        let (exprs, schema) = build_projection(&q.items, input)?;
        ops.push(Box::new(ProjectOp::new(exprs, schema)));
        return Ok(Pipeline::new(ops));
    }

    let window = q.window.unwrap_or(WindowSpec::Tumbling {
        width_ms: i64::MAX / 4, // "infinite" window: aggregates close only at stream end
    });

    // Rewrite aggregates out of select items and HAVING.
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut rewritten_items = Vec::with_capacity(q.items.len());
    for (e, alias) in &q.items {
        let r = rewrite_aggs(e, &mut aggs, alias.as_deref())?;
        rewritten_items.push((r, alias.clone()));
    }
    let rewritten_having = match &q.having {
        Some(h) => Some(rewrite_aggs(h, &mut aggs, None)?),
        None => None,
    };

    let group_refs: Vec<&str> = q.group_by.iter().map(String::as_str).collect();
    let agg_op = WindowAggregateOp::new(input, window, &group_refs, aggs, mode)?
        .with_consistency(q.consistency);
    let agg_schema = agg_op.output_schema();
    ops.push(Box::new(agg_op));

    if let Some(h) = rewritten_having {
        ops.push(Box::new(FilterOp::new(
            h.bind_predicate(&agg_schema)?,
            Arc::clone(&agg_schema),
        )));
    }

    let (exprs, schema) = build_projection(&rewritten_items, &agg_schema)?;
    ops.push(Box::new(ProjectOp::new(exprs, schema)));
    Ok(Pipeline::new(ops))
}

/// Bind select items against a schema, deriving output field names/types.
fn build_projection(
    items: &[(Expr, Option<String>)],
    input: &Arc<Schema>,
) -> Result<(Vec<evdb_expr::BoundExpr>, Arc<Schema>)> {
    let mut exprs = Vec::with_capacity(items.len());
    let mut fields = Vec::with_capacity(items.len());
    for (i, (e, alias)) in items.iter().enumerate() {
        let ty = evdb_expr::typecheck::infer(e, input)?;
        let name = match (alias, e) {
            (Some(a), _) => a.clone(),
            (None, Expr::Field(f)) => f.clone(),
            (None, _) => format!("col{i}"),
        };
        fields.push(FieldDef::nullable(
            name,
            ty.unwrap_or(evdb_types::DataType::Str),
        ));
        exprs.push(e.bind(input)?);
    }
    Ok((exprs, Schema::new(fields)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_types::{DataType, Event, EventId, Record, TimestampMs, Value};

    fn schema() -> Arc<Schema> {
        Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)])
    }

    fn ev(ts: i64, sym: &str, px: f64) -> Event {
        Event::new(
            EventId(ts as u64),
            "ticks",
            TimestampMs(ts),
            Record::from_iter([Value::from(sym), Value::Float(px)]),
            schema(),
        )
    }

    #[test]
    fn parse_full_query() {
        let q = parse_query(
            "SELECT sym, avg(px) AS apx FROM ticks [RANGE 10 s SLIDE 2 s] \
             WHERE px > 0 GROUP BY sym HAVING avg(px) > 100",
        )
        .unwrap();
        assert_eq!(q.from, "ticks");
        assert_eq!(
            q.window,
            Some(WindowSpec::Sliding {
                width_ms: 10_000,
                slide_ms: 2_000
            })
        );
        assert_eq!(q.group_by, vec!["sym".to_string()]);
        assert!(q.having.is_some());
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.items[1].1.as_deref(), Some("apx"));
    }

    #[test]
    fn parse_window_variants() {
        assert_eq!(
            parse_query("SELECT count() FROM s [ROWS 100]").unwrap().window,
            Some(WindowSpec::CountTumbling { count: 100 })
        );
        assert_eq!(
            parse_query("SELECT count() FROM s [SESSION 5 m]").unwrap().window,
            Some(WindowSpec::Session { gap_ms: 300_000 })
        );
        assert_eq!(
            parse_query("SELECT count() FROM s [RANGE 1 h]").unwrap().window,
            Some(WindowSpec::Tumbling { width_ms: 3_600_000 })
        );
        assert!(parse_query("SELECT 1 FROM s [RANGE 0 s]").is_err());
        assert!(parse_query("SELECT 1 FROM s [RANGE 5 parsecs]").is_err());
    }

    #[test]
    fn compile_select_where_project() {
        let mut p = compile_query(
            "SELECT sym, px * 2 AS dbl FROM ticks WHERE px > 10",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        assert!(p.push(&ev(1, "A", 5.0)).unwrap().is_empty());
        let out = p.push(&ev(2, "A", 20.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].payload,
            Record::from_iter([Value::from("A"), Value::Float(40.0)])
        );
        assert_eq!(p.output_schema().index_of("dbl"), Some(1));
    }

    #[test]
    fn compile_windowed_aggregate_with_having() {
        let mut p = compile_query(
            "SELECT sym, window_start, avg(px) AS apx, count() AS n \
             FROM ticks [RANGE 1 s] GROUP BY sym HAVING avg(px) > 50",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        p.push(&ev(100, "A", 100.0)).unwrap();
        p.push(&ev(200, "A", 200.0)).unwrap();
        p.push(&ev(300, "B", 10.0)).unwrap();
        let out = p.advance_watermark(TimestampMs(1_000)).unwrap();
        // B's avg (10) fails HAVING.
        assert_eq!(out.len(), 1);
        let r = &out[0].payload;
        assert_eq!(r.get(0), Some(&Value::from("A")));
        assert_eq!(r.get(1), Some(&Value::Timestamp(TimestampMs(0))));
        assert_eq!(r.get(2), Some(&Value::Float(150.0)));
        assert_eq!(r.get(3), Some(&Value::Int(2)));
    }

    #[test]
    fn shared_aggregates_are_computed_once() {
        // avg(px) appears twice; the agg op should compute it once.
        let p = compile_query(
            "SELECT avg(px) AS a1, avg(px) + 1 AS a2 FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        // Output schema has the two projected columns.
        assert_eq!(p.output_schema().len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT FROM s").is_err());
        assert!(parse_query("SELECT 1").is_err());
        assert!(compile_query(
            "SELECT sym FROM s GROUP BY sym",
            &schema(),
            AggMode::Incremental
        )
        .is_err()); // group by without window/agg
        assert!(compile_query(
            "SELECT sym FROM s WHERE avg(px) > 1",
            &schema(),
            AggMode::Incremental
        )
        .is_err()); // agg in WHERE
        assert!(compile_query(
            "SELECT avg(px, 2) FROM s [RANGE 1 s]",
            &schema(),
            AggMode::Incremental
        )
        .is_err()); // agg arity
        assert!(compile_query(
            "SELECT ghost FROM s",
            &schema(),
            AggMode::Incremental
        )
        .is_err());
    }

    #[test]
    fn parse_emit_clause() {
        let q = parse_query("SELECT count() AS n FROM s [RANGE 1 s] EMIT SPECULATIVE").unwrap();
        assert_eq!(q.consistency, ConsistencyLevel::Speculative);
        let q = parse_query("SELECT count() AS n FROM s [RANGE 1 s] EMIT WATERMARK;").unwrap();
        assert_eq!(q.consistency, ConsistencyLevel::Watermark);
        // Default is Watermark (retraction-free).
        let q = parse_query("SELECT count() AS n FROM s [RANGE 1 s]").unwrap();
        assert_eq!(q.consistency, ConsistencyLevel::Watermark);
        assert!(parse_query("SELECT count() FROM s [RANGE 1 s] EMIT EVENTUALLY").is_err());
    }

    #[test]
    fn compile_speculative_emits_eagerly_and_retracts() {
        let mut p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s] EMIT SPECULATIVE",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        p.push(&ev(100, "A", 1.0)).unwrap();
        // Event time passes the window end → pane [0,1000) emits eagerly,
        // no watermark required.
        let out = p.push(&ev(1_200, "A", 1.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out[0].is_retraction());
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(1)));
        // A late event revises the emitted pane: retract + corrected insert.
        let out = p.push(&ev(900, "A", 1.0)).unwrap();
        let flags: Vec<(bool, &Value)> = out
            .iter()
            .map(|e| (e.is_retraction(), e.payload.get(0).unwrap()))
            .collect();
        assert_eq!(flags, vec![(true, &Value::Int(1)), (false, &Value::Int(2))]);
        assert_eq!(p.op_stats().retractions, 1);
        assert_eq!(p.op_stats().pane_reopens, 1);
    }

    #[test]
    fn count_star_spelling() {
        let mut p = compile_query(
            "SELECT count() AS n FROM ticks [ROWS 2]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        p.push(&ev(1, "A", 1.0)).unwrap();
        let out = p.push(&ev(2, "B", 1.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(2)));
    }
}
