//! Window specifications and assignment.
//!
//! All time windows are **event-time** windows: assignment uses the
//! event's timestamp, and closing is driven by watermarks, so replays and
//! simulated clocks produce identical results.

use evdb_types::TimestampMs;

/// A window shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Fixed, non-overlapping windows of `width_ms`.
    Tumbling {
        /// Window width in milliseconds.
        width_ms: i64,
    },
    /// Overlapping windows of `width_ms` starting every `slide_ms`
    /// (`slide_ms ≤ width_ms`; an event belongs to `width/slide` windows).
    Sliding {
        /// Window width in milliseconds.
        width_ms: i64,
        /// Slide interval in milliseconds.
        slide_ms: i64,
    },
    /// Count-based tumbling window: closes after `count` events
    /// (per group), independent of time.
    CountTumbling {
        /// Events per window.
        count: usize,
    },
    /// Session window: closes when no event arrives for `gap_ms`
    /// (per group).
    Session {
        /// Inactivity gap in milliseconds.
        gap_ms: i64,
    },
}

impl WindowSpec {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            WindowSpec::Tumbling { width_ms } if *width_ms <= 0 => {
                Err("tumbling width must be positive".into())
            }
            WindowSpec::Sliding { width_ms, slide_ms } => {
                if *width_ms <= 0 || *slide_ms <= 0 {
                    Err("sliding width/slide must be positive".into())
                } else if slide_ms > width_ms {
                    Err("slide must not exceed width".into())
                } else if width_ms % slide_ms != 0 {
                    Err("width must be a multiple of slide".into())
                } else {
                    Ok(())
                }
            }
            WindowSpec::CountTumbling { count } if *count == 0 => {
                Err("count window needs count ≥ 1".into())
            }
            WindowSpec::Session { gap_ms } if *gap_ms <= 0 => {
                Err("session gap must be positive".into())
            }
            _ => Ok(()),
        }
    }

    /// For time windows: the start timestamps of every window containing
    /// an event at `ts`.
    pub fn assign(&self, ts: TimestampMs) -> Vec<TimestampMs> {
        match self {
            WindowSpec::Tumbling { width_ms } => vec![ts.window_start(*width_ms)],
            WindowSpec::Sliding { width_ms, slide_ms } => {
                let mut out = Vec::with_capacity((width_ms / slide_ms) as usize);
                // Latest window starting at or before ts.
                let last_start = ts.window_start(*slide_ms);
                let mut start = last_start.0;
                // Walk backwards while the window still covers ts.
                while start > ts.0 - width_ms {
                    out.push(TimestampMs(start));
                    start -= slide_ms;
                }
                out.reverse();
                out
            }
            _ => Vec::new(),
        }
    }

    /// For time windows: the exclusive end of a window starting at
    /// `start`.
    pub fn window_end(&self, start: TimestampMs) -> TimestampMs {
        match self {
            WindowSpec::Tumbling { width_ms } => start.plus(*width_ms),
            WindowSpec::Sliding { width_ms, .. } => start.plus(*width_ms),
            _ => start,
        }
    }

    /// Pane width for incremental aggregation (the GCD slice that windows
    /// are built from): the slide for sliding windows, the full width for
    /// tumbling.
    pub fn pane_ms(&self) -> Option<i64> {
        match self {
            WindowSpec::Tumbling { width_ms } => Some(*width_ms),
            WindowSpec::Sliding { slide_ms, .. } => Some(*slide_ms),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment() {
        let w = WindowSpec::Tumbling { width_ms: 1000 };
        assert_eq!(w.assign(TimestampMs(0)), vec![TimestampMs(0)]);
        assert_eq!(w.assign(TimestampMs(999)), vec![TimestampMs(0)]);
        assert_eq!(w.assign(TimestampMs(1000)), vec![TimestampMs(1000)]);
        assert_eq!(w.window_end(TimestampMs(1000)), TimestampMs(2000));
    }

    #[test]
    fn sliding_assignment_covers_width_over_slide_windows() {
        let w = WindowSpec::Sliding {
            width_ms: 1000,
            slide_ms: 250,
        };
        let starts = w.assign(TimestampMs(1_100));
        assert_eq!(
            starts,
            vec![
                TimestampMs(250),
                TimestampMs(500),
                TimestampMs(750),
                TimestampMs(1000)
            ]
        );
        // Boundary event belongs to exactly width/slide windows.
        assert_eq!(w.assign(TimestampMs(1_000)).len(), 4);
        assert!(w.assign(TimestampMs(1_000)).contains(&TimestampMs(1_000)));
        assert!(!w.assign(TimestampMs(1_000)).contains(&TimestampMs(0)));
    }

    #[test]
    fn validation() {
        assert!(WindowSpec::Tumbling { width_ms: 0 }.validate().is_err());
        assert!(WindowSpec::Sliding { width_ms: 100, slide_ms: 200 }
            .validate()
            .is_err());
        assert!(WindowSpec::Sliding { width_ms: 100, slide_ms: 30 }
            .validate()
            .is_err()); // not a multiple
        assert!(WindowSpec::Sliding { width_ms: 100, slide_ms: 25 }
            .validate()
            .is_ok());
        assert!(WindowSpec::CountTumbling { count: 0 }.validate().is_err());
        assert!(WindowSpec::Session { gap_ms: -1 }.validate().is_err());
    }

    #[test]
    fn panes() {
        assert_eq!(
            WindowSpec::Sliding { width_ms: 100, slide_ms: 20 }.pane_ms(),
            Some(20)
        );
        assert_eq!(WindowSpec::Tumbling { width_ms: 100 }.pane_ms(), Some(100));
        assert_eq!(WindowSpec::CountTumbling { count: 5 }.pane_ms(), None);
    }

    #[test]
    fn negative_time_assignment() {
        let w = WindowSpec::Tumbling { width_ms: 1000 };
        assert_eq!(w.assign(TimestampMs(-1)), vec![TimestampMs(-1000)]);
    }
}
