//! Additional stream operators: windowed Top-K ranking and key-based
//! deduplication.
//!
//! Both address the tutorial's information-overload theme from inside
//! the query layer: Top-K turns a firehose into a ranked digest;
//! deduplication drops events that add no information within a window
//! (the stream-level sibling of the notification layer's VIRT filter).

use std::collections::HashMap;
use std::sync::Arc;

use evdb_types::{
    DataType, Error, Event, EventId, FieldDef, Record, Result, Schema, TimestampMs, Value,
};

use crate::op::{key_of, Operator};

/// Emits, at every watermark, the top `k` events by a numeric score
/// field among those seen in the trailing `window_ms`, ranked and
/// annotated with their rank. Ties break by recency (newer first).
pub struct TopKOp {
    k: usize,
    score_field: usize,
    window_ms: i64,
    buffer: Vec<(TimestampMs, u64, Record)>,
    seq: u64,
    emit_seq: u64,
    out_schema: Arc<Schema>,
    label: String,
}

impl TopKOp {
    /// Rank events of `input` by `score_field` (numeric) over a trailing
    /// window.
    pub fn new(
        input: &Arc<Schema>,
        score_field: &str,
        k: usize,
        window_ms: i64,
    ) -> Result<TopKOp> {
        if k == 0 || window_ms <= 0 {
            return Err(Error::Invalid("top-k needs k ≥ 1 and a positive window".into()));
        }
        let sf = input
            .index_of(score_field)
            .ok_or_else(|| Error::Schema(format!("unknown score field '{score_field}'")))?;
        if !input.fields()[sf].dtype.is_numeric() {
            return Err(Error::Type(format!(
                "top-k score field '{score_field}' must be numeric"
            )));
        }
        let mut fields = vec![FieldDef::required("rank", DataType::Int)];
        fields.extend(input.fields().iter().cloned());
        Ok(TopKOp {
            k,
            score_field: sf,
            window_ms,
            buffer: Vec::new(),
            seq: 0,
            emit_seq: 0,
            out_schema: Schema::new(fields)?,
            label: "topk".to_string(),
        })
    }

    /// Rows currently buffered (observability).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl Operator for TopKOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let _ = out;
        self.seq += 1;
        self.buffer
            .push((event.timestamp, self.seq, event.payload.clone()));
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, out: &mut Vec<Event>) -> Result<()> {
        let horizon = wm.minus(self.window_ms);
        self.buffer.retain(|(ts, _, _)| *ts > horizon);
        if self.buffer.is_empty() {
            return Ok(());
        }
        let mut ranked: Vec<&(TimestampMs, u64, Record)> = self.buffer.iter().collect();
        ranked.sort_by(|a, b| {
            let sa = a.2.get(self.score_field).and_then(Value::as_f64).unwrap_or(f64::MIN);
            let sb = b.2.get(self.score_field).and_then(Value::as_f64).unwrap_or(f64::MIN);
            sb.total_cmp(&sa).then(b.1.cmp(&a.1)) // score desc, newest first
        });
        for (rank, (_, _, rec)) in ranked.into_iter().take(self.k).enumerate() {
            let mut values = Vec::with_capacity(rec.len() + 1);
            values.push(Value::Int(rank as i64 + 1));
            values.extend(rec.values().iter().cloned());
            self.emit_seq += 1;
            out.push(Event::new(
                EventId(self.emit_seq),
                "topk",
                wm,
                Record::new(values),
                Arc::clone(&self.out_schema),
            ));
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Drops events whose key fields repeat within `window_ms` of the last
/// *forwarded* event with that key (per-key throttling). Pass
/// `window_ms = i64::MAX` for exactly-once-per-key semantics.
pub struct DeduplicateOp {
    key_fields: Vec<usize>,
    window_ms: i64,
    last_forwarded: HashMap<Vec<Value>, TimestampMs>,
    schema: Arc<Schema>,
    /// Events dropped as duplicates (observability).
    pub dropped: u64,
    label: String,
}

impl DeduplicateOp {
    /// Deduplicate events of `input` by `keys` within `window_ms`.
    pub fn new(input: &Arc<Schema>, keys: &[&str], window_ms: i64) -> Result<DeduplicateOp> {
        if keys.is_empty() {
            return Err(Error::Invalid("dedup needs at least one key field".into()));
        }
        if window_ms <= 0 {
            return Err(Error::Invalid("dedup window must be positive".into()));
        }
        let key_fields = keys
            .iter()
            .map(|k| {
                input
                    .index_of(k)
                    .ok_or_else(|| Error::Schema(format!("unknown key field '{k}'")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DeduplicateOp {
            key_fields,
            window_ms,
            last_forwarded: HashMap::new(),
            schema: Arc::clone(input),
            dropped: 0,
            label: "dedup".to_string(),
        })
    }

    /// Keys currently tracked.
    pub fn tracked_keys(&self) -> usize {
        self.last_forwarded.len()
    }
}

impl Operator for DeduplicateOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let key = key_of(&event.payload, &self.key_fields);
        let forward = match self.last_forwarded.get(&key) {
            Some(last) => event.timestamp.since(*last) >= self.window_ms,
            None => true,
        };
        if forward {
            self.last_forwarded.insert(key, event.timestamp);
            out.push(event.clone());
        } else {
            self.dropped += 1;
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, _out: &mut Vec<Event>) -> Result<()> {
        // Expired keys can be forgotten (state bound).
        if self.window_ms < i64::MAX / 2 {
            let horizon = wm.minus(self.window_ms);
            self.last_forwarded.retain(|_, ts| *ts > horizon);
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::of(&[("sym", DataType::Str), ("vol", DataType::Int)])
    }

    fn ev(ts: i64, sym: &str, vol: i64) -> Event {
        Event::new(
            EventId(ts as u64),
            "s",
            TimestampMs(ts),
            Record::from_iter([Value::from(sym), Value::Int(vol)]),
            schema(),
        )
    }

    #[test]
    fn topk_ranks_by_score_desc() {
        let mut op = TopKOp::new(&schema(), "vol", 2, 1_000).unwrap();
        let mut out = Vec::new();
        for (ts, sym, vol) in [(1, "A", 10), (2, "B", 30), (3, "C", 20), (4, "D", 5)] {
            op.on_event(&ev(ts, sym, vol), &mut out).unwrap();
        }
        op.on_watermark(TimestampMs(100), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(1)));
        assert_eq!(out[0].payload.get(1), Some(&Value::from("B")));
        assert_eq!(out[1].payload.get(0), Some(&Value::Int(2)));
        assert_eq!(out[1].payload.get(1), Some(&Value::from("C")));
    }

    #[test]
    fn topk_window_expires_old_events() {
        let mut op = TopKOp::new(&schema(), "vol", 1, 100).unwrap();
        let mut out = Vec::new();
        op.on_event(&ev(0, "OLD", 1_000), &mut out).unwrap();
        op.on_event(&ev(150, "NEW", 10), &mut out).unwrap();
        op.on_watermark(TimestampMs(200), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(1), Some(&Value::from("NEW")));
        assert_eq!(op.buffered(), 1);
    }

    #[test]
    fn topk_validation() {
        assert!(TopKOp::new(&schema(), "vol", 0, 100).is_err());
        assert!(TopKOp::new(&schema(), "sym", 1, 100).is_err()); // non-numeric
        assert!(TopKOp::new(&schema(), "ghost", 1, 100).is_err());
    }

    #[test]
    fn dedup_drops_repeats_within_window() {
        let mut op = DeduplicateOp::new(&schema(), &["sym"], 100).unwrap();
        let mut out = Vec::new();
        op.on_event(&ev(0, "A", 1), &mut out).unwrap();
        op.on_event(&ev(50, "A", 2), &mut out).unwrap(); // dup
        op.on_event(&ev(60, "B", 3), &mut out).unwrap(); // different key
        op.on_event(&ev(150, "A", 4), &mut out).unwrap(); // window lapsed
        assert_eq!(out.len(), 3);
        assert_eq!(op.dropped, 1);

        // Watermark prunes old key state.
        op.on_watermark(TimestampMs(1_000), &mut out).unwrap();
        assert_eq!(op.tracked_keys(), 0);
    }

    #[test]
    fn dedup_validation() {
        assert!(DeduplicateOp::new(&schema(), &[], 100).is_err());
        assert!(DeduplicateOp::new(&schema(), &["sym"], 0).is_err());
        assert!(DeduplicateOp::new(&schema(), &["ghost"], 100).is_err());
    }
}
