//! Join operators.
//!
//! * [`StreamJoinOp`] — stream-stream equi-join within a time window:
//!   events from two sources are matched when their join keys are equal
//!   and their timestamps differ by at most `window_ms`. Symmetric hash
//!   join; state is pruned by watermark. Retraction deltas flow through
//!   (DESIGN.md D12): a retraction input withdraws one buffered copy of
//!   its row and emits retractions of every join row the original insert
//!   could still pair with.
//! * [`TableLookupOp`] — stream-table join: each event is enriched with
//!   the current row of a database table whose primary key equals the
//!   event's join field ("reference data" enrichment). Inner semantics:
//!   events with no matching row are dropped (use a nullable variant via
//!   `keep_unmatched`).

use std::collections::HashMap;
use std::sync::Arc;

use evdb_storage::Table;
use evdb_types::{
    Error, Event, EventId, Record, Result, Schema, TimestampMs, Value,
};

use crate::op::{OpStats, Operator};

/// Which input side an event belongs to (set by the runtime or test
/// harness via the event's `source`).
fn side_of(event: &Event, left_source: &str) -> bool {
    event.source.as_ref() == left_source
}

/// Windowed stream-stream equi-join.
pub struct StreamJoinOp {
    left_source: String,
    left_key: usize,
    right_key: usize,
    window_ms: i64,
    out_schema: Arc<Schema>,
    left_state: HashMap<Value, Vec<(TimestampMs, Record)>>,
    right_state: HashMap<Value, Vec<(TimestampMs, Record)>>,
    emit_seq: u64,
    /// Retraction join rows emitted (observability, D9).
    pub retractions: u64,
    label: String,
}

impl StreamJoinOp {
    /// Join events whose `source == left_source` with all other events,
    /// on `left_schema.left_key = right_schema.right_key`, within
    /// `window_ms` of each other.
    pub fn new(
        left_source: &str,
        left_schema: &Arc<Schema>,
        right_schema: &Arc<Schema>,
        left_key: &str,
        right_key: &str,
        window_ms: i64,
    ) -> Result<StreamJoinOp> {
        if window_ms <= 0 {
            return Err(Error::Invalid("join window must be positive".into()));
        }
        let lk = left_schema
            .index_of(left_key)
            .ok_or_else(|| Error::Schema(format!("unknown left key '{left_key}'")))?;
        let rk = right_schema
            .index_of(right_key)
            .ok_or_else(|| Error::Schema(format!("unknown right key '{right_key}'")))?;
        let out_schema = left_schema.join(right_schema, "r_")?;
        Ok(StreamJoinOp {
            left_source: left_source.to_string(),
            left_key: lk,
            right_key: rk,
            window_ms,
            out_schema,
            left_state: HashMap::new(),
            right_state: HashMap::new(),
            emit_seq: 0,
            retractions: 0,
            label: "stream_join".to_string(),
        })
    }

    /// Buffered rows (observability / leak tests).
    pub fn state_size(&self) -> usize {
        self.left_state.values().map(Vec::len).sum::<usize>()
            + self.right_state.values().map(Vec::len).sum::<usize>()
    }

    fn emit(
        &mut self,
        left: &Record,
        right: &Record,
        ts: TimestampMs,
        retraction: bool,
        out: &mut Vec<Event>,
    ) {
        self.emit_seq += 1;
        let mut e = Event::new(
            EventId(self.emit_seq),
            "join",
            ts,
            left.concat(right),
            Arc::clone(&self.out_schema),
        );
        e.retraction = retraction;
        if retraction {
            self.retractions += 1;
        }
        out.push(e);
    }
}

impl Operator for StreamJoinOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let is_left = side_of(event, &self.left_source);
        let key = event
            .payload
            .get(if is_left { self.left_key } else { self.right_key })
            .cloned()
            .unwrap_or(Value::Null);
        if key.is_null() {
            return Ok(()); // null keys never join
        }
        let ts = event.timestamp;
        let retraction = event.is_retraction();
        // Probe the opposite side. For a retraction the same probe finds
        // every join row the withdrawn insert can still pair with; each
        // gets a retraction delta. (Partners pruned by the watermark need
        // no retraction: their join rows are final by then.)
        let matches: Vec<(TimestampMs, Record)> = {
            let other = if is_left {
                &self.right_state
            } else {
                &self.left_state
            };
            other
                .get(&key)
                .map(|v| {
                    v.iter()
                        .filter(|(ots, _)| (ts.since(*ots)).abs() <= self.window_ms)
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        for (ots, other_rec) in matches {
            let pair_ts = ts.max(ots);
            if is_left {
                self.emit(&event.payload.clone(), &other_rec, pair_ts, retraction, out);
            } else {
                self.emit(&other_rec, &event.payload.clone(), pair_ts, retraction, out);
            }
        }
        let own = if is_left {
            &mut self.left_state
        } else {
            &mut self.right_state
        };
        if retraction {
            // Withdraw one buffered copy of the retracted row.
            if let Some(rows) = own.get_mut(&key) {
                if let Some(i) = rows
                    .iter()
                    .position(|(rts, rec)| *rts == ts && *rec == event.payload)
                {
                    rows.remove(i);
                }
                if rows.is_empty() {
                    own.remove(&key);
                }
            }
        } else {
            // Insert into own side.
            own.entry(key).or_default().push((ts, event.payload.clone()));
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, _out: &mut Vec<Event>) -> Result<()> {
        let horizon = wm.minus(self.window_ms);
        for state in [&mut self.left_state, &mut self.right_state] {
            state.retain(|_, v| {
                v.retain(|(ts, _)| *ts >= horizon);
                !v.is_empty()
            });
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn state_size(&self) -> usize {
        self.left_state.values().map(|v| v.len()).sum::<usize>()
            + self.right_state.values().map(|v| v.len()).sum::<usize>()
    }

    fn op_stats(&self) -> OpStats {
        OpStats {
            retractions: self.retractions,
            ..OpStats::default()
        }
    }
}

/// Stream-table lookup join (enrichment against reference data).
pub struct TableLookupOp {
    table: Arc<Table>,
    key_field: usize,
    keep_unmatched: bool,
    out_schema: Arc<Schema>,
    null_row: Record,
    label: String,
}

impl TableLookupOp {
    /// Enrich events of `input` by looking up `input.key_field` in
    /// `table`'s primary key. With `keep_unmatched`, events without a
    /// matching row pass through with NULL table columns (left-outer);
    /// otherwise they are dropped (inner).
    pub fn new(
        input: &Arc<Schema>,
        table: Arc<Table>,
        key_field: &str,
        keep_unmatched: bool,
    ) -> Result<TableLookupOp> {
        let kf = input
            .index_of(key_field)
            .ok_or_else(|| Error::Schema(format!("unknown key field '{key_field}'")))?;
        let out_schema = input.join(table.schema(), "t_")?;
        let null_row = Record::new(vec![Value::Null; table.schema().len()]);
        Ok(TableLookupOp {
            table,
            key_field: kf,
            keep_unmatched,
            out_schema,
            null_row,
            label: "table_lookup".to_string(),
        })
    }
}

impl Operator for TableLookupOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let key = event.payload.get(self.key_field).cloned().unwrap_or(Value::Null);
        match self.table.get(&key) {
            Some(row) => out.push(event.with_payload(
                event.payload.concat(&row),
                Arc::clone(&self.out_schema),
            )),
            None if self.keep_unmatched => out.push(event.with_payload(
                event.payload.concat(&self.null_row),
                Arc::clone(&self.out_schema),
            )),
            None => {}
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_storage::{Database, DbOptions};
    use evdb_types::DataType;

    fn order_schema() -> Arc<Schema> {
        Schema::of(&[("oid", DataType::Int), ("sym", DataType::Str)])
    }
    fn fill_schema() -> Arc<Schema> {
        Schema::of(&[("oid", DataType::Int), ("px", DataType::Float)])
    }

    fn order(ts: i64, oid: i64, sym: &str) -> Event {
        Event::new(
            EventId(ts as u64),
            "orders",
            TimestampMs(ts),
            Record::from_iter([Value::Int(oid), Value::from(sym)]),
            order_schema(),
        )
    }
    fn fill(ts: i64, oid: i64, px: f64) -> Event {
        Event::new(
            EventId(1000 + ts as u64),
            "fills",
            TimestampMs(ts),
            Record::from_iter([Value::Int(oid), Value::Float(px)]),
            fill_schema(),
        )
    }

    #[test]
    fn stream_join_within_window() {
        let mut j = StreamJoinOp::new(
            "orders",
            &order_schema(),
            &fill_schema(),
            "oid",
            "oid",
            100,
        )
        .unwrap();
        let mut out = Vec::new();
        j.on_event(&order(0, 1, "A"), &mut out).unwrap();
        j.on_event(&fill(50, 1, 9.5), &mut out).unwrap(); // joins
        j.on_event(&fill(250, 1, 9.9), &mut out).unwrap(); // too late
        j.on_event(&fill(60, 2, 1.0), &mut out).unwrap(); // no order
        j.on_event(&order(100, 2, "B"), &mut out).unwrap(); // joins (right arrived first)
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].payload,
            Record::from_iter([
                Value::Int(1),
                Value::from("A"),
                Value::Int(1),
                Value::Float(9.5)
            ])
        );
        // Right-first pair still emits left-then-right columns.
        assert_eq!(out[1].payload.get(1), Some(&Value::from("B")));
        assert_eq!(out[1].payload.get(3), Some(&Value::Float(1.0)));
        // Output schema prefixes duplicate names.
        assert!(j.output_schema().index_of("r_oid").is_some());
    }

    #[test]
    fn watermark_prunes_join_state() {
        let mut j = StreamJoinOp::new(
            "orders",
            &order_schema(),
            &fill_schema(),
            "oid",
            "oid",
            100,
        )
        .unwrap();
        let mut out = Vec::new();
        for i in 0..50 {
            j.on_event(&order(i, i, "A"), &mut out).unwrap();
        }
        assert_eq!(j.state_size(), 50);
        j.on_watermark(TimestampMs(1_000), &mut out).unwrap();
        assert_eq!(j.state_size(), 0);
    }

    #[test]
    fn null_join_keys_never_match() {
        let ls = Schema::new(vec![evdb_types::FieldDef::nullable("k", DataType::Int)]).unwrap();
        let rs = Schema::new(vec![evdb_types::FieldDef::nullable("k", DataType::Int)]).unwrap();
        let mut j = StreamJoinOp::new("l", &ls, &rs, "k", "k", 100).unwrap();
        let mut out = Vec::new();
        let le = Event::new(EventId(1), "l", TimestampMs(0), Record::from_iter([Value::Null]), ls);
        let re = Event::new(EventId(2), "r", TimestampMs(0), Record::from_iter([Value::Null]), rs);
        j.on_event(&le, &mut out).unwrap();
        j.on_event(&re, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(j.state_size(), 0);
    }

    #[test]
    fn retraction_invalidates_prior_join_rows() {
        let mut j = StreamJoinOp::new(
            "orders",
            &order_schema(),
            &fill_schema(),
            "oid",
            "oid",
            100,
        )
        .unwrap();
        let mut out = Vec::new();
        j.on_event(&order(0, 1, "A"), &mut out).unwrap();
        j.on_event(&fill(50, 1, 9.5), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(j.state_size(), 2);
        // The order is revised: its insert is withdrawn.
        j.on_event(&order(0, 1, "A").to_retraction(), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[1].is_retraction());
        assert_eq!(out[1].payload, out[0].payload); // cancels the join row
        assert_eq!(j.retractions, 1);
        assert_eq!(j.op_stats().retractions, 1);
        // The buffered copy is gone: a new fill no longer matches it.
        assert_eq!(j.state_size(), 1);
        j.on_event(&fill(60, 1, 9.9), &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn retraction_withdraws_exactly_one_duplicate_copy() {
        let mut j = StreamJoinOp::new(
            "orders",
            &order_schema(),
            &fill_schema(),
            "oid",
            "oid",
            100,
        )
        .unwrap();
        let mut out = Vec::new();
        j.on_event(&order(0, 1, "A"), &mut out).unwrap();
        j.on_event(&order(0, 1, "A"), &mut out).unwrap(); // genuine duplicate row
        j.on_event(&order(0, 1, "A").to_retraction(), &mut out).unwrap();
        assert_eq!(j.state_size(), 1); // one copy survives
        j.on_event(&fill(10, 1, 1.0), &mut out).unwrap();
        assert_eq!(out.iter().filter(|e| !e.is_retraction()).count(), 1);
    }

    #[test]
    fn table_lookup_inner_and_outer() {
        let db = Database::in_memory(DbOptions::default()).unwrap();
        let ref_schema = Schema::of(&[("sym", DataType::Str), ("sector", DataType::Str)]);
        let t = db
            .create_table("ref", Arc::clone(&ref_schema), "sym")
            .unwrap();
        db.insert(
            "ref",
            Record::from_iter([Value::from("A"), Value::from("tech")]),
        )
        .unwrap();

        let input = Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)]);
        let mk = |sym: &str| {
            Event::new(
                EventId(1),
                "ticks",
                TimestampMs(0),
                Record::from_iter([Value::from(sym), Value::Float(1.0)]),
                Arc::clone(&input),
            )
        };

        let mut inner = TableLookupOp::new(&input, Arc::clone(&t), "sym", false).unwrap();
        let mut out = Vec::new();
        inner.on_event(&mk("A"), &mut out).unwrap();
        inner.on_event(&mk("Z"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(3), Some(&Value::from("tech")));

        let mut outer = TableLookupOp::new(&input, t, "sym", true).unwrap();
        let mut out = Vec::new();
        outer.on_event(&mk("Z"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(3), Some(&Value::Null));
    }
}
