//! The operator contract and pipeline composition.
//!
//! Operators are push-based: the runtime feeds events (and watermarks) in,
//! operators append derived events to an output buffer. Stateful
//! operators (windows, joins, patterns) hold their state inline; the
//! pipeline as a whole is `Send` so a runtime can own it on a worker
//! thread.

use std::sync::Arc;

use evdb_expr::{BoundExpr, CompiledExpr};
use evdb_types::{Event, Record, Result, Schema, TimestampMs, Value};

/// Per-operator delta/lateness accounting (D9 no-silent-work: every
/// dropped, admitted-late or retracted datum is counted somewhere).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Events too late to admit (beyond the finality horizon) — dropped.
    pub late_events: u64,
    /// Late events admitted into already-emitted state (pane reopens,
    /// pattern revisions) instead of being dropped.
    pub late_admitted: u64,
    /// Already-emitted window panes reopened by a late event.
    pub pane_reopens: u64,
    /// Retraction deltas emitted.
    pub retractions: u64,
}

impl OpStats {
    /// Accumulate another operator's counters.
    pub fn absorb(&mut self, other: &OpStats) {
        self.late_events += other.late_events;
        self.late_admitted += other.late_admitted;
        self.pane_reopens += other.pane_reopens;
        self.retractions += other.retractions;
    }
}

/// A streaming operator.
pub trait Operator: Send {
    /// Process one input event; push any derived events onto `out`.
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()>;

    /// Observe a watermark: "no events with timestamp ≤ `wm` will arrive
    /// any more". Windowed operators close and emit here. Default: no-op.
    fn on_watermark(&mut self, _wm: TimestampMs, _out: &mut Vec<Event>) -> Result<()> {
        Ok(())
    }

    /// Schema of this operator's output events.
    fn output_schema(&self) -> Arc<Schema>;

    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Buffered state held by this operator, in retained items (pane
    /// groups, join rows, pattern runs). Stateless operators report 0.
    fn state_size(&self) -> usize {
        0
    }

    /// Delta/lateness counters. Stateless operators report zeros.
    fn op_stats(&self) -> OpStats {
        OpStats::default()
    }

    /// A pure drop-on-false predicate equivalent to this operator, if
    /// it has one (D15). When the *head* operator exposes this, the
    /// runtime may pre-verify a whole batch through
    /// [`CompiledExpr::eval_batch`] and skip non-matching events
    /// entirely instead of pushing each through the pipeline — sound
    /// only because such an operator is stateless and emits nothing on
    /// a non-match. Default: none.
    fn batch_predicate(&self) -> Option<&CompiledExpr> {
        None
    }
}

/// A linear chain of operators.
pub struct Pipeline {
    ops: Vec<Box<dyn Operator>>,
    /// Scratch buffers reused across pushes to avoid per-event allocation.
    bufs: (Vec<Event>, Vec<Event>),
}

impl Pipeline {
    /// Build a pipeline from a non-empty operator chain. Callers are
    /// responsible for schema compatibility between stages (the CQL
    /// compiler guarantees it; hand-built pipelines should test it).
    pub fn new(ops: Vec<Box<dyn Operator>>) -> Pipeline {
        assert!(!ops.is_empty(), "pipeline needs at least one operator");
        Pipeline {
            ops,
            bufs: (Vec::new(), Vec::new()),
        }
    }

    /// Schema of the pipeline's output.
    pub fn output_schema(&self) -> Arc<Schema> {
        self.ops.last().expect("non-empty").output_schema()
    }

    /// Total buffered state across all stages (window memory proxy).
    pub fn state_size(&self) -> usize {
        self.ops.iter().map(|op| op.state_size()).sum()
    }

    /// Summed delta/lateness counters across all stages.
    pub fn op_stats(&self) -> OpStats {
        let mut total = OpStats::default();
        for op in &self.ops {
            total.absorb(&op.op_stats());
        }
        total
    }

    /// Push one event through every stage; returns derived events.
    pub fn push(&mut self, event: &Event) -> Result<Vec<Event>> {
        let (a, b) = &mut self.bufs;
        a.clear();
        b.clear();
        self.ops[0].on_event(event, a)?;
        for op in self.ops.iter_mut().skip(1) {
            for ev in a.drain(..) {
                op.on_event(&ev, b)?;
            }
            std::mem::swap(a, b);
        }
        Ok(std::mem::take(a))
    }

    /// Push an event the caller has already verified against the head
    /// operator's [`Operator::batch_predicate`] — the head stage is
    /// skipped (a pure filter passes the event through unchanged on
    /// true, so this is exactly `push` minus the redundant re-check).
    pub fn push_verified(&mut self, event: &Event) -> Result<Vec<Event>> {
        let (a, b) = &mut self.bufs;
        a.clear();
        b.clear();
        a.push(event.clone());
        for op in self.ops.iter_mut().skip(1) {
            for ev in a.drain(..) {
                op.on_event(&ev, b)?;
            }
            std::mem::swap(a, b);
        }
        Ok(std::mem::take(a))
    }

    /// The head operator's drop-on-false predicate, if it exposes one
    /// (see [`Operator::batch_predicate`]): the hook the runtime's
    /// batched ingest uses to pre-verify events before paying the
    /// per-event push.
    pub fn head_predicate(&self) -> Option<&CompiledExpr> {
        self.ops[0].batch_predicate()
    }

    /// Push a watermark through every stage. Events emitted by stage `i`
    /// on the watermark are processed by stages `i+1…` before those
    /// stages see the watermark themselves (in-order delivery).
    pub fn advance_watermark(&mut self, wm: TimestampMs) -> Result<Vec<Event>> {
        let (a, b) = &mut self.bufs;
        a.clear();
        b.clear();
        for (i, op) in self.ops.iter_mut().enumerate() {
            // Events produced by earlier stages flow through this stage
            // first…
            for ev in a.drain(..) {
                op.on_event(&ev, b)?;
            }
            // …then the stage handles the watermark itself.
            op.on_watermark(wm, b)?;
            std::mem::swap(a, b);
            let _ = i;
        }
        Ok(std::mem::take(a))
    }
}

/// Stateless predicate filter.
pub struct FilterOp {
    predicate: CompiledExpr,
    schema: Arc<Schema>,
    label: String,
}

impl FilterOp {
    /// Filter events of `schema` by `predicate` (already bound to it).
    /// The predicate is compiled to bytecode here, once per query.
    pub fn new(predicate: BoundExpr, schema: Arc<Schema>) -> FilterOp {
        FilterOp {
            predicate: CompiledExpr::compile(&predicate),
            schema,
            label: "filter".to_string(),
        }
    }
}

impl Operator for FilterOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        if self.predicate.matches(&event.payload)? {
            out.push(event.clone());
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn batch_predicate(&self) -> Option<&CompiledExpr> {
        // Stateless drop-on-false: exactly the shape the batched
        // pre-verify is allowed to short-circuit.
        Some(&self.predicate)
    }
}

/// Projection with computed columns: each output field is an expression
/// over the input record.
pub struct ProjectOp {
    exprs: Vec<CompiledExpr>,
    out_schema: Arc<Schema>,
    label: String,
}

impl ProjectOp {
    /// `columns` pairs an output field definition with its (bound)
    /// defining expression; each is compiled to bytecode here.
    pub fn new(exprs: Vec<BoundExpr>, out_schema: Arc<Schema>) -> ProjectOp {
        assert_eq!(exprs.len(), out_schema.len());
        ProjectOp {
            exprs: exprs.iter().map(CompiledExpr::compile).collect(),
            out_schema,
            label: "project".to_string(),
        }
    }
}

impl Operator for ProjectOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let mut values = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            values.push(e.eval(&event.payload)?);
        }
        out.push(event.with_payload(Record::new(values), Arc::clone(&self.out_schema)));
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Helper shared by aggregate/join operators: extract a grouping key.
pub(crate) fn key_of(record: &Record, key_fields: &[usize]) -> Vec<Value> {
    key_fields
        .iter()
        .map(|i| record.get(*i).cloned().unwrap_or(Value::Null))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;
    use evdb_types::{DataType, EventId};

    fn schema() -> Arc<Schema> {
        Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)])
    }

    fn ev(id: u64, sym: &str, px: f64) -> Event {
        Event::new(
            EventId(id),
            "ticks",
            TimestampMs(id as i64),
            Record::from_iter([Value::from(sym), Value::Float(px)]),
            schema(),
        )
    }

    #[test]
    fn filter_then_project() {
        let s = schema();
        let filter = FilterOp::new(
            parse("px > 100").unwrap().bind_predicate(&s).unwrap(),
            Arc::clone(&s),
        );
        let out_schema = Schema::of(&[("sym", DataType::Str), ("px2", DataType::Float)]);
        let project = ProjectOp::new(
            vec![
                parse("sym").unwrap().bind(&s).unwrap(),
                parse("px * 2").unwrap().bind(&s).unwrap(),
            ],
            Arc::clone(&out_schema),
        );
        let mut p = Pipeline::new(vec![Box::new(filter), Box::new(project)]);
        assert_eq!(p.output_schema(), out_schema);

        assert!(p.push(&ev(1, "A", 50.0)).unwrap().is_empty());
        let out = p.push(&ev(2, "A", 150.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Record::from_iter([Value::from("A"), Value::Float(300.0)]));
        assert_eq!(out[0].id, EventId(2)); // identity preserved
    }

    #[test]
    fn watermark_passes_through_stateless_ops() {
        let s = schema();
        let filter = FilterOp::new(
            parse("px > 0").unwrap().bind_predicate(&s).unwrap(),
            Arc::clone(&s),
        );
        let mut p = Pipeline::new(vec![Box::new(filter)]);
        assert!(p.advance_watermark(TimestampMs(100)).unwrap().is_empty());
    }
}
