//! # evdb-cq
//!
//! Continuous queries and complex event processing — the tutorial's
//! "support for continuous queries provides a comprehensive base for CEP"
//! (§2.2.c.i.3) and its two query-based event definitions (§2.2.a.iii):
//! result-set change events and pattern-occurrence events.
//!
//! Building blocks:
//!
//! * **Operators** ([`op`]): push-based, composable into a [`Pipeline`] —
//!   filter, project/compute, windowed group-by aggregation, stream-stream
//!   window join, stream-table lookup join.
//! * **Windows** ([`window`]): tumbling, sliding, count and session
//!   windows over *event time*, closed by **watermarks** (max event time
//!   minus an allowed-lateness bound). What happens to late events is a
//!   per-query choice (DESIGN.md D12): under `ConsistencyLevel::Watermark`
//!   output is gated on the watermark and anything later is counted and
//!   dropped; under `ConsistencyLevel::Speculative` results are emitted
//!   eagerly on event time and late events re-open already-emitted panes,
//!   issuing retraction/correction delta pairs.
//! * **Aggregation** ([`aggregate`]) in two modes (DESIGN.md D5):
//!   `Incremental` maintains per-pane partial aggregates that are merged
//!   at window close; `Recompute` buffers raw events and recomputes — the
//!   ablation baseline.
//! * **Patterns** ([`pattern`]): SEQ patterns with per-step predicates,
//!   optional steps, Kleene-plus, negation and a WITHIN bound, compiled to
//!   an NFA with three skip strategies (strict contiguity,
//!   skip-till-next-match, skip-till-any-match). The naive self-join
//!   baseline for experiment E6 lives alongside it.
//! * **CQL** ([`cql`]): a small textual front-end
//!   (`SELECT … FROM s [RANGE 10s SLIDE 2s] WHERE … GROUP BY … HAVING …`)
//!   compiled onto the operator pipeline.
//! * **Runtime** ([`runtime`]): named streams, registered continuous
//!   queries, subscriber callbacks, watermark bookkeeping.
//! * **Delta queries** ([`delta`]): adapters that turn
//!   `evdb_storage::QuerySnapshot` diffs and journal changes into events,
//!   plus the insert/retract delta vocabulary ([`DeltaKind`],
//!   [`ConsistencyLevel`]) and the [`DeltaLog`] compactor that folds a
//!   retraction-bearing output stream down to its net answer.

pub mod aggregate;
pub mod cql;
pub mod delta;
pub mod extra;
pub mod join;
pub mod op;
pub mod pattern;
pub mod runtime;
pub mod window;

pub use aggregate::{AggFunc, AggMode, AggSpec};
pub use cql::compile_query;
pub use delta::{ConsistencyLevel, DeltaKind, DeltaLog};
pub use extra::{DeduplicateOp, TopKOp};
pub use op::{OpStats, Operator, Pipeline};
pub use pattern::{Pattern, PatternMatcher, RevisablePatternMatcher, SkipStrategy, Step};
pub use runtime::StreamRuntime;
pub use window::WindowSpec;
