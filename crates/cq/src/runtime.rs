//! The stream runtime: named streams, registered continuous queries,
//! subscribers and watermark bookkeeping.
//!
//! Locking is fine-grained so that a sharded pump (see the core crate)
//! can drive different streams from different worker threads without
//! serialising on one global mutex: the stream and query *maps* are
//! behind `RwLock`s (read-mostly — registration is rare, pushes are
//! constant), while each stream's watermark state and each query's
//! pipeline live behind their own `Mutex`. Two workers pushing into
//! different streams never contend; two workers pushing into the same
//! stream serialise only on that stream's entry, which is exactly the
//! per-partition ordering the sharded pump guarantees anyway.
//!
//! Watermarks are derived from event time: `max event time seen −
//! allowed lateness`, advanced on every push, so downstream windows
//! close deterministically with no wall-clock dependence.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb_obs::{Counter, Registry};
use evdb_types::{Error, Event, EventId, IdGenerator, Record, Result, Schema, TimestampMs};
use parking_lot::{Mutex, RwLock};

use crate::delta::ConsistencyLevel;
use crate::op::{OpStats, Pipeline};

/// Callback invoked with each derived event of a query.
pub type Subscriber = Arc<dyn Fn(&Event) + Send + Sync>;

/// Bounded LRU of recently seen `(stream, event id)` pairs, used to drop
/// replayed duplicates on the pre-built-event ingest path (capture
/// adapters re-deliver WAL prefixes after recovery). Events minted by
/// [`StreamRuntime::push`] get fresh ids and never collide.
struct DedupWindow {
    cap: usize,
    tick: u64,
    /// key → recency tick.
    seen: HashMap<DedupKey, u64>,
    /// recency tick → key (eviction order, oldest first).
    order: BTreeMap<u64, DedupKey>,
}

/// `(stream, event id, is_retraction)` — a retraction delta legitimately
/// reuses its insert's id, so the flag keeps the pair distinct.
type DedupKey = (Arc<str>, u64, bool);

impl DedupWindow {
    fn new(cap: usize) -> DedupWindow {
        DedupWindow {
            cap: cap.max(1),
            tick: 0,
            seen: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Record the key; returns true if it was already present (a
    /// duplicate). Either way the key becomes most-recently-seen.
    fn check_and_insert(&mut self, key: DedupKey) -> bool {
        self.tick += 1;
        let dup = match self.seen.insert(key.clone(), self.tick) {
            Some(old_tick) => {
                self.order.remove(&old_tick);
                true
            }
            None => false,
        };
        self.order.insert(self.tick, key);
        while self.seen.len() > self.cap {
            let (_, oldest) = self.order.pop_first().expect("order non-empty");
            self.seen.remove(&oldest);
        }
        dup
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.seen.len()
    }
}

/// Mutable per-stream watermark state (its own lock; see module docs).
struct StreamState {
    max_ts: TimestampMs,
    events_in: u64,
}

struct StreamEntry {
    schema: Arc<Schema>,
    state: Mutex<StreamState>,
}

/// Mutable per-query state (pipeline + fanout), behind its own lock.
struct QueryInner {
    pipeline: Pipeline,
    subscribers: Vec<Subscriber>,
    events_out: u64,
}

struct QueryEntry {
    source: String,
    consistency: ConsistencyLevel,
    inner: Mutex<QueryInner>,
}

/// Owns streams and continuous queries.
pub struct StreamRuntime {
    streams: RwLock<HashMap<String, Arc<StreamEntry>>>,
    queries: RwLock<HashMap<String, Arc<QueryEntry>>>,
    /// Watermark lag: how far behind max event time the watermark trails
    /// (allowed out-of-orderness), milliseconds.
    lateness_ms: i64,
    ids: IdGenerator,
    /// Derived events materialized (pane/window emissions), when bound.
    panes_obs: Option<Arc<Counter>>,
    /// Replay dedup window (None until [`StreamRuntime::enable_dedup`]).
    dedup: Mutex<Option<DedupWindow>>,
    /// Duplicates dropped by the dedup window (D9).
    dup_dropped: AtomicU64,
    /// Delta counters of dropped queries, so totals stay monotonic.
    retired_stats: Mutex<OpStats>,
}

impl StreamRuntime {
    /// Create a runtime with the given allowed out-of-orderness.
    pub fn new(lateness_ms: i64) -> StreamRuntime {
        StreamRuntime {
            streams: RwLock::new(HashMap::new()),
            queries: RwLock::new(HashMap::new()),
            lateness_ms,
            ids: IdGenerator::default(),
            panes_obs: None,
            dedup: Mutex::new(None),
            dup_dropped: AtomicU64::new(0),
            retired_stats: Mutex::new(OpStats::default()),
        }
    }

    /// Register the derived-event counter (`evdb_cq_panes_total`) with
    /// `registry`. The window-memory gauge is pull-based — hosts bridge
    /// [`StreamRuntime::window_memory`] via `Registry::gauge_fn`.
    pub fn bind_obs(&mut self, registry: &Registry) {
        if registry.is_enabled() {
            self.panes_obs = Some(registry.counter("evdb_cq_panes_total"));
        }
    }

    /// Buffered operator state across all registered queries, in retained
    /// items (pane groups, join rows, pattern runs) — a window-memory
    /// proxy for observability.
    pub fn window_memory(&self) -> usize {
        self.queries
            .read()
            .values()
            .map(|q| q.inner.lock().pipeline.state_size())
            .sum()
    }

    /// Declare a named stream.
    pub fn create_stream(&self, name: &str, schema: Arc<Schema>) -> Result<()> {
        let mut streams = self.streams.write();
        if streams.contains_key(name) {
            return Err(Error::AlreadyExists(format!("stream '{name}'")));
        }
        streams.insert(
            name.to_string(),
            Arc::new(StreamEntry {
                schema,
                state: Mutex::new(StreamState {
                    max_ts: TimestampMs(i64::MIN),
                    events_in: 0,
                }),
            }),
        );
        Ok(())
    }

    /// Schema of a stream.
    pub fn stream_schema(&self, name: &str) -> Result<Arc<Schema>> {
        self.streams
            .read()
            .get(name)
            .map(|s| Arc::clone(&s.schema))
            .ok_or_else(|| Error::NotFound(format!("stream '{name}'")))
    }

    /// Register a continuous query (an operator pipeline) over a stream
    /// at the default [`ConsistencyLevel::Watermark`].
    pub fn register_query(&self, name: &str, source: &str, pipeline: Pipeline) -> Result<()> {
        self.register_query_with(name, source, pipeline, ConsistencyLevel::default())
    }

    /// Register a continuous query with an explicit consistency level
    /// (DESIGN.md D12). The pipeline must already be compiled for that
    /// level (see `cql::compile`); the runtime records it so hosts can
    /// report which queries may emit retractions.
    pub fn register_query_with(
        &self,
        name: &str,
        source: &str,
        pipeline: Pipeline,
        consistency: ConsistencyLevel,
    ) -> Result<()> {
        if self.streams.read().get(source).is_none() {
            return Err(Error::NotFound(format!("stream '{source}'")));
        }
        let mut queries = self.queries.write();
        if queries.contains_key(name) {
            return Err(Error::AlreadyExists(format!("query '{name}'")));
        }
        queries.insert(
            name.to_string(),
            Arc::new(QueryEntry {
                source: source.to_string(),
                consistency,
                inner: Mutex::new(QueryInner {
                    pipeline,
                    subscribers: Vec::new(),
                    events_out: 0,
                }),
            }),
        );
        Ok(())
    }

    /// Consistency level a query was registered with.
    pub fn query_consistency(&self, name: &str) -> Result<ConsistencyLevel> {
        self.queries
            .read()
            .get(name)
            .map(|q| q.consistency)
            .ok_or_else(|| Error::NotFound(format!("query '{name}'")))
    }

    /// Remove a continuous query. Its delta counters are folded into the
    /// retired totals so runtime-wide stats stay monotonic.
    pub fn drop_query(&self, name: &str) -> Result<()> {
        let entry = self
            .queries
            .write()
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("query '{name}'")))?;
        let stats = entry.inner.lock().pipeline.op_stats();
        self.retired_stats.lock().absorb(&stats);
        Ok(())
    }

    /// Enable replay dedup on the pre-built-event ingest path
    /// ([`StreamRuntime::push_event`]): duplicates of the most recent
    /// `capacity` `(stream, event id)` pairs are dropped and counted.
    pub fn enable_dedup(&self, capacity: usize) {
        *self.dedup.lock() = Some(DedupWindow::new(capacity));
    }

    /// Duplicates dropped by the dedup window.
    pub fn dup_dropped(&self) -> u64 {
        self.dup_dropped.load(Ordering::Relaxed)
    }

    /// Summed delta/lateness counters across live and dropped queries
    /// (late drops/admissions, pane reopens, retractions — D9).
    pub fn cq_delta_stats(&self) -> OpStats {
        let mut total = *self.retired_stats.lock();
        for q in self.queries.read().values() {
            total.absorb(&q.inner.lock().pipeline.op_stats());
        }
        total
    }

    /// Attach a subscriber to a query's output.
    pub fn subscribe(&self, query: &str, subscriber: Subscriber) -> Result<()> {
        let queries = self.queries.read();
        let q = queries
            .get(query)
            .ok_or_else(|| Error::NotFound(format!("query '{query}'")))?;
        q.inner.lock().subscribers.push(subscriber);
        Ok(())
    }

    /// Push a payload into a stream; returns every derived event (they
    /// are also delivered to subscribers).
    pub fn push(
        &self,
        stream: &str,
        timestamp: TimestampMs,
        payload: Record,
    ) -> Result<Vec<Event>> {
        let entry = self.stream_entry(stream)?;
        entry.schema.validate(&payload)?;
        let wm = {
            let mut state = entry.state.lock();
            state.max_ts = state.max_ts.max(timestamp);
            state.events_in += 1;
            state.max_ts.minus(self.lateness_ms)
        };
        let event = Event::new(
            EventId(self.ids.next_id()),
            stream,
            timestamp,
            payload,
            Arc::clone(&entry.schema),
        );
        self.route(&event, wm)
    }

    /// Push a pre-built event (capture adapters use this). With dedup
    /// enabled, a replayed `(stream, event id)` pair is dropped before it
    /// can double-count into windows (recovery replays WAL prefixes).
    pub fn push_event(&self, event: &Event) -> Result<Vec<Event>> {
        let entry = self.stream_entry(event.source.as_ref())?;
        if let Some(window) = self.dedup.lock().as_mut() {
            if window.check_and_insert((Arc::clone(&event.source), event.id.0, event.retraction)) {
                self.dup_dropped.fetch_add(1, Ordering::Relaxed);
                return Ok(Vec::new());
            }
        }
        let wm = {
            let mut state = entry.state.lock();
            state.max_ts = state.max_ts.max(event.timestamp);
            state.events_in += 1;
            state.max_ts.minus(self.lateness_ms)
        };
        self.route(event, wm)
    }

    /// Push a pre-built event, bypassing the replay-dedup window.
    ///
    /// History replays (REPLAY over the segment store) legitimately
    /// re-deliver `(stream, event id)` pairs the runtime has seen before:
    /// an event that was retracted and later re-inserted in the *live*
    /// stream carries a fresh id each time (every ingest writes a new WAL
    /// record), but a replay from history re-presents the original ids
    /// verbatim. Routing replays through [`push_event`](Self::push_event)
    /// therefore wrongly dropped a retracted-then-reinserted event as a
    /// "duplicate". The dedup window is only sound for WAL-prefix
    /// re-delivery after crash recovery, so replay feeds use this path
    /// and never consult (or populate) the window.
    ///
    /// The watermark routed with each replayed event is the *historical*
    /// one — derived from the replayed event's own timestamp — not the
    /// live stream's high-water mark. A query registered after the fact
    /// then sees windows open and close exactly as a live subscriber
    /// did, while already-advanced pipelines treat the stale watermark
    /// as a no-op (watermark handling is monotone).
    pub fn push_event_replay(&self, event: &Event) -> Result<Vec<Event>> {
        let entry = self.stream_entry(event.source.as_ref())?;
        {
            let mut state = entry.state.lock();
            state.max_ts = state.max_ts.max(event.timestamp);
            state.events_in += 1;
        }
        let wm = event.timestamp.minus(self.lateness_ms);
        self.route(event, wm)
    }

    fn stream_entry(&self, name: &str) -> Result<Arc<StreamEntry>> {
        self.streams
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| Error::NotFound(format!("stream '{name}'")))
    }

    /// Queries reading from `source`, cloned out so the map lock is not
    /// held while pipelines run.
    fn queries_for(&self, source: &str) -> Vec<Arc<QueryEntry>> {
        self.queries
            .read()
            .values()
            .filter(|q| q.source == source)
            .map(Arc::clone)
            .collect()
    }

    fn route(&self, event: &Event, wm: TimestampMs) -> Result<Vec<Event>> {
        let mut all = Vec::new();
        for q in self.queries_for(event.source.as_ref()) {
            let mut inner = q.inner.lock();
            let mut derived = inner.pipeline.push(event)?;
            derived.extend(inner.pipeline.advance_watermark(wm)?);
            inner.events_out += derived.len() as u64;
            for ev in &mut derived {
                // Derived events belong to the trace of the event whose
                // arrival produced them (stateful operators mint fresh
                // events, losing the input's trace).
                ev.trace = event.trace;
                for s in &inner.subscribers {
                    s(ev);
                }
            }
            all.extend(derived);
        }
        if let Some(c) = &self.panes_obs {
            c.add(all.len() as u64);
        }
        Ok(all)
    }

    /// Force every query on `stream` to observe a watermark (e.g. at end
    /// of input, to flush trailing windows).
    pub fn flush(&self, stream: &str, wm: TimestampMs) -> Result<Vec<Event>> {
        let mut all = Vec::new();
        for q in self.queries_for(stream) {
            let mut inner = q.inner.lock();
            let derived = inner.pipeline.advance_watermark(wm)?;
            inner.events_out += derived.len() as u64;
            for ev in &derived {
                for s in &inner.subscribers {
                    s(ev);
                }
            }
            all.extend(derived);
        }
        Ok(all)
    }

    /// (events in, events out) counters for observability.
    pub fn stats(&self) -> (u64, u64) {
        let events_in = self
            .streams
            .read()
            .values()
            .map(|s| s.state.lock().events_in)
            .sum();
        let events_out = self
            .queries
            .read()
            .values()
            .map(|q| q.inner.lock().events_out)
            .sum();
        (events_in, events_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggMode;
    use crate::cql::compile_query;
    use evdb_types::{DataType, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn schema() -> Arc<Schema> {
        Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)])
    }

    #[test]
    fn end_to_end_windowed_query() {
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        let p = compile_query(
            "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] GROUP BY sym",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("vwap", "ticks", p).unwrap();

        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        rt.subscribe(
            "vwap",
            Arc::new(move |_| {
                h2.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();

        rt.push(
            "ticks",
            TimestampMs(100),
            Record::from_iter([Value::from("A"), Value::Float(10.0)]),
        )
        .unwrap();
        rt.push(
            "ticks",
            TimestampMs(500),
            Record::from_iter([Value::from("A"), Value::Float(20.0)]),
        )
        .unwrap();
        // Crossing into the next window closes the first.
        let out = rt
            .push(
                "ticks",
                TimestampMs(1_200),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(1), Some(&Value::Float(15.0)));
        assert_eq!(hits.load(Ordering::SeqCst), 1);

        // Flush the trailing window.
        let out = rt.flush("ticks", TimestampMs(10_000)).unwrap();
        assert_eq!(out.len(), 1);
        let (ins, outs) = rt.stats();
        assert_eq!(ins, 3);
        assert_eq!(outs, 2);
    }

    #[test]
    fn lateness_delays_watermark() {
        let rt = StreamRuntime::new(500);
        rt.create_stream("ticks", schema()).unwrap();
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();
        rt.push(
            "ticks",
            TimestampMs(100),
            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
        )
        .unwrap();
        // ts 1200: wm = 700 → window [0,1000) stays open.
        let out = rt
            .push(
                "ticks",
                TimestampMs(1_200),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            )
            .unwrap();
        assert!(out.is_empty());
        // A late event at 900 still lands in the open window.
        rt.push(
            "ticks",
            TimestampMs(900),
            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
        )
        .unwrap();
        // ts 1600: wm = 1100 → closes with all three counted? No: events
        // at 100 and 900 are in [0,1000), the 1200 one is not.
        let out = rt
            .push(
                "ticks",
                TimestampMs(1_600),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(2)));
    }

    #[test]
    fn validation_errors() {
        let rt = StreamRuntime::new(0);
        rt.create_stream("s", schema()).unwrap();
        assert!(rt.create_stream("s", schema()).is_err());
        assert!(rt.push("ghost", TimestampMs(0), Record::empty()).is_err());
        assert!(rt.push("s", TimestampMs(0), Record::empty()).is_err()); // schema
        assert!(rt.drop_query("nope").is_err());
        assert!(rt.subscribe("nope", Arc::new(|_| {})).is_err());
        let p = compile_query("SELECT sym FROM s", &schema(), AggMode::Incremental).unwrap();
        assert!(rt.register_query("q", "ghost", p).is_err());
    }

    #[test]
    fn replayed_wal_prefix_is_deduplicated() {
        // Recovery regression: capture adapters re-deliver a WAL prefix
        // after a crash; without dedup the second delivery double-counts.
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        rt.enable_dedup(1024);
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();

        // Stable ids, as change_to_event mints from journal LSNs.
        let mk = |id: u64, ts: i64| {
            Event::new(
                EventId(id),
                "ticks",
                TimestampMs(ts),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
                schema(),
            )
        };
        let prefix: Vec<Event> = (0..5).map(|i| mk(i, 100 + i as i64)).collect();
        for e in &prefix {
            rt.push_event(e).unwrap();
        }
        // Crash + recovery: the same prefix is delivered again.
        for e in &prefix {
            assert!(rt.push_event(e).unwrap().is_empty());
        }
        assert_eq!(rt.dup_dropped(), 5);
        let out = rt.flush("ticks", TimestampMs(10_000)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(5))); // not 10
    }

    #[test]
    fn history_replay_of_retracted_then_reinserted_event_is_not_dropped() {
        // Regression: a replay from the historical store re-presents
        // original event ids. An event that was retracted and then
        // re-observed used to be swallowed by the dedup window when the
        // replay feed went through push_event — its (stream, id, false)
        // key was already "seen". The replay path must bypass dedup.
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        rt.enable_dedup(1024);
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 10 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();

        let insert = Event::new(
            EventId(7),
            "ticks",
            TimestampMs(100),
            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            schema(),
        );
        // Live history: insert, then retract.
        rt.push_event(&insert).unwrap();
        rt.push_event(&insert.to_retraction()).unwrap();

        // REPLAY re-feeds the same id. On the dedup'd path it would be
        // dropped as a duplicate; the replay path must deliver it.
        assert!(rt.push_event(&insert).unwrap().is_empty()); // demonstrates the trap
        assert_eq!(rt.dup_dropped(), 1);
        rt.push_event_replay(&insert).unwrap();
        assert_eq!(rt.dup_dropped(), 1); // replay neither consulted nor fed the window

        let out = rt.flush("ticks", TimestampMs(100_000)).unwrap();
        assert_eq!(out.len(), 1);
        // events_in excludes the dedup-dropped push but includes the
        // replayed delivery: insert + retraction + replayed insert.
        let (ins, _) = rt.stats();
        assert_eq!(ins, 3);
    }

    #[test]
    fn dedup_window_is_bounded_lru() {
        let mut w = DedupWindow::new(3);
        let s: Arc<str> = Arc::from("s");
        for i in 0..3u64 {
            assert!(!w.check_and_insert((Arc::clone(&s), i, false)));
        }
        assert_eq!(w.len(), 3);
        // Touch id 0 so it is most-recent, then overflow: id 1 evicts.
        assert!(w.check_and_insert((Arc::clone(&s), 0, false)));
        assert!(!w.check_and_insert((Arc::clone(&s), 3, false)));
        assert_eq!(w.len(), 3);
        assert!(!w.check_and_insert((Arc::clone(&s), 1, false))); // evicted → new again
        assert!(w.check_and_insert((Arc::clone(&s), 0, false))); // still present
        // A retraction of a seen id is NOT a duplicate.
        assert!(!w.check_and_insert((Arc::clone(&s), 0, true)));
    }

    #[test]
    fn delta_stats_aggregate_across_queries_and_survive_drop() {
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();
        assert_eq!(rt.query_consistency("q").unwrap(), ConsistencyLevel::Watermark);
        let tick = || Record::from_iter([Value::from("A"), Value::Float(1.0)]);
        rt.push("ticks", TimestampMs(100), tick()).unwrap();
        rt.push("ticks", TimestampMs(2_500), tick()).unwrap();
        // Late event behind the closed window boundary → dropped+counted.
        rt.push("ticks", TimestampMs(100), tick()).unwrap();
        assert_eq!(rt.cq_delta_stats().late_events, 1);
        // Counters survive dropping the query (monotonic totals).
        rt.drop_query("q").unwrap();
        assert_eq!(rt.cq_delta_stats().late_events, 1);
        assert!(rt.query_consistency("q").is_err());
    }

    #[test]
    fn concurrent_pushes_to_distinct_streams() {
        let rt = Arc::new(StreamRuntime::new(0));
        for s in ["a", "b", "c", "d"] {
            rt.create_stream(s, schema()).unwrap();
        }
        let handles: Vec<_> = ["a", "b", "c", "d"]
            .into_iter()
            .map(|s| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    for i in 0..500i64 {
                        rt.push(
                            s,
                            TimestampMs(i),
                            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (ins, _) = rt.stats();
        assert_eq!(ins, 2_000);
    }
}
