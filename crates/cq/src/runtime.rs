//! The stream runtime: named streams, registered continuous queries,
//! subscribers and watermark bookkeeping.
//!
//! Locking is fine-grained so that a sharded pump (see the core crate)
//! can drive different streams from different worker threads without
//! serialising on one global mutex: the stream and query *maps* are
//! behind `RwLock`s (read-mostly — registration is rare, pushes are
//! constant), while each stream's watermark state and each query's
//! pipeline live behind their own `Mutex`. Two workers pushing into
//! different streams never contend; two workers pushing into the same
//! stream serialise only on that stream's entry, which is exactly the
//! per-partition ordering the sharded pump guarantees anyway.
//!
//! Watermarks are derived from event time: `max event time seen −
//! allowed lateness`, advanced on every push, so downstream windows
//! close deterministically with no wall-clock dependence.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evdb_obs::{Counter, Registry};
use evdb_types::{Error, Event, EventId, IdGenerator, Record, Result, Schema, TimestampMs};
use parking_lot::{Mutex, RwLock};

use crate::delta::ConsistencyLevel;
use crate::op::{OpStats, Pipeline};

/// Callback invoked with each derived event of a query.
pub type Subscriber = Arc<dyn Fn(&Event) + Send + Sync>;

/// Bounded LRU of recently seen `(stream, event id)` pairs, used to drop
/// replayed duplicates on the pre-built-event ingest path (capture
/// adapters re-deliver WAL prefixes after recovery). Events minted by
/// [`StreamRuntime::push`] get fresh ids and never collide.
struct DedupWindow {
    cap: usize,
    tick: u64,
    /// key → recency tick.
    seen: HashMap<DedupKey, u64>,
    /// recency tick → key (eviction order, oldest first).
    order: BTreeMap<u64, DedupKey>,
}

/// `(stream, event id, is_retraction)` — a retraction delta legitimately
/// reuses its insert's id, so the flag keeps the pair distinct.
type DedupKey = (Arc<str>, u64, bool);

impl DedupWindow {
    fn new(cap: usize) -> DedupWindow {
        DedupWindow {
            cap: cap.max(1),
            tick: 0,
            seen: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Record the key; returns true if it was already present (a
    /// duplicate). Either way the key becomes most-recently-seen.
    fn check_and_insert(&mut self, key: DedupKey) -> bool {
        self.tick += 1;
        let dup = match self.seen.insert(key.clone(), self.tick) {
            Some(old_tick) => {
                self.order.remove(&old_tick);
                true
            }
            None => false,
        };
        self.order.insert(self.tick, key);
        while self.seen.len() > self.cap {
            let (_, oldest) = self.order.pop_first().expect("order non-empty");
            self.seen.remove(&oldest);
        }
        dup
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.seen.len()
    }
}

/// Mutable per-stream watermark state (its own lock; see module docs).
struct StreamState {
    max_ts: TimestampMs,
    events_in: u64,
}

struct StreamEntry {
    schema: Arc<Schema>,
    state: Mutex<StreamState>,
}

/// Mutable per-query state (pipeline + fanout), behind its own lock.
struct QueryInner {
    pipeline: Pipeline,
    subscribers: Vec<Subscriber>,
    events_out: u64,
}

struct QueryEntry {
    source: String,
    consistency: ConsistencyLevel,
    /// Registration sequence number: queries observe each event in
    /// registration order, independent of map iteration order, so the
    /// concatenation of derived events across queries is deterministic
    /// (the batched path of D15 relies on this to match the per-event
    /// path byte for byte).
    reg: u64,
    inner: Mutex<QueryInner>,
}

/// Owns streams and continuous queries.
pub struct StreamRuntime {
    streams: RwLock<HashMap<String, Arc<StreamEntry>>>,
    queries: RwLock<HashMap<String, Arc<QueryEntry>>>,
    /// Watermark lag: how far behind max event time the watermark trails
    /// (allowed out-of-orderness), milliseconds.
    lateness_ms: i64,
    ids: IdGenerator,
    /// Derived events materialized (pane/window emissions), when bound.
    panes_obs: Option<Arc<Counter>>,
    /// Replay dedup window (None until [`StreamRuntime::enable_dedup`]).
    dedup: Mutex<Option<DedupWindow>>,
    /// Duplicates dropped by the dedup window (D9).
    dup_dropped: AtomicU64,
    /// Delta counters of dropped queries, so totals stay monotonic.
    retired_stats: Mutex<OpStats>,
    /// Monotonic registration counter; see [`QueryEntry::reg`].
    next_reg: AtomicU64,
}

impl StreamRuntime {
    /// Create a runtime with the given allowed out-of-orderness.
    pub fn new(lateness_ms: i64) -> StreamRuntime {
        StreamRuntime {
            streams: RwLock::new(HashMap::new()),
            queries: RwLock::new(HashMap::new()),
            lateness_ms,
            ids: IdGenerator::default(),
            panes_obs: None,
            dedup: Mutex::new(None),
            dup_dropped: AtomicU64::new(0),
            retired_stats: Mutex::new(OpStats::default()),
            next_reg: AtomicU64::new(0),
        }
    }

    /// Register the derived-event counter (`evdb_cq_panes_total`) with
    /// `registry`. The window-memory gauge is pull-based — hosts bridge
    /// [`StreamRuntime::window_memory`] via `Registry::gauge_fn`.
    pub fn bind_obs(&mut self, registry: &Registry) {
        if registry.is_enabled() {
            self.panes_obs = Some(registry.counter("evdb_cq_panes_total"));
        }
    }

    /// Buffered operator state across all registered queries, in retained
    /// items (pane groups, join rows, pattern runs) — a window-memory
    /// proxy for observability.
    pub fn window_memory(&self) -> usize {
        self.queries
            .read()
            .values()
            .map(|q| q.inner.lock().pipeline.state_size())
            .sum()
    }

    /// Declare a named stream.
    pub fn create_stream(&self, name: &str, schema: Arc<Schema>) -> Result<()> {
        let mut streams = self.streams.write();
        if streams.contains_key(name) {
            return Err(Error::AlreadyExists(format!("stream '{name}'")));
        }
        streams.insert(
            name.to_string(),
            Arc::new(StreamEntry {
                schema,
                state: Mutex::new(StreamState {
                    max_ts: TimestampMs(i64::MIN),
                    events_in: 0,
                }),
            }),
        );
        Ok(())
    }

    /// Schema of a stream.
    pub fn stream_schema(&self, name: &str) -> Result<Arc<Schema>> {
        self.streams
            .read()
            .get(name)
            .map(|s| Arc::clone(&s.schema))
            .ok_or_else(|| Error::NotFound(format!("stream '{name}'")))
    }

    /// Register a continuous query (an operator pipeline) over a stream
    /// at the default [`ConsistencyLevel::Watermark`].
    pub fn register_query(&self, name: &str, source: &str, pipeline: Pipeline) -> Result<()> {
        self.register_query_with(name, source, pipeline, ConsistencyLevel::default())
    }

    /// Register a continuous query with an explicit consistency level
    /// (DESIGN.md D12). The pipeline must already be compiled for that
    /// level (see `cql::compile`); the runtime records it so hosts can
    /// report which queries may emit retractions.
    pub fn register_query_with(
        &self,
        name: &str,
        source: &str,
        pipeline: Pipeline,
        consistency: ConsistencyLevel,
    ) -> Result<()> {
        if self.streams.read().get(source).is_none() {
            return Err(Error::NotFound(format!("stream '{source}'")));
        }
        let mut queries = self.queries.write();
        if queries.contains_key(name) {
            return Err(Error::AlreadyExists(format!("query '{name}'")));
        }
        queries.insert(
            name.to_string(),
            Arc::new(QueryEntry {
                source: source.to_string(),
                consistency,
                reg: self.next_reg.fetch_add(1, Ordering::Relaxed),
                inner: Mutex::new(QueryInner {
                    pipeline,
                    subscribers: Vec::new(),
                    events_out: 0,
                }),
            }),
        );
        Ok(())
    }

    /// Consistency level a query was registered with.
    pub fn query_consistency(&self, name: &str) -> Result<ConsistencyLevel> {
        self.queries
            .read()
            .get(name)
            .map(|q| q.consistency)
            .ok_or_else(|| Error::NotFound(format!("query '{name}'")))
    }

    /// Remove a continuous query. Its delta counters are folded into the
    /// retired totals so runtime-wide stats stay monotonic.
    pub fn drop_query(&self, name: &str) -> Result<()> {
        let entry = self
            .queries
            .write()
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("query '{name}'")))?;
        let stats = entry.inner.lock().pipeline.op_stats();
        self.retired_stats.lock().absorb(&stats);
        Ok(())
    }

    /// Enable replay dedup on the pre-built-event ingest path
    /// ([`StreamRuntime::push_event`]): duplicates of the most recent
    /// `capacity` `(stream, event id)` pairs are dropped and counted.
    pub fn enable_dedup(&self, capacity: usize) {
        *self.dedup.lock() = Some(DedupWindow::new(capacity));
    }

    /// Duplicates dropped by the dedup window.
    pub fn dup_dropped(&self) -> u64 {
        self.dup_dropped.load(Ordering::Relaxed)
    }

    /// Summed delta/lateness counters across live and dropped queries
    /// (late drops/admissions, pane reopens, retractions — D9).
    pub fn cq_delta_stats(&self) -> OpStats {
        let mut total = *self.retired_stats.lock();
        for q in self.queries.read().values() {
            total.absorb(&q.inner.lock().pipeline.op_stats());
        }
        total
    }

    /// Attach a subscriber to a query's output.
    pub fn subscribe(&self, query: &str, subscriber: Subscriber) -> Result<()> {
        let queries = self.queries.read();
        let q = queries
            .get(query)
            .ok_or_else(|| Error::NotFound(format!("query '{query}'")))?;
        q.inner.lock().subscribers.push(subscriber);
        Ok(())
    }

    /// Push a payload into a stream; returns every derived event (they
    /// are also delivered to subscribers).
    pub fn push(
        &self,
        stream: &str,
        timestamp: TimestampMs,
        payload: Record,
    ) -> Result<Vec<Event>> {
        let entry = self.stream_entry(stream)?;
        entry.schema.validate(&payload)?;
        let wm = {
            let mut state = entry.state.lock();
            state.max_ts = state.max_ts.max(timestamp);
            state.events_in += 1;
            state.max_ts.minus(self.lateness_ms)
        };
        let event = Event::new(
            EventId(self.ids.next_id()),
            stream,
            timestamp,
            payload,
            Arc::clone(&entry.schema),
        );
        self.route(&event, wm)
    }

    /// Push a pre-built event (capture adapters use this). With dedup
    /// enabled, a replayed `(stream, event id)` pair is dropped before it
    /// can double-count into windows (recovery replays WAL prefixes).
    pub fn push_event(&self, event: &Event) -> Result<Vec<Event>> {
        let entry = self.stream_entry(event.source.as_ref())?;
        if let Some(window) = self.dedup.lock().as_mut() {
            if window.check_and_insert((Arc::clone(&event.source), event.id.0, event.retraction)) {
                self.dup_dropped.fetch_add(1, Ordering::Relaxed);
                return Ok(Vec::new());
            }
        }
        let wm = {
            let mut state = entry.state.lock();
            state.max_ts = state.max_ts.max(event.timestamp);
            state.events_in += 1;
            state.max_ts.minus(self.lateness_ms)
        };
        self.route(event, wm)
    }

    /// Push a pre-built event, bypassing the replay-dedup window.
    ///
    /// History replays (REPLAY over the segment store) legitimately
    /// re-deliver `(stream, event id)` pairs the runtime has seen before:
    /// an event that was retracted and later re-inserted in the *live*
    /// stream carries a fresh id each time (every ingest writes a new WAL
    /// record), but a replay from history re-presents the original ids
    /// verbatim. Routing replays through [`push_event`](Self::push_event)
    /// therefore wrongly dropped a retracted-then-reinserted event as a
    /// "duplicate". The dedup window is only sound for WAL-prefix
    /// re-delivery after crash recovery, so replay feeds use this path
    /// and never consult (or populate) the window.
    ///
    /// The watermark routed with each replayed event is the *historical*
    /// one — derived from the replayed event's own timestamp — not the
    /// live stream's high-water mark. A query registered after the fact
    /// then sees windows open and close exactly as a live subscriber
    /// did, while already-advanced pipelines treat the stale watermark
    /// as a no-op (watermark handling is monotone).
    pub fn push_event_replay(&self, event: &Event) -> Result<Vec<Event>> {
        let entry = self.stream_entry(event.source.as_ref())?;
        {
            let mut state = entry.state.lock();
            state.max_ts = state.max_ts.max(event.timestamp);
            state.events_in += 1;
        }
        let wm = event.timestamp.minus(self.lateness_ms);
        self.route(event, wm)
    }

    /// Batched form of [`push_event`](Self::push_event): `out[i]` is
    /// exactly what `push_event(&events[i])` would have returned, had
    /// the events been pushed one at a time in order (D15).
    ///
    /// Dedup checks and watermark bookkeeping run per event in arrival
    /// order (phase A). Routing is then *query-major*: each query's
    /// pipeline lock is taken once per batch, and — when the query's
    /// head operator is a pure filter
    /// ([`Pipeline::head_predicate`]) — the whole batch is pre-verified
    /// through the batch VM, so non-matching events skip the per-event
    /// push entirely (the pipeline still observes their watermarks;
    /// dropping an event never suppresses pane closes). An event whose
    /// evaluation errors at query *j* yields that error and is withheld
    /// from queries after *j*, exactly as the per-event path's early
    /// return.
    pub fn push_events(
        &self,
        events: &[Event],
        scratch: &mut evdb_expr::BatchScratch,
        out: &mut Vec<Result<Vec<Event>>>,
    ) {
        out.clear();
        out.extend((0..events.len()).map(|_| Ok(Vec::new())));
        // Phase A: dedup + stream state, strictly in arrival order (the
        // watermark each event routes with depends on its predecessors).
        let mut wms: Vec<TimestampMs> = Vec::with_capacity(events.len());
        let mut routable = vec![true; events.len()];
        for (i, event) in events.iter().enumerate() {
            wms.push(TimestampMs(0));
            let entry = match self.stream_entry(event.source.as_ref()) {
                Ok(e) => e,
                Err(e) => {
                    out[i] = Err(e);
                    routable[i] = false;
                    continue;
                }
            };
            if let Some(window) = self.dedup.lock().as_mut() {
                if window.check_and_insert((
                    Arc::clone(&event.source),
                    event.id.0,
                    event.retraction,
                )) {
                    self.dup_dropped.fetch_add(1, Ordering::Relaxed);
                    routable[i] = false;
                    continue;
                }
            }
            wms[i] = {
                let mut state = entry.state.lock();
                state.max_ts = state.max_ts.max(event.timestamp);
                state.events_in += 1;
                state.max_ts.minus(self.lateness_ms)
            };
        }

        // Phase B: route, grouped by source then query. Pipelines of
        // different queries are disjoint state, so query-major order is
        // observationally equivalent to event-major for `out`.
        let mut sources: Vec<&str> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            if routable[i] && !sources.contains(&ev.source.as_ref()) {
                sources.push(ev.source.as_ref());
            }
        }
        let mut pane_total = 0u64;
        let mut verdicts: Vec<Result<bool>> = Vec::new();
        for src in sources {
            let idxs: Vec<u32> = events
                .iter()
                .enumerate()
                .filter(|(i, e)| routable[*i] && e.source.as_ref() == src)
                .map(|(i, _)| i as u32)
                .collect();
            for q in self.queries_for(src) {
                let mut inner = q.inner.lock();
                let has_pred = if let Some(pred) = inner.pipeline.head_predicate() {
                    pred.matches_batch(
                        &idxs,
                        |i| &events[*i as usize].payload,
                        scratch,
                        &mut verdicts,
                    );
                    true
                } else {
                    false
                };
                for (k, &i) in idxs.iter().enumerate() {
                    let i = i as usize;
                    if out[i].is_err() {
                        continue; // withheld from queries after the error
                    }
                    let event = &events[i];
                    let mut push_needed = true;
                    if has_pred {
                        match std::mem::replace(&mut verdicts[k], Ok(false)) {
                            // Head filter drops it: skip the push, keep
                            // the watermark.
                            Ok(false) => push_needed = false,
                            Ok(true) => {}
                            Err(e) => {
                                out[i] = Err(e);
                                continue;
                            }
                        }
                    }
                    let step = if push_needed && has_pred {
                        inner.pipeline.push_verified(event)
                    } else if push_needed {
                        inner.pipeline.push(event)
                    } else {
                        Ok(Vec::new())
                    }
                    .and_then(|mut derived| {
                        derived.extend(inner.pipeline.advance_watermark(wms[i])?);
                        Ok(derived)
                    });
                    match step {
                        Ok(mut derived) => {
                            inner.events_out += derived.len() as u64;
                            pane_total += derived.len() as u64;
                            for ev in &mut derived {
                                ev.trace = event.trace;
                                for s in &inner.subscribers {
                                    s(ev);
                                }
                            }
                            if let Ok(all) = &mut out[i] {
                                all.extend(derived);
                            }
                        }
                        Err(e) => out[i] = Err(e),
                    }
                }
            }
        }
        if let Some(c) = &self.panes_obs {
            c.add(pane_total);
        }
    }

    fn stream_entry(&self, name: &str) -> Result<Arc<StreamEntry>> {
        self.streams
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| Error::NotFound(format!("stream '{name}'")))
    }

    /// Queries reading from `source`, cloned out so the map lock is not
    /// held while pipelines run. Sorted by registration order: every
    /// event flows through queries in the order they were registered,
    /// so derived-event concatenation is deterministic (and identical
    /// between the per-event and batched push paths).
    fn queries_for(&self, source: &str) -> Vec<Arc<QueryEntry>> {
        let mut qs: Vec<Arc<QueryEntry>> = self
            .queries
            .read()
            .values()
            .filter(|q| q.source == source)
            .map(Arc::clone)
            .collect();
        qs.sort_unstable_by_key(|q| q.reg);
        qs
    }

    fn route(&self, event: &Event, wm: TimestampMs) -> Result<Vec<Event>> {
        let mut all = Vec::new();
        for q in self.queries_for(event.source.as_ref()) {
            let mut inner = q.inner.lock();
            let mut derived = inner.pipeline.push(event)?;
            derived.extend(inner.pipeline.advance_watermark(wm)?);
            inner.events_out += derived.len() as u64;
            for ev in &mut derived {
                // Derived events belong to the trace of the event whose
                // arrival produced them (stateful operators mint fresh
                // events, losing the input's trace).
                ev.trace = event.trace;
                for s in &inner.subscribers {
                    s(ev);
                }
            }
            all.extend(derived);
        }
        if let Some(c) = &self.panes_obs {
            c.add(all.len() as u64);
        }
        Ok(all)
    }

    /// Force every query on `stream` to observe a watermark (e.g. at end
    /// of input, to flush trailing windows).
    pub fn flush(&self, stream: &str, wm: TimestampMs) -> Result<Vec<Event>> {
        let mut all = Vec::new();
        for q in self.queries_for(stream) {
            let mut inner = q.inner.lock();
            let derived = inner.pipeline.advance_watermark(wm)?;
            inner.events_out += derived.len() as u64;
            for ev in &derived {
                for s in &inner.subscribers {
                    s(ev);
                }
            }
            all.extend(derived);
        }
        Ok(all)
    }

    /// (events in, events out) counters for observability.
    pub fn stats(&self) -> (u64, u64) {
        let events_in = self
            .streams
            .read()
            .values()
            .map(|s| s.state.lock().events_in)
            .sum();
        let events_out = self
            .queries
            .read()
            .values()
            .map(|q| q.inner.lock().events_out)
            .sum();
        (events_in, events_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggMode;
    use crate::cql::compile_query;
    use evdb_types::{DataType, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn schema() -> Arc<Schema> {
        Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)])
    }

    #[test]
    fn end_to_end_windowed_query() {
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        let p = compile_query(
            "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] GROUP BY sym",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("vwap", "ticks", p).unwrap();

        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = Arc::clone(&hits);
        rt.subscribe(
            "vwap",
            Arc::new(move |_| {
                h2.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();

        rt.push(
            "ticks",
            TimestampMs(100),
            Record::from_iter([Value::from("A"), Value::Float(10.0)]),
        )
        .unwrap();
        rt.push(
            "ticks",
            TimestampMs(500),
            Record::from_iter([Value::from("A"), Value::Float(20.0)]),
        )
        .unwrap();
        // Crossing into the next window closes the first.
        let out = rt
            .push(
                "ticks",
                TimestampMs(1_200),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(1), Some(&Value::Float(15.0)));
        assert_eq!(hits.load(Ordering::SeqCst), 1);

        // Flush the trailing window.
        let out = rt.flush("ticks", TimestampMs(10_000)).unwrap();
        assert_eq!(out.len(), 1);
        let (ins, outs) = rt.stats();
        assert_eq!(ins, 3);
        assert_eq!(outs, 2);
    }

    #[test]
    fn push_events_equals_per_event_push() {
        // Two runtimes, same query set: one fed per event, one batched.
        // Outputs, subscriber deliveries, and stats must be identical.
        let mk = || {
            let rt = StreamRuntime::new(0);
            rt.create_stream("ticks", schema()).unwrap();
            let filtered = compile_query(
                "SELECT sym, avg(px) AS apx FROM ticks [RANGE 1 s] WHERE px > 50 GROUP BY sym",
                &schema(),
                AggMode::Incremental,
            )
            .unwrap();
            rt.register_query("hot", "ticks", filtered).unwrap();
            let plain = compile_query(
                "SELECT count() AS n FROM ticks [RANGE 1 s]",
                &schema(),
                AggMode::Incremental,
            )
            .unwrap();
            rt.register_query("all", "ticks", plain).unwrap();
            rt
        };
        let events: Vec<Event> = (0..40)
            .map(|i| {
                Event::new(
                    EventId(i),
                    "ticks",
                    TimestampMs((i as i64) * 97),
                    Record::from_iter([
                        Value::from(if i % 3 == 0 { "A" } else { "B" }),
                        Value::Float((i % 7) as f64 * 20.0),
                    ]),
                    schema(),
                )
            })
            .collect();

        let seq = mk();
        let mut want = Vec::new();
        for ev in &events {
            want.push(seq.push_event(ev).unwrap());
        }

        let bat = mk();
        let mut scratch = evdb_expr::BatchScratch::new();
        let mut got = Vec::new();
        // Uneven chunks so batch boundaries land mid-window.
        for chunk in events.chunks(7) {
            let mut out = Vec::new();
            bat.push_events(chunk, &mut scratch, &mut out);
            got.extend(out.into_iter().map(|r| r.unwrap()));
        }

        assert_eq!(want.len(), got.len());
        let key = |evs: &[Event]| -> Vec<(u64, i64, String, bool)> {
            evs.iter()
                .map(|e| {
                    (
                        e.id.0,
                        e.timestamp.0,
                        format!("{:?}", e.payload),
                        e.retraction,
                    )
                })
                .collect()
        };
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(key(w), key(g), "derived events diverge at event {i}");
        }
        assert_eq!(seq.stats(), bat.stats());
    }

    #[test]
    fn lateness_delays_watermark() {
        let rt = StreamRuntime::new(500);
        rt.create_stream("ticks", schema()).unwrap();
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();
        rt.push(
            "ticks",
            TimestampMs(100),
            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
        )
        .unwrap();
        // ts 1200: wm = 700 → window [0,1000) stays open.
        let out = rt
            .push(
                "ticks",
                TimestampMs(1_200),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            )
            .unwrap();
        assert!(out.is_empty());
        // A late event at 900 still lands in the open window.
        rt.push(
            "ticks",
            TimestampMs(900),
            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
        )
        .unwrap();
        // ts 1600: wm = 1100 → closes with all three counted? No: events
        // at 100 and 900 are in [0,1000), the 1200 one is not.
        let out = rt
            .push(
                "ticks",
                TimestampMs(1_600),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(2)));
    }

    #[test]
    fn validation_errors() {
        let rt = StreamRuntime::new(0);
        rt.create_stream("s", schema()).unwrap();
        assert!(rt.create_stream("s", schema()).is_err());
        assert!(rt.push("ghost", TimestampMs(0), Record::empty()).is_err());
        assert!(rt.push("s", TimestampMs(0), Record::empty()).is_err()); // schema
        assert!(rt.drop_query("nope").is_err());
        assert!(rt.subscribe("nope", Arc::new(|_| {})).is_err());
        let p = compile_query("SELECT sym FROM s", &schema(), AggMode::Incremental).unwrap();
        assert!(rt.register_query("q", "ghost", p).is_err());
    }

    #[test]
    fn replayed_wal_prefix_is_deduplicated() {
        // Recovery regression: capture adapters re-deliver a WAL prefix
        // after a crash; without dedup the second delivery double-counts.
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        rt.enable_dedup(1024);
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();

        // Stable ids, as change_to_event mints from journal LSNs.
        let mk = |id: u64, ts: i64| {
            Event::new(
                EventId(id),
                "ticks",
                TimestampMs(ts),
                Record::from_iter([Value::from("A"), Value::Float(1.0)]),
                schema(),
            )
        };
        let prefix: Vec<Event> = (0..5).map(|i| mk(i, 100 + i as i64)).collect();
        for e in &prefix {
            rt.push_event(e).unwrap();
        }
        // Crash + recovery: the same prefix is delivered again.
        for e in &prefix {
            assert!(rt.push_event(e).unwrap().is_empty());
        }
        assert_eq!(rt.dup_dropped(), 5);
        let out = rt.flush("ticks", TimestampMs(10_000)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(0), Some(&Value::Int(5))); // not 10
    }

    #[test]
    fn history_replay_of_retracted_then_reinserted_event_is_not_dropped() {
        // Regression: a replay from the historical store re-presents
        // original event ids. An event that was retracted and then
        // re-observed used to be swallowed by the dedup window when the
        // replay feed went through push_event — its (stream, id, false)
        // key was already "seen". The replay path must bypass dedup.
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        rt.enable_dedup(1024);
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 10 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();

        let insert = Event::new(
            EventId(7),
            "ticks",
            TimestampMs(100),
            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
            schema(),
        );
        // Live history: insert, then retract.
        rt.push_event(&insert).unwrap();
        rt.push_event(&insert.to_retraction()).unwrap();

        // REPLAY re-feeds the same id. On the dedup'd path it would be
        // dropped as a duplicate; the replay path must deliver it.
        assert!(rt.push_event(&insert).unwrap().is_empty()); // demonstrates the trap
        assert_eq!(rt.dup_dropped(), 1);
        rt.push_event_replay(&insert).unwrap();
        assert_eq!(rt.dup_dropped(), 1); // replay neither consulted nor fed the window

        let out = rt.flush("ticks", TimestampMs(100_000)).unwrap();
        assert_eq!(out.len(), 1);
        // events_in excludes the dedup-dropped push but includes the
        // replayed delivery: insert + retraction + replayed insert.
        let (ins, _) = rt.stats();
        assert_eq!(ins, 3);
    }

    #[test]
    fn dedup_window_is_bounded_lru() {
        let mut w = DedupWindow::new(3);
        let s: Arc<str> = Arc::from("s");
        for i in 0..3u64 {
            assert!(!w.check_and_insert((Arc::clone(&s), i, false)));
        }
        assert_eq!(w.len(), 3);
        // Touch id 0 so it is most-recent, then overflow: id 1 evicts.
        assert!(w.check_and_insert((Arc::clone(&s), 0, false)));
        assert!(!w.check_and_insert((Arc::clone(&s), 3, false)));
        assert_eq!(w.len(), 3);
        assert!(!w.check_and_insert((Arc::clone(&s), 1, false))); // evicted → new again
        assert!(w.check_and_insert((Arc::clone(&s), 0, false))); // still present
        // A retraction of a seen id is NOT a duplicate.
        assert!(!w.check_and_insert((Arc::clone(&s), 0, true)));
    }

    #[test]
    fn delta_stats_aggregate_across_queries_and_survive_drop() {
        let rt = StreamRuntime::new(0);
        rt.create_stream("ticks", schema()).unwrap();
        let p = compile_query(
            "SELECT count() AS n FROM ticks [RANGE 1 s]",
            &schema(),
            AggMode::Incremental,
        )
        .unwrap();
        rt.register_query("q", "ticks", p).unwrap();
        assert_eq!(rt.query_consistency("q").unwrap(), ConsistencyLevel::Watermark);
        let tick = || Record::from_iter([Value::from("A"), Value::Float(1.0)]);
        rt.push("ticks", TimestampMs(100), tick()).unwrap();
        rt.push("ticks", TimestampMs(2_500), tick()).unwrap();
        // Late event behind the closed window boundary → dropped+counted.
        rt.push("ticks", TimestampMs(100), tick()).unwrap();
        assert_eq!(rt.cq_delta_stats().late_events, 1);
        // Counters survive dropping the query (monotonic totals).
        rt.drop_query("q").unwrap();
        assert_eq!(rt.cq_delta_stats().late_events, 1);
        assert!(rt.query_consistency("q").is_err());
    }

    #[test]
    fn concurrent_pushes_to_distinct_streams() {
        let rt = Arc::new(StreamRuntime::new(0));
        for s in ["a", "b", "c", "d"] {
            rt.create_stream(s, schema()).unwrap();
        }
        let handles: Vec<_> = ["a", "b", "c", "d"]
            .into_iter()
            .map(|s| {
                let rt = Arc::clone(&rt);
                std::thread::spawn(move || {
                    for i in 0..500i64 {
                        rt.push(
                            s,
                            TimestampMs(i),
                            Record::from_iter([Value::from("A"), Value::Float(1.0)]),
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (ins, _) = rt.stats();
        assert_eq!(ins, 2_000);
    }
}
