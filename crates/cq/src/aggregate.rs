//! Windowed group-by aggregation.
//!
//! Two execution modes implement the same semantics (property-tested for
//! equivalence) so the ablation bench (E5 / DESIGN.md D5) can compare
//! them:
//!
//! * [`AggMode::Incremental`] — events fold into per-**pane** partial
//!   accumulators as they arrive (a pane is the GCD slice of the window:
//!   the slide for sliding windows, the width for tumbling). Closing a
//!   window merges its panes' partials: O(panes) per close instead of
//!   O(events), and an event is touched exactly once however many sliding
//!   windows overlap it.
//! * [`AggMode::Recompute`] — raw rows are buffered per pane and every
//!   window close rescans them. Simple, memory-hungry, slow for long
//!   windows: the baseline.
//!
//! Count and session windows are inherently per-group/per-event and share
//! one implementation path (they have no panes).
//!
//! # Consistency levels (DESIGN.md D12)
//!
//! Time windows run at one of two [`ConsistencyLevel`]s:
//!
//! * **Watermark** (default) — a window is emitted only once the
//!   watermark passes its end, so every output row is final and the
//!   stream is retraction-free. Events whose every containing window is
//!   already final are dropped (`late_events`).
//! * **Speculative** — a window is emitted as soon as event time passes
//!   its end (assume in-order arrival, answer now). A late event landing
//!   inside an already-emitted, not-yet-final window *re-opens* it: the
//!   operator emits a retraction of the stale row followed by the
//!   corrected insert. Finality is still the watermark: once a window's
//!   end is ≤ the watermark its panes and emitted-row memory are pruned
//!   and older events are dropped. Per D9 every path is counted:
//!   `late_admitted`, `pane_reopens`, `retractions`, `late_events`.
//!
//! Count and session windows are defined by arrival order/gaps rather
//! than event-time boundaries, so the consistency level does not change
//! their behavior.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use evdb_expr::{typecheck, CompiledExpr, Expr};
use evdb_types::{
    DataType, Error, Event, EventId, FieldDef, Record, Result, Schema, TimestampMs, Value,
};

use crate::delta::ConsistencyLevel;
use crate::op::{key_of, OpStats, Operator};
use crate::window::WindowSpec;

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`count(*)` when no field, non-null count with a field).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum (any ordered type).
    Min,
    /// Maximum (any ordered type).
    Max,
    /// Sample standard deviation (Welford; mergeable).
    StdDev,
    /// Value of the earliest event in the window (by event time).
    First,
    /// Value of the latest event in the window.
    Last,
}

impl AggFunc {
    /// Parse a CQL function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "stddev" => AggFunc::StdDev,
            "first" => AggFunc::First,
            "last" => AggFunc::Last,
            _ => return None,
        })
    }

    /// Output type given the aggregated field's type.
    pub fn output_type(self, field_type: Option<DataType>) -> DataType {
        match self {
            AggFunc::Count => DataType::Int,
            AggFunc::Sum | AggFunc::Avg | AggFunc::StdDev => DataType::Float,
            AggFunc::Min | AggFunc::Max | AggFunc::First | AggFunc::Last => {
                field_type.unwrap_or(DataType::Float)
            }
        }
    }
}

/// One aggregate column.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input field name (`None` for `count(*)` or when `expr` is set).
    pub field: Option<String>,
    /// General argument expression (e.g. `sum(px * qty)`); bound and
    /// compiled to bytecode when the operator is built. Takes precedence
    /// over `field`.
    pub expr: Option<Expr>,
    /// Output column name.
    pub out_name: String,
}

/// Resolved argument source for one aggregate column.
enum AggInput {
    /// `count(*)`: no per-row value.
    Star,
    /// Plain field reference.
    Field(usize),
    /// Computed argument, compiled at operator build time.
    Computed(CompiledExpr),
}

/// Execution strategy (DESIGN.md D5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// Per-pane partial aggregation, merged at close.
    Incremental,
    /// Buffer raw rows, rescan at close.
    Recompute,
}

/// A mergeable accumulator.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum { sum: f64, n: u64 },
    Avg { sum: f64, n: u64 },
    MinMax { best: Option<Value>, is_min: bool },
    Std { n: u64, mean: f64, m2: f64 },
    Edge { best: Option<(TimestampMs, u64, Value)>, is_first: bool },
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum { sum: 0.0, n: 0 },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::MinMax { best: None, is_min: true },
            AggFunc::Max => Acc::MinMax { best: None, is_min: false },
            AggFunc::StdDev => Acc::Std { n: 0, mean: 0.0, m2: 0.0 },
            AggFunc::First => Acc::Edge { best: None, is_first: true },
            AggFunc::Last => Acc::Edge { best: None, is_first: false },
        }
    }

    /// Fold one row's value in. `v` is `None` for `count(*)`.
    /// `seq` disambiguates equal timestamps for First/Last (arrival order).
    fn update(&mut self, v: Option<&Value>, ts: TimestampMs, seq: u64) -> Result<()> {
        match self {
            Acc::Count(c) => {
                let counts = match v {
                    None => true,            // count(*)
                    Some(val) => !val.is_null(),
                };
                if counts {
                    *c += 1;
                }
            }
            Acc::Sum { sum, n } | Acc::Avg { sum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let x = val
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("sum/avg over {val}")))?;
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            Acc::MinMax { best, is_min } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                if *is_min {
                                    val < b
                                } else {
                                    val > b
                                }
                            }
                        };
                        if better {
                            *best = Some(val.clone());
                        }
                    }
                }
            }
            Acc::Std { n, mean, m2 } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let x = val
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("stddev over {val}")))?;
                        *n += 1;
                        let delta = x - *mean;
                        *mean += delta / *n as f64;
                        *m2 += delta * (x - *mean);
                    }
                }
            }
            Acc::Edge { best, is_first } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let better = match best {
                            None => true,
                            Some((bts, bseq, _)) => {
                                if *is_first {
                                    (ts, seq) < (*bts, *bseq)
                                } else {
                                    (ts, seq) > (*bts, *bseq)
                                }
                            }
                        };
                        if better {
                            *best = Some((ts, seq, val.clone()));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge another partial in (for pane combination).
    fn merge(&mut self, other: &Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::Sum { sum, n }, Acc::Sum { sum: s2, n: n2 })
            | (Acc::Avg { sum, n }, Acc::Avg { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (Acc::MinMax { best, is_min }, Acc::MinMax { best: b2, .. }) => {
                if let Some(v2) = b2 {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            if *is_min {
                                v2 < b
                            } else {
                                v2 > b
                            }
                        }
                    };
                    if better {
                        *best = Some(v2.clone());
                    }
                }
            }
            (Acc::Std { n, mean, m2 }, Acc::Std { n: n2, mean: mean2, m2: m22 }) => {
                // Chan et al. parallel variance combination.
                if *n2 > 0 {
                    if *n == 0 {
                        *n = *n2;
                        *mean = *mean2;
                        *m2 = *m22;
                    } else {
                        let delta = mean2 - *mean;
                        let tot = *n + *n2;
                        *m2 += m22 + delta * delta * (*n as f64) * (*n2 as f64) / tot as f64;
                        *mean += delta * (*n2 as f64) / tot as f64;
                        *n = tot;
                    }
                }
            }
            (Acc::Edge { best, is_first }, Acc::Edge { best: b2, .. }) => {
                if let Some((ts2, seq2, v2)) = b2 {
                    let better = match best {
                        None => true,
                        Some((bts, bseq, _)) => {
                            if *is_first {
                                (*ts2, *seq2) < (*bts, *bseq)
                            } else {
                                (*ts2, *seq2) > (*bts, *bseq)
                            }
                        }
                    };
                    if better {
                        *best = Some((*ts2, *seq2, v2.clone()));
                    }
                }
            }
            _ => unreachable!("merging mismatched accumulators"),
        }
    }

    fn finalize(&self) -> Value {
        match self {
            Acc::Count(c) => Value::Int(*c),
            Acc::Sum { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum)
                }
            }
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
            Acc::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
            Acc::Std { n, m2, .. } => {
                if *n < 2 {
                    Value::Null
                } else {
                    Value::Float((m2 / (*n - 1) as f64).sqrt())
                }
            }
            Acc::Edge { best, .. } => {
                best.as_ref().map(|(_, _, v)| v.clone()).unwrap_or(Value::Null)
            }
        }
    }
}

/// Raw row stored by Recompute mode: (group key, agg inputs, ts, seq).
type RawRow = (Vec<Value>, Vec<Option<Value>>, TimestampMs, u64);

/// Per-group session state.
struct SessionState {
    accs: Vec<Acc>,
    first_ts: TimestampMs,
    last_ts: TimestampMs,
}

/// The windowed aggregation operator.
pub struct WindowAggregateOp {
    window: WindowSpec,
    mode: AggMode,
    group_fields: Vec<usize>,
    /// (spec, resolved argument source).
    aggs: Vec<(AggSpec, AggInput)>,
    out_schema: Arc<Schema>,

    // Time-window state (keyed by pane start).
    panes: BTreeMap<i64, HashMap<Vec<Value>, Vec<Acc>>>,
    raw: BTreeMap<i64, Vec<RawRow>>,
    /// Windows starting before this are already emitted (late boundary).
    next_window_start: i64,
    started: bool,

    // Speculative state.
    consistency: ConsistencyLevel,
    /// Last emitted row per (window start, group) — kept until the window
    /// is final so a reopen knows what to retract.
    emitted: BTreeMap<i64, HashMap<Vec<Value>, Record>>,
    /// Highest event timestamp seen (speculative emission frontier).
    max_event_ts: i64,
    /// Highest watermark seen (finality horizon).
    final_wm: i64,

    // Count/session state.
    count_state: HashMap<Vec<Value>, SessionState>,
    counts: HashMap<Vec<Value>, usize>,

    seq: u64,
    emit_seq: u64,
    /// Late (dropped) events — observability.
    pub late_events: u64,
    /// Late events admitted into already-emitted windows (speculative).
    pub late_admitted: u64,
    /// Already-emitted windows re-opened by late events (speculative).
    pub pane_reopens: u64,
    /// Retraction rows emitted (speculative).
    pub retractions: u64,
    label: String,
}

impl WindowAggregateOp {
    /// Build the operator against an input schema.
    pub fn new(
        input: &Schema,
        window: WindowSpec,
        group_by: &[&str],
        aggs: Vec<AggSpec>,
        mode: AggMode,
    ) -> Result<WindowAggregateOp> {
        window
            .validate()
            .map_err(Error::Invalid)?;
        let mut group_fields = Vec::with_capacity(group_by.len());
        let mut out_fields = Vec::new();
        for g in group_by {
            let i = input
                .index_of(g)
                .ok_or_else(|| Error::Schema(format!("unknown group field '{g}'")))?;
            group_fields.push(i);
            out_fields.push(input.fields()[i].clone());
        }
        out_fields.push(FieldDef::required("window_start", DataType::Timestamp));
        out_fields.push(FieldDef::required("window_end", DataType::Timestamp));
        let mut agg_cols = Vec::with_capacity(aggs.len());
        for spec in aggs {
            let (arg, ft) = match (&spec.expr, &spec.field) {
                (Some(e), _) => {
                    // Computed argument: bind (type-checks against the
                    // input schema) and compile once, here.
                    let ft = typecheck::infer(e, input)?;
                    let bound = e.bind(input)?;
                    (AggInput::Computed(CompiledExpr::compile(&bound)), ft)
                }
                (None, Some(f)) => {
                    let i = input
                        .index_of(f)
                        .ok_or_else(|| Error::Schema(format!("unknown agg field '{f}'")))?;
                    (AggInput::Field(i), Some(input.fields()[i].dtype))
                }
                (None, None) => {
                    if spec.func != AggFunc::Count {
                        return Err(Error::Invalid(format!(
                            "{:?} requires an argument",
                            spec.func
                        )));
                    }
                    (AggInput::Star, None)
                }
            };
            out_fields.push(FieldDef::nullable(
                spec.out_name.clone(),
                spec.func.output_type(ft),
            ));
            agg_cols.push((spec, arg));
        }
        Ok(WindowAggregateOp {
            window,
            mode,
            group_fields,
            aggs: agg_cols,
            out_schema: Schema::new(out_fields)?,
            panes: BTreeMap::new(),
            raw: BTreeMap::new(),
            next_window_start: i64::MIN,
            started: false,
            consistency: ConsistencyLevel::default(),
            emitted: BTreeMap::new(),
            max_event_ts: i64::MIN,
            final_wm: i64::MIN,
            count_state: HashMap::new(),
            counts: HashMap::new(),
            seq: 0,
            emit_seq: 0,
            late_events: 0,
            late_admitted: 0,
            pane_reopens: 0,
            retractions: 0,
            label: "window_aggregate".to_string(),
        })
    }

    /// Set the consistency level (DESIGN.md D12). Defaults to
    /// [`ConsistencyLevel::Watermark`].
    pub fn with_consistency(mut self, level: ConsistencyLevel) -> WindowAggregateOp {
        self.consistency = level;
        self
    }

    /// The configured consistency level.
    pub fn consistency(&self) -> ConsistencyLevel {
        self.consistency
    }

    fn agg_inputs(&self, rec: &Record) -> Result<Vec<Option<Value>>> {
        self.aggs
            .iter()
            .map(|(_, arg)| match arg {
                AggInput::Star => Ok(None),
                AggInput::Field(i) => Ok(Some(rec.get(*i).cloned().unwrap_or(Value::Null))),
                AggInput::Computed(c) => c.eval(rec).map(Some),
            })
            .collect()
    }

    fn fresh_accs(&self) -> Vec<Acc> {
        self.aggs.iter().map(|(s, _)| Acc::new(s.func)).collect()
    }

    /// Width and slide of a time window (`None` for count/session).
    fn time_window_dims(&self) -> Option<(i64, i64)> {
        match self.window {
            WindowSpec::Tumbling { width_ms } => Some((width_ms, width_ms)),
            WindowSpec::Sliding { width_ms, slide_ms } => Some((width_ms, slide_ms)),
            _ => None,
        }
    }

    /// Assemble one output row.
    fn result_record(&self, group: &[Value], start: TimestampMs, end: TimestampMs, accs: &[Acc]) -> Record {
        let mut values: Vec<Value> = group.to_vec();
        values.push(Value::Timestamp(start));
        values.push(Value::Timestamp(end));
        for a in accs {
            values.push(a.finalize());
        }
        Record::new(values)
    }

    /// Emit one delta (insert or retraction) with a fresh output id.
    fn emit_record(&mut self, record: Record, end: TimestampMs, retraction: bool, out: &mut Vec<Event>) {
        self.emit_seq += 1;
        let mut e = Event::new(
            EventId(self.emit_seq),
            "window",
            end,
            record,
            Arc::clone(&self.out_schema),
        );
        e.retraction = retraction;
        if retraction {
            self.retractions += 1;
        }
        out.push(e);
    }

    fn emit(
        &mut self,
        group: &[Value],
        start: TimestampMs,
        end: TimestampMs,
        accs: &[Acc],
        out: &mut Vec<Event>,
    ) {
        let record = self.result_record(group, start, end, accs);
        self.emit_record(record, end, false, out);
    }

    /// All groups' accumulators for the window `[s, s + width)`.
    fn window_groups(&self, s: i64, width: i64) -> Result<HashMap<Vec<Value>, Vec<Acc>>> {
        match self.mode {
            AggMode::Incremental => {
                let mut merged: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
                for (_, groups) in self.panes.range(s..s + width) {
                    for (g, accs) in groups {
                        let entry = merged.entry(g.clone()).or_insert_with(|| self.fresh_accs());
                        for (m, a) in entry.iter_mut().zip(accs) {
                            m.merge(a);
                        }
                    }
                }
                Ok(merged)
            }
            AggMode::Recompute => {
                let mut computed: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
                for (_, rows) in self.raw.range(s..s + width) {
                    for (g, inputs, ts, seq) in rows {
                        let accs = computed.entry(g.clone()).or_insert_with(|| self.fresh_accs());
                        for (a, v) in accs.iter_mut().zip(inputs) {
                            a.update(v.as_ref(), *ts, *seq)?;
                        }
                    }
                }
                Ok(computed)
            }
        }
    }

    /// One group's accumulators for the window `[s, s + width)`.
    fn window_group_accs(&self, s: i64, width: i64, group: &[Value]) -> Result<Vec<Acc>> {
        let mut accs = self.fresh_accs();
        match self.mode {
            AggMode::Incremental => {
                for (_, groups) in self.panes.range(s..s + width) {
                    if let Some(part) = groups.get(group) {
                        for (m, a) in accs.iter_mut().zip(part) {
                            m.merge(a);
                        }
                    }
                }
            }
            AggMode::Recompute => {
                for (_, rows) in self.raw.range(s..s + width) {
                    for (g, inputs, ts, seq) in rows {
                        if g.as_slice() == group {
                            for (a, v) in accs.iter_mut().zip(inputs) {
                                a.update(v.as_ref(), *ts, *seq)?;
                            }
                        }
                    }
                }
            }
        }
        Ok(accs)
    }

    /// Emit every not-yet-emitted window ending at or before `frontier`,
    /// advancing `next_window_start`. Speculative mode records emitted
    /// rows (for later retraction); Watermark mode does not need to.
    fn emit_up_to(&mut self, frontier: i64, out: &mut Vec<Event>) -> Result<()> {
        let (width, slide) = match self.time_window_dims() {
            Some(dims) => dims,
            None => return Ok(()),
        };
        if !self.started {
            return Ok(());
        }
        // Candidate window starts s with s + width ≤ frontier,
        // s ≥ next_window_start, and at least one pane with data.
        let pane_keys: Vec<i64> = match self.mode {
            AggMode::Incremental => self.panes.keys().copied().collect(),
            AggMode::Recompute => self.raw.keys().copied().collect(),
        };
        let mut starts: Vec<i64> = Vec::new();
        for ps in pane_keys {
            // Windows containing pane ps start in (ps - width, ps].
            let mut s = ps;
            while s > ps - width {
                if s >= self.next_window_start && s + width <= frontier {
                    starts.push(s);
                }
                s -= slide;
            }
        }
        starts.sort_unstable();
        starts.dedup();

        let speculative = self.consistency == ConsistencyLevel::Speculative;
        for s in starts {
            let start = TimestampMs(s);
            let end = TimestampMs(s + width);
            let groups = self.window_groups(s, width)?;
            let mut keys: Vec<Vec<Value>> = groups.keys().cloned().collect();
            keys.sort();
            for g in keys {
                let record = self.result_record(&g, start, end, &groups[&g]);
                if speculative {
                    self.emitted.entry(s).or_default().insert(g, record.clone());
                }
                self.emit_record(record, end, false, out);
            }
            self.next_window_start = self.next_window_start.max(s + slide);
        }
        Ok(())
    }

    fn close_time_windows(&mut self, wm: TimestampMs, out: &mut Vec<Event>) -> Result<()> {
        let (width, _) = match self.time_window_dims() {
            Some(dims) => dims,
            None => return Ok(()),
        };
        match self.consistency {
            ConsistencyLevel::Watermark => {
                self.emit_up_to(wm.0, out)?;
                // Prune panes whose last containing window (starting at
                // the pane itself) has been emitted.
                let boundary = self.next_window_start;
                self.panes = self.panes.split_off(&boundary);
                self.raw = self.raw.split_off(&boundary);
            }
            ConsistencyLevel::Speculative => {
                self.final_wm = self.final_wm.max(wm.0);
                // Windows complete by event time were already emitted on
                // arrival; the watermark may still be ahead of event time
                // (e.g. an explicit flush), so cover both frontiers.
                self.emit_up_to(self.max_event_ts.max(wm.0), out)?;
                // Finality: a pane (and its emitted-row memory) can still
                // be revised only while some containing window is open,
                // i.e. while ps + width > final_wm.
                let boundary = self.final_wm - width + 1;
                self.panes = self.panes.split_off(&boundary);
                self.raw = self.raw.split_off(&boundary);
                self.emitted = self.emitted.split_off(&boundary);
            }
        }
        Ok(())
    }

    /// Speculative mode: after folding an event into pane `ps`, revise
    /// already-emitted windows the event belongs to (retract stale row,
    /// insert corrected row), then emit windows newly complete by event
    /// time.
    fn speculate(&mut self, ps: i64, group: &[Value], out: &mut Vec<Event>) -> Result<()> {
        let (width, slide) = self.time_window_dims().expect("time window");
        let mut reopened = false;
        // Windows containing pane ps start in (ps - width, ps]; those
        // before next_window_start are already emitted.
        let mut s = ps;
        while s > ps - width {
            if s < self.next_window_start && s + width > self.final_wm {
                reopened = true;
                self.pane_reopens += 1;
                let start = TimestampMs(s);
                let end = TimestampMs(s + width);
                let accs = self.window_group_accs(s, width, group)?;
                let record = self.result_record(group, start, end, &accs);
                let prev = self.emitted.entry(s).or_default().get(group).cloned();
                match prev {
                    Some(old) if old == record => {} // revision was a no-op
                    Some(old) => {
                        self.emitted
                            .get_mut(&s)
                            .expect("slot exists")
                            .insert(group.to_vec(), record.clone());
                        self.emit_record(old, end, true, out);
                        self.emit_record(record, end, false, out);
                    }
                    None => {
                        // A group this window never emitted: plain insert.
                        self.emitted
                            .get_mut(&s)
                            .expect("slot exists")
                            .insert(group.to_vec(), record.clone());
                        self.emit_record(record, end, false, out);
                    }
                }
            }
            s -= slide;
        }
        if reopened {
            self.late_admitted += 1;
        }
        // Emit windows the new event-time frontier completes.
        self.emit_up_to(self.max_event_ts, out)
    }
}

impl Operator for WindowAggregateOp {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        self.seq += 1;
        let seq = self.seq;
        let group = key_of(&event.payload, &self.group_fields);
        match self.window {
            WindowSpec::Tumbling { .. } | WindowSpec::Sliding { .. } => {
                let pane_ms = self.window.pane_ms().expect("time window has panes");
                let (width, _) = self.time_window_dims().expect("time window");
                let ps = event.timestamp.window_start(pane_ms).0;
                match self.consistency {
                    ConsistencyLevel::Watermark => {
                        // Emission is gated on the watermark, so the
                        // emitted boundary *is* the finality horizon.
                        if self.started && ps < self.next_window_start {
                            self.late_events += 1;
                            return Ok(());
                        }
                    }
                    ConsistencyLevel::Speculative => {
                        // Emission runs ahead of the watermark; only drop
                        // when every containing window is final (the
                        // latest one ends at ps + width).
                        if ps + width <= self.final_wm {
                            self.late_events += 1;
                            return Ok(());
                        }
                    }
                }
                self.started = true;
                let speculative = self.consistency == ConsistencyLevel::Speculative;
                let spec_group = if speculative { Some(group.clone()) } else { None };
                match self.mode {
                    AggMode::Incremental => {
                        let inputs = self.agg_inputs(&event.payload)?;
                        let fresh = self.fresh_accs();
                        let accs = self
                            .panes
                            .entry(ps)
                            .or_default()
                            .entry(group)
                            .or_insert(fresh);
                        for (a, v) in accs.iter_mut().zip(&inputs) {
                            a.update(v.as_ref(), event.timestamp, seq)?;
                        }
                    }
                    AggMode::Recompute => {
                        let inputs = self.agg_inputs(&event.payload)?;
                        self.raw
                            .entry(ps)
                            .or_default()
                            .push((group, inputs, event.timestamp, seq));
                    }
                }
                if let Some(g) = spec_group {
                    self.max_event_ts = self.max_event_ts.max(event.timestamp.0);
                    self.speculate(ps, &g, out)?;
                }
            }
            WindowSpec::CountTumbling { count } => {
                let inputs = self.agg_inputs(&event.payload)?;
                let fresh = self.fresh_accs();
                let st = self
                    .count_state
                    .entry(group.clone())
                    .or_insert_with(|| SessionState {
                        accs: fresh,
                        first_ts: event.timestamp,
                        last_ts: event.timestamp,
                    });
                for (a, v) in st.accs.iter_mut().zip(&inputs) {
                    a.update(v.as_ref(), event.timestamp, seq)?;
                }
                st.last_ts = st.last_ts.max(event.timestamp);
                let n = self.counts.entry(group.clone()).or_insert(0);
                *n += 1;
                if *n >= count {
                    let st = self.count_state.remove(&group).expect("state exists");
                    self.counts.remove(&group);
                    self.emit(&group, st.first_ts, st.last_ts, &st.accs, out);
                }
            }
            WindowSpec::Session { gap_ms } => {
                let inputs = self.agg_inputs(&event.payload)?;
                let fresh = self.fresh_accs();
                // Close the running session first if the gap has lapsed.
                if let Some(st) = self.count_state.get(&group) {
                    if event.timestamp.since(st.last_ts) > gap_ms {
                        let st = self.count_state.remove(&group).expect("state exists");
                        self.emit(&group, st.first_ts, st.last_ts.plus(gap_ms), &st.accs, out);
                    }
                }
                let st = self
                    .count_state
                    .entry(group.clone())
                    .or_insert_with(|| SessionState {
                        accs: fresh,
                        first_ts: event.timestamp,
                        last_ts: event.timestamp,
                    });
                for (a, v) in st.accs.iter_mut().zip(&inputs) {
                    a.update(v.as_ref(), event.timestamp, seq)?;
                }
                st.first_ts = st.first_ts.min(event.timestamp);
                st.last_ts = st.last_ts.max(event.timestamp);
            }
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, out: &mut Vec<Event>) -> Result<()> {
        match self.window {
            WindowSpec::Tumbling { .. } | WindowSpec::Sliding { .. } => {
                self.close_time_windows(wm, out)?;
            }
            WindowSpec::Session { gap_ms } => {
                let expired: Vec<Vec<Value>> = self
                    .count_state
                    .iter()
                    .filter(|(_, st)| wm.since(st.last_ts) > gap_ms)
                    .map(|(g, _)| g.clone())
                    .collect();
                let mut sorted = expired;
                sorted.sort();
                for g in sorted {
                    let st = self.count_state.remove(&g).expect("state exists");
                    self.emit(&g, st.first_ts, st.last_ts.plus(gap_ms), &st.accs, out);
                }
            }
            WindowSpec::CountTumbling { .. } => {} // time-independent
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn state_size(&self) -> usize {
        self.panes.values().map(|g| g.len()).sum::<usize>()
            + self.raw.values().map(|r| r.len()).sum::<usize>()
            + self.emitted.values().map(|g| g.len()).sum::<usize>()
            + self.count_state.len()
            + self.counts.len()
    }

    fn op_stats(&self) -> OpStats {
        OpStats {
            late_events: self.late_events,
            late_admitted: self.late_admitted,
            pane_reopens: self.pane_reopens,
            retractions: self.retractions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::of(&[("sym", DataType::Str), ("px", DataType::Float)])
    }

    fn ev(ts: i64, sym: &str, px: f64) -> Event {
        Event::new(
            EventId(ts as u64),
            "ticks",
            TimestampMs(ts),
            Record::from_iter([Value::from(sym), Value::Float(px)]),
            schema(),
        )
    }

    fn agg(name: &str, func: AggFunc, field: Option<&str>) -> AggSpec {
        AggSpec {
            func,
            field: field.map(String::from),
            expr: None,
            out_name: name.to_string(),
        }
    }

    fn run(mode: AggMode, window: WindowSpec, events: &[Event], wm: i64) -> Vec<Record> {
        let mut op = WindowAggregateOp::new(
            &schema(),
            window,
            &["sym"],
            vec![
                agg("n", AggFunc::Count, None),
                agg("total", AggFunc::Sum, Some("px")),
                agg("mean", AggFunc::Avg, Some("px")),
                agg("lo", AggFunc::Min, Some("px")),
                agg("hi", AggFunc::Max, Some("px")),
                agg("sd", AggFunc::StdDev, Some("px")),
                agg("fst", AggFunc::First, Some("px")),
                agg("lst", AggFunc::Last, Some("px")),
            ],
            mode,
        )
        .unwrap();
        let mut out = Vec::new();
        for e in events {
            op.on_event(e, &mut out).unwrap();
        }
        op.on_watermark(TimestampMs(wm), &mut out).unwrap();
        out.into_iter().map(|e| e.payload).collect()
    }

    #[test]
    fn tumbling_aggregates_both_modes_agree() {
        let events = vec![
            ev(100, "A", 10.0),
            ev(200, "A", 20.0),
            ev(300, "B", 5.0),
            ev(1_100, "A", 100.0),
        ];
        let w = WindowSpec::Tumbling { width_ms: 1000 };
        let inc = run(AggMode::Incremental, w, &events, 2_000);
        let rec = run(AggMode::Recompute, w, &events, 2_000);
        assert_eq!(inc, rec);
        assert_eq!(inc.len(), 3); // (A,w0), (B,w0), (A,w1000)
        // First row: A in window [0,1000): n=2 sum=30 mean=15 lo=10 hi=20
        let a0 = &inc[0];
        assert_eq!(a0.get(0), Some(&Value::from("A")));
        assert_eq!(a0.get(1), Some(&Value::Timestamp(TimestampMs(0))));
        assert_eq!(a0.get(2), Some(&Value::Timestamp(TimestampMs(1000))));
        assert_eq!(a0.get(3), Some(&Value::Int(2)));
        assert_eq!(a0.get(4), Some(&Value::Float(30.0)));
        assert_eq!(a0.get(5), Some(&Value::Float(15.0)));
        assert_eq!(a0.get(6), Some(&Value::Float(10.0)));
        assert_eq!(a0.get(7), Some(&Value::Float(20.0)));
        // sample stddev of {10,20} = sqrt(50) ≈ 7.0710678
        match a0.get(8) {
            Some(Value::Float(sd)) => assert!((sd - 50f64.sqrt()).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
        assert_eq!(a0.get(9), Some(&Value::Float(10.0))); // first
        assert_eq!(a0.get(10), Some(&Value::Float(20.0))); // last
    }

    #[test]
    fn sliding_windows_overlap() {
        let events = vec![ev(150, "A", 1.0), ev(250, "A", 2.0)];
        let w = WindowSpec::Sliding {
            width_ms: 200,
            slide_ms: 100,
        };
        let inc = run(AggMode::Incremental, w, &events, 1_000);
        let rec = run(AggMode::Recompute, w, &events, 1_000);
        assert_eq!(inc, rec);
        // Windows with data: [0,200):{150} [100,300):{150,250} [200,400):{250}
        assert_eq!(inc.len(), 3);
        assert_eq!(inc[0].get(3), Some(&Value::Int(1)));
        assert_eq!(inc[1].get(3), Some(&Value::Int(2)));
        assert_eq!(inc[2].get(3), Some(&Value::Int(1)));
    }

    #[test]
    fn watermark_only_closes_complete_windows() {
        let events = vec![ev(100, "A", 1.0), ev(1_100, "A", 2.0)];
        let w = WindowSpec::Tumbling { width_ms: 1000 };
        let out = run(AggMode::Incremental, w, &events, 1_000);
        assert_eq!(out.len(), 1); // only [0,1000) closed
        let out = run(AggMode::Incremental, w, &events, 1_999);
        assert_eq!(out.len(), 1); // [1000,2000) not yet complete
        let out = run(AggMode::Incremental, w, &events, 2_000);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn late_events_are_dropped_and_counted() {
        let mut op = WindowAggregateOp::new(
            &schema(),
            WindowSpec::Tumbling { width_ms: 1000 },
            &[],
            vec![agg("n", AggFunc::Count, None)],
            AggMode::Incremental,
        )
        .unwrap();
        let mut out = Vec::new();
        op.on_event(&ev(100, "A", 1.0), &mut out).unwrap();
        op.on_watermark(TimestampMs(1_000), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        op.on_event(&ev(900, "A", 1.0), &mut out).unwrap(); // late
        assert_eq!(op.late_events, 1);
        op.on_watermark(TimestampMs(2_000), &mut out).unwrap();
        assert_eq!(out.len(), 1); // nothing new emitted
    }

    #[test]
    fn count_windows_close_on_nth_event() {
        let mut op = WindowAggregateOp::new(
            &schema(),
            WindowSpec::CountTumbling { count: 2 },
            &["sym"],
            vec![agg("total", AggFunc::Sum, Some("px"))],
            AggMode::Incremental,
        )
        .unwrap();
        let mut out = Vec::new();
        op.on_event(&ev(1, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(2, "B", 10.0), &mut out).unwrap();
        assert!(out.is_empty());
        op.on_event(&ev(3, "A", 2.0), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(3), Some(&Value::Float(3.0)));
        op.on_event(&ev(4, "B", 20.0), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].payload.get(3), Some(&Value::Float(30.0)));
    }

    #[test]
    fn session_windows_close_on_gap() {
        let mut op = WindowAggregateOp::new(
            &schema(),
            WindowSpec::Session { gap_ms: 100 },
            &["sym"],
            vec![agg("n", AggFunc::Count, None)],
            AggMode::Incremental,
        )
        .unwrap();
        let mut out = Vec::new();
        op.on_event(&ev(0, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(50, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(120, "A", 1.0), &mut out).unwrap(); // within gap of 50
        assert!(out.is_empty());
        op.on_event(&ev(500, "A", 1.0), &mut out).unwrap(); // gap lapsed
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(3), Some(&Value::Int(3)));
        // Watermark closes the trailing session.
        op.on_watermark(TimestampMs(1_000), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].payload.get(3), Some(&Value::Int(1)));
    }

    #[test]
    fn empty_group_by_aggregates_globally() {
        let mut op = WindowAggregateOp::new(
            &schema(),
            WindowSpec::Tumbling { width_ms: 1000 },
            &[],
            vec![agg("n", AggFunc::Count, None)],
            AggMode::Incremental,
        )
        .unwrap();
        let mut out = Vec::new();
        op.on_event(&ev(1, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(2, "B", 1.0), &mut out).unwrap();
        op.on_watermark(TimestampMs(1_000), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(2), Some(&Value::Int(2)));
    }

    /// Speculative op used by the retraction tests: global count + sum.
    fn spec_op(mode: AggMode, window: WindowSpec) -> WindowAggregateOp {
        WindowAggregateOp::new(
            &schema(),
            window,
            &["sym"],
            vec![
                agg("n", AggFunc::Count, None),
                agg("total", AggFunc::Sum, Some("px")),
            ],
            mode,
        )
        .unwrap()
        .with_consistency(ConsistencyLevel::Speculative)
    }

    #[test]
    fn speculative_emits_on_event_time_and_retracts_on_late_data() {
        for mode in [AggMode::Incremental, AggMode::Recompute] {
            let mut op = spec_op(mode, WindowSpec::Tumbling { width_ms: 1000 });
            let mut out = Vec::new();
            op.on_event(&ev(100, "A", 10.0), &mut out).unwrap();
            assert!(out.is_empty(), "window not complete yet");
            // Event time passes the window end → speculative emission.
            op.on_event(&ev(1_100, "A", 2.0), &mut out).unwrap();
            assert_eq!(out.len(), 1);
            assert!(!out[0].is_retraction());
            assert_eq!(out[0].payload.get(3), Some(&Value::Int(1)));
            // Late event inside the emitted (non-final) window: the op
            // retracts the stale row and emits the corrected one.
            op.on_event(&ev(900, "A", 5.0), &mut out).unwrap();
            assert_eq!(out.len(), 3);
            assert!(out[1].is_retraction());
            assert_eq!(out[1].payload, out[0].payload); // cancels the insert
            assert!(!out[2].is_retraction());
            assert_eq!(out[2].payload.get(3), Some(&Value::Int(2)));
            assert_eq!(out[2].payload.get(4), Some(&Value::Float(15.0)));
            assert_eq!(op.late_admitted, 1);
            assert_eq!(op.pane_reopens, 1);
            assert_eq!(op.retractions, 1);
            assert_eq!(op.late_events, 0);
        }
    }

    #[test]
    fn speculative_admission_is_bounded_by_watermark_not_emission() {
        // Satellite regression: an event older than the emitted boundary
        // but newer than the finality horizon must be admitted; one
        // beyond the horizon must be dropped — with exact accounting.
        let mut op = spec_op(AggMode::Incremental, WindowSpec::Tumbling { width_ms: 1000 });
        let mut out = Vec::new();
        op.on_event(&ev(100, "A", 10.0), &mut out).unwrap();
        op.on_event(&ev(1_100, "A", 2.0), &mut out).unwrap(); // emits [0,1000)
        assert_eq!(out.len(), 1);
        // Emitted boundary is 1000, watermark still −∞: pre-boundary
        // events are *admitted* (the old code dropped them).
        op.on_event(&ev(900, "A", 5.0), &mut out).unwrap();
        assert_eq!((op.late_admitted, op.late_events), (1, 0));
        // Finalize [0,1000) and [1000,2000).
        op.on_watermark(TimestampMs(2_000), &mut out).unwrap();
        // Beyond the finality horizon: dropped and counted.
        let before = out.len();
        op.on_event(&ev(500, "A", 1.0), &mut out).unwrap();
        assert_eq!(out.len(), before);
        assert_eq!((op.late_admitted, op.late_events), (1, 1));
        // D9 accounting: inserts == live rows + retractions.
        let inserts = out.iter().filter(|e| !e.is_retraction()).count() as u64;
        let retracts = out.iter().filter(|e| e.is_retraction()).count() as u64;
        assert_eq!(retracts, op.retractions);
        assert_eq!(inserts, 3); // [0,1000) twice (v1, corrected v2) + [1000,2000)
        assert_eq!(inserts - retracts, 2); // two final rows
    }

    #[test]
    fn speculative_noop_revision_emits_nothing() {
        // A late event that doesn't change the emitted row (min
        // unaffected) reopens the pane but emits no delta.
        let mut op = WindowAggregateOp::new(
            &schema(),
            WindowSpec::Tumbling { width_ms: 1000 },
            &[],
            vec![agg("lo", AggFunc::Min, Some("px"))],
            AggMode::Incremental,
        )
        .unwrap()
        .with_consistency(ConsistencyLevel::Speculative);
        let mut out = Vec::new();
        op.on_event(&ev(100, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(1_100, "A", 9.0), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        op.on_event(&ev(900, "A", 7.0), &mut out).unwrap(); // min stays 1.0
        assert_eq!(out.len(), 1);
        assert_eq!(op.pane_reopens, 1);
        assert_eq!(op.retractions, 0);
        assert_eq!(op.late_admitted, 1);
    }

    #[test]
    fn speculative_sliding_revises_every_containing_window() {
        let mut op = spec_op(
            AggMode::Incremental,
            WindowSpec::Sliding { width_ms: 200, slide_ms: 100 },
        );
        let mut out = Vec::new();
        op.on_event(&ev(150, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(450, "A", 2.0), &mut out).unwrap();
        // Emitted: [0,200) and [100,300) (contain 150); [200,400) has no data.
        let emitted: Vec<i64> = out
            .iter()
            .map(|e| match e.payload.get(1) {
                Some(Value::Timestamp(t)) => t.0,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(emitted, vec![0, 100]);
        // Late event at 170 lands in both emitted windows → both revised.
        op.on_event(&ev(170, "A", 10.0), &mut out).unwrap();
        assert_eq!(op.pane_reopens, 2);
        assert_eq!(op.retractions, 2);
        assert_eq!(op.late_admitted, 1);
        let retract_starts: Vec<i64> = out
            .iter()
            .filter(|e| e.is_retraction())
            .map(|e| match e.payload.get(1) {
                Some(Value::Timestamp(t)) => t.0,
                other => panic!("{other:?}"),
            })
            .collect();
        // speculate() walks containing windows newest-first.
        assert_eq!(retract_starts, vec![100, 0]);
    }

    #[test]
    fn speculative_late_event_into_unemitted_group_inserts_without_retraction() {
        let mut op = spec_op(AggMode::Incremental, WindowSpec::Tumbling { width_ms: 1000 });
        let mut out = Vec::new();
        op.on_event(&ev(100, "A", 1.0), &mut out).unwrap();
        op.on_event(&ev(1_100, "A", 2.0), &mut out).unwrap(); // [0,1000): only A
        assert_eq!(out.len(), 1);
        // Late event for a group the window never emitted: plain insert.
        op.on_event(&ev(800, "B", 3.0), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(!out[1].is_retraction());
        assert_eq!(out[1].payload.get(0), Some(&Value::from("B")));
        assert_eq!(op.retractions, 0);
        assert_eq!(op.pane_reopens, 1);
    }

    #[test]
    fn watermark_mode_emits_zero_retractions() {
        let events = [
            ev(100, "A", 10.0),
            ev(1_100, "A", 2.0),
            ev(900, "A", 5.0), // late: dropped at Watermark level
        ];
        let w = WindowSpec::Tumbling { width_ms: 1000 };
        let mut op = WindowAggregateOp::new(
            &schema(),
            w,
            &["sym"],
            vec![agg("n", AggFunc::Count, None)],
            AggMode::Incremental,
        )
        .unwrap();
        let mut out = Vec::new();
        op.on_event(&events[0], &mut out).unwrap();
        op.on_watermark(TimestampMs(1_000), &mut out).unwrap();
        for e in &events[1..] {
            op.on_event(e, &mut out).unwrap();
        }
        op.on_watermark(TimestampMs(3_000), &mut out).unwrap();
        assert!(out.iter().all(|e| !e.is_retraction()));
        assert_eq!(op.retractions, 0);
        assert_eq!(op.op_stats().late_events, 1);
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(WindowAggregateOp::new(
            &schema(),
            WindowSpec::Tumbling { width_ms: 0 },
            &[],
            vec![],
            AggMode::Incremental
        )
        .is_err());
        assert!(WindowAggregateOp::new(
            &schema(),
            WindowSpec::Tumbling { width_ms: 10 },
            &["ghost"],
            vec![],
            AggMode::Incremental
        )
        .is_err());
        assert!(WindowAggregateOp::new(
            &schema(),
            WindowSpec::Tumbling { width_ms: 10 },
            &[],
            vec![agg("s", AggFunc::Sum, None)], // sum needs a field
            AggMode::Incremental
        )
        .is_err());
    }
}
