//! CEP pattern matching: SEQ patterns compiled to an NFA.
//!
//! A [`Pattern`] is an ordered list of [`Step`]s over one event schema,
//! with a `WITHIN` time bound. Steps may be:
//!
//! * plain — match exactly one event satisfying the predicate,
//! * `optional` — may be skipped,
//! * `kleene` — match one or more events (greedy),
//! * `negated` — a guard: no event satisfying the predicate may occur
//!   between the neighbouring matched steps; a guard hit kills the
//!   partial match.
//!
//! Three **skip strategies** control what happens to a partial match when
//! an event fails to advance it ([`SkipStrategy`]):
//! `StrictContiguity` kills it, `SkipTillNext` ignores the event,
//! `SkipTillAny` additionally *branches* when an event could either be
//! consumed or skipped — enumerating every matching subsequence (bounded
//! by `max_runs`).
//!
//! [`NaiveMatcher`] is the E6 baseline: it buffers the window and
//! enumerates subsequences by nested scanning — semantically equal to
//! `SkipTillAny` for plain SEQ patterns (property-tested), and
//! super-linearly slower.

use std::sync::Arc;

use evdb_expr::{CompiledExpr, Expr};
use evdb_types::{
    DataType, Error, Event, EventId, FieldDef, Record, Result, Schema, TimestampMs, Value,
};

use crate::op::Operator;

/// One step of a pattern.
#[derive(Debug, Clone)]
pub struct Step {
    /// Step name; prefixes the step's columns in match output.
    pub name: String,
    /// Predicate over the input schema.
    pub predicate: Expr,
    /// May be skipped entirely.
    pub optional: bool,
    /// Matches one or more events (greedy).
    pub kleene: bool,
    /// Guard: events matching this predicate kill partial matches
    /// currently between the neighbouring steps.
    pub negated: bool,
}

impl Step {
    /// A plain step.
    pub fn new(name: impl Into<String>, predicate: Expr) -> Step {
        Step {
            name: name.into(),
            predicate,
            optional: false,
            kleene: false,
            negated: false,
        }
    }

    /// Make the step optional.
    pub fn optional(mut self) -> Step {
        self.optional = true;
        self
    }

    /// Make the step Kleene-plus.
    pub fn one_or_more(mut self) -> Step {
        self.kleene = true;
        self
    }

    /// Make the step a negation guard.
    pub fn negation(mut self) -> Step {
        self.negated = true;
        self
    }
}

/// A SEQ pattern with a WITHIN bound.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// The ordered steps.
    pub steps: Vec<Step>,
    /// Max distance (ms, event time) between the first and last matched
    /// event.
    pub within_ms: i64,
}

impl Pattern {
    /// Build a pattern; validates step structure.
    pub fn new(steps: Vec<Step>, within_ms: i64) -> Result<Pattern> {
        if steps.is_empty() {
            return Err(Error::Invalid("pattern needs at least one step".into()));
        }
        if within_ms <= 0 {
            return Err(Error::Invalid("WITHIN must be positive".into()));
        }
        if steps.iter().all(|s| s.negated || s.optional) {
            return Err(Error::Invalid(
                "pattern needs at least one mandatory positive step".into(),
            ));
        }
        for s in &steps {
            if s.negated && (s.optional || s.kleene) {
                return Err(Error::Invalid(format!(
                    "step '{}': negation cannot combine with optional/kleene",
                    s.name
                )));
            }
        }
        if steps.first().map(|s| s.negated).unwrap_or(false) {
            return Err(Error::Invalid(
                "pattern cannot start with a negation".into(),
            ));
        }
        Ok(Pattern { steps, within_ms })
    }
}

/// Skip strategy (match selection policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipStrategy {
    /// Every event must advance a partial match or it dies.
    StrictContiguity,
    /// Irrelevant events are ignored; each step consumes the first event
    /// that matches it.
    SkipTillNext,
    /// Like SkipTillNext, but also branch on every consumable event —
    /// enumerates all matching subsequences.
    SkipTillAny,
}

#[derive(Debug, Clone)]
struct Binding {
    step: usize,
    last: Record,
    count: u32,
    last_ts: TimestampMs,
}

#[derive(Debug, Clone)]
struct Run {
    /// Index of the next unmatched (non-guard) step to try.
    pos: usize,
    /// True when the previously matched step was kleene and may absorb
    /// more events.
    kleene_open: bool,
    started_at: TimestampMs,
    bindings: Vec<Binding>,
}

/// The NFA pattern matcher. Also usable as a pipeline [`Operator`].
pub struct PatternMatcher {
    steps: Vec<CompiledStep>,
    within_ms: i64,
    strategy: SkipStrategy,
    runs: Vec<Run>,
    input_width: usize,
    out_schema: Arc<Schema>,
    emit_seq: u64,
    /// Runs dropped because `max_runs` was hit (observability).
    pub overflow_drops: u64,
    /// Cap on simultaneous partial matches.
    pub max_runs: usize,
    label: String,
}

struct CompiledStep {
    meta: Step,
    /// Step guard, compiled to bytecode at pattern-compile time.
    pred: CompiledExpr,
}

impl PatternMatcher {
    /// Compile a pattern against the input schema.
    pub fn new(
        pattern: Pattern,
        input: &Arc<Schema>,
        strategy: SkipStrategy,
    ) -> Result<PatternMatcher> {
        let mut steps = Vec::with_capacity(pattern.steps.len());
        for s in &pattern.steps {
            steps.push(CompiledStep {
                pred: CompiledExpr::compile(&s.predicate.bind_predicate(input)?),
                meta: s.clone(),
            });
        }
        // Output schema: start/end timestamps, then per positive step the
        // input fields prefixed with the step name (last matched event),
        // plus a count column for kleene steps.
        let mut fields = vec![
            FieldDef::required("start_ts", DataType::Timestamp),
            FieldDef::required("end_ts", DataType::Timestamp),
        ];
        for s in &pattern.steps {
            if s.negated {
                continue;
            }
            for f in input.fields() {
                fields.push(FieldDef::nullable(
                    format!("{}_{}", s.name, f.name),
                    f.dtype,
                ));
            }
            if s.kleene {
                fields.push(FieldDef::required(
                    format!("{}_count", s.name),
                    DataType::Int,
                ));
            }
        }
        Ok(PatternMatcher {
            steps,
            within_ms: pattern.within_ms,
            strategy,
            runs: Vec::new(),
            input_width: input.len(),
            out_schema: Schema::new(fields)?,
            emit_seq: 0,
            overflow_drops: 0,
            max_runs: 10_000,
            label: "pattern".to_string(),
        })
    }

    /// Live partial matches (observability / leak tests).
    pub fn active_runs(&self) -> usize {
        self.runs.len()
    }

    /// Feed one event; returns completed matches.
    pub fn push(&mut self, event: &Event) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        self.on_event(event, &mut out)?;
        Ok(out)
    }

    /// Steps reachable from `pos` (skipping optionals), with the guard
    /// steps crossed to reach each.
    fn reachable(&self, pos: usize) -> Vec<(usize, Vec<usize>)> {
        let mut out = Vec::new();
        let mut guards = Vec::new();
        let mut j = pos;
        while j < self.steps.len() {
            let s = &self.steps[j].meta;
            if s.negated {
                guards.push(j);
                j += 1;
                continue;
            }
            out.push((j, guards.clone()));
            if s.optional {
                j += 1;
            } else {
                break;
            }
        }
        out
    }

    /// Active guards for a waiting run: negation steps crossed before any
    /// reachable positive step.
    fn active_guards(&self, pos: usize) -> Vec<usize> {
        let mut guards = Vec::new();
        let mut j = pos;
        while j < self.steps.len() {
            let s = &self.steps[j].meta;
            if s.negated {
                guards.push(j);
                j += 1;
            } else if s.optional {
                j += 1;
            } else {
                break;
            }
        }
        guards
    }

    fn emit_match(&mut self, run: &Run, end_ts: TimestampMs, out: &mut Vec<Event>) {
        let mut values = vec![
            Value::Timestamp(run.started_at),
            Value::Timestamp(end_ts),
        ];
        for (i, cs) in self.steps.iter().enumerate() {
            if cs.meta.negated {
                continue;
            }
            match run.bindings.iter().find(|b| b.step == i) {
                Some(b) => {
                    for v in b.last.values() {
                        values.push(v.clone());
                    }
                    if cs.meta.kleene {
                        values.push(Value::Int(b.count as i64));
                    }
                }
                None => {
                    // Skipped optional step → NULL columns.
                    for _ in 0..self.input_width {
                        values.push(Value::Null);
                    }
                    if cs.meta.kleene {
                        values.push(Value::Int(0));
                    }
                }
            }
        }
        self.emit_seq += 1;
        out.push(Event::new(
            EventId(self.emit_seq),
            "pattern",
            end_ts,
            Record::new(values),
            Arc::clone(&self.out_schema),
        ));
    }
}

impl Operator for PatternMatcher {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let ts = event.timestamp;
        // Expire runs beyond the WITHIN horizon.
        let within = self.within_ms;
        self.runs.retain(|r| ts.since(r.started_at) <= within);

        // Seed a fresh run so the event can start a new match.
        let mut next_runs: Vec<Run> = Vec::with_capacity(self.runs.len() + 1);
        let mut candidates: Vec<Run> = std::mem::take(&mut self.runs);
        candidates.push(Run {
            pos: 0,
            kleene_open: false,
            started_at: ts,
            bindings: Vec::new(),
        });

        let mut completed: Vec<Run> = Vec::new();
        for run in candidates {
            let is_seed = run.bindings.is_empty();
            // 1. Guard check (only meaningful for in-flight runs).
            if !is_seed {
                let guards = self.active_guards(run.pos);
                let mut killed = false;
                for g in guards {
                    if self.steps[g].pred.matches(&event.payload)? {
                        killed = true;
                        break;
                    }
                }
                if killed {
                    continue; // run dies
                }
            }

            // 2. Kleene continuation: previous step may absorb the event.
            let mut consumed_by_kleene = false;
            if run.kleene_open {
                let prev = run.pos - 1;
                if self.steps[prev].pred.matches(&event.payload)? {
                    consumed_by_kleene = true;
                    let mut extended = run.clone();
                    let b = extended
                        .bindings
                        .iter_mut()
                        .rev()
                        .find(|b| b.step == prev)
                        .expect("kleene binding exists");
                    b.last = event.payload.clone();
                    b.last_ts = ts;
                    b.count += 1;
                    next_runs.push(extended);
                    // With SkipTillAny, also branch: a run that does NOT
                    // absorb this event survives below.
                }
            }

            // 3. Try to advance to a reachable step.
            let mut advanced = false;
            for (idx, _) in self.reachable(run.pos) {
                if self.steps[idx].pred.matches(&event.payload)? {
                    advanced = true;
                    let mut adv = run.clone();
                    adv.bindings.push(Binding {
                        step: idx,
                        last: event.payload.clone(),
                        count: 1,
                        last_ts: ts,
                    });
                    adv.pos = idx + 1;
                    adv.kleene_open = self.steps[idx].meta.kleene;
                    if is_seed {
                        adv.started_at = ts;
                    }
                    // Completed? (No mandatory positive steps remain.)
                    let rest_all_skippable = (adv.pos..self.steps.len()).all(|j| {
                        self.steps[j].meta.negated || self.steps[j].meta.optional
                    }) && !adv.kleene_open;
                    let could_complete = (adv.pos..self.steps.len())
                        .all(|j| self.steps[j].meta.negated || self.steps[j].meta.optional);
                    if rest_all_skippable {
                        completed.push(adv);
                    } else if could_complete && adv.kleene_open {
                        // A kleene step at the end: the run is complete
                        // but may also keep absorbing. Emit now AND keep
                        // the run only under SkipTillAny (all matches);
                        // under SkipTillNext keep absorbing greedily and
                        // emit only when the run dies? Simplest sound
                        // choice: emit the minimal match, and keep the
                        // run open for extension under SkipTillAny.
                        completed.push(adv.clone());
                        if self.strategy == SkipStrategy::SkipTillAny {
                            next_runs.push(adv);
                        }
                    } else {
                        next_runs.push(adv);
                    }
                    break; // advance to the first matching reachable step
                }
            }

            // 4. Decide whether the un-advanced original survives.
            let survives = if is_seed {
                false // seeds only live if they matched
            } else {
                match self.strategy {
                    // Strict: the event either extended/advanced this run
                    // (the successor was pushed) or the run dies.
                    SkipStrategy::StrictContiguity => false,
                    SkipStrategy::SkipTillNext => !advanced && !consumed_by_kleene,
                    SkipStrategy::SkipTillAny => true,
                }
            };
            if survives {
                next_runs.push(run);
            }
        }

        // Emit matches in a deterministic order (by start then bindings).
        for run in &completed {
            let end_ts = run
                .bindings
                .iter()
                .map(|b| b.last_ts)
                .max()
                .unwrap_or(ts);
            self.emit_match(run, end_ts, out);
        }

        if next_runs.len() > self.max_runs {
            self.overflow_drops += (next_runs.len() - self.max_runs) as u64;
            next_runs.truncate(self.max_runs);
        }
        self.runs = next_runs;
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, _out: &mut Vec<Event>) -> Result<()> {
        let within = self.within_ms;
        self.runs.retain(|r| wm.since(r.started_at) <= within);
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn state_size(&self) -> usize {
        self.runs.len()
    }
}

/// E6 baseline: enumerate subsequences by nested scanning over a buffer.
/// Supports plain SEQ patterns (no optional/kleene/negation) with
/// `SkipTillAny` semantics.
pub struct NaiveMatcher {
    preds: Vec<CompiledExpr>,
    within_ms: i64,
    buffer: Vec<(TimestampMs, Record)>,
}

impl NaiveMatcher {
    /// Compile the baseline matcher.
    pub fn new(pattern: &Pattern, input: &Arc<Schema>) -> Result<NaiveMatcher> {
        if pattern
            .steps
            .iter()
            .any(|s| s.optional || s.kleene || s.negated)
        {
            return Err(Error::Invalid(
                "naive matcher supports plain SEQ patterns only".into(),
            ));
        }
        Ok(NaiveMatcher {
            preds: pattern
                .steps
                .iter()
                .map(|s| Ok(CompiledExpr::compile(&s.predicate.bind_predicate(input)?)))
                .collect::<Result<_>>()?,
            within_ms: pattern.within_ms,
            buffer: Vec::new(),
        })
    }

    /// Feed one event; returns the number of completed matches ending at
    /// this event (the count is what E6 compares — materializing records
    /// would only slow the baseline further).
    pub fn push(&mut self, event: &Event) -> Result<u64> {
        let ts = event.timestamp;
        let horizon = ts.minus(self.within_ms);
        self.buffer.retain(|(t, _)| *t >= horizon);
        self.buffer.push((ts, event.payload.clone()));

        // The new event can only complete matches as the LAST step.
        let k = self.preds.len();
        if !self.preds[k - 1].matches(&event.payload)? {
            return Ok(0);
        }
        // Count subsequences for steps 0..k-1 ending strictly before the
        // last buffer element, with dynamic counting (still O(n·k) per
        // event — the quadratic blowup is over the window, which is the
        // point of the baseline).
        let n = self.buffer.len();
        // ways[j] = number of ways to match steps 0..=j using events seen
        // so far (prefix), constrained to the within window from each
        // start — approximated by the buffer horizon (events outside the
        // window were dropped above).
        let mut ways = vec![0u64; k];
        for i in 0..n - 1 {
            let rec = &self.buffer[i].1;
            for j in (0..k - 1).rev() {
                if self.preds[j].matches(rec)? {
                    let add = if j == 0 { 1 } else { ways[j - 1] };
                    ways[j] += add;
                }
            }
        }
        Ok(if k == 1 { 1 } else { ways[k - 2] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;

    fn schema() -> Arc<Schema> {
        Schema::of(&[("kind", DataType::Str), ("v", DataType::Float)])
    }

    fn ev(ts: i64, kind: &str, v: f64) -> Event {
        Event::new(
            EventId(ts as u64),
            "s",
            TimestampMs(ts),
            Record::from_iter([Value::from(kind), Value::Float(v)]),
            schema(),
        )
    }

    fn seq_abc(within: i64) -> Pattern {
        Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("b", parse("kind = 'B'").unwrap()),
                Step::new("c", parse("kind = 'C'").unwrap()),
            ],
            within,
        )
        .unwrap()
    }

    #[test]
    fn basic_seq_skip_till_next() {
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        assert!(m.push(&ev(1, "A", 1.0)).unwrap().is_empty());
        assert!(m.push(&ev(2, "X", 0.0)).unwrap().is_empty()); // ignored
        assert!(m.push(&ev(3, "B", 2.0)).unwrap().is_empty());
        let matches = m.push(&ev(4, "C", 3.0)).unwrap();
        assert_eq!(matches.len(), 1);
        let p = &matches[0].payload;
        assert_eq!(p.get(0), Some(&Value::Timestamp(TimestampMs(1))));
        assert_eq!(p.get(1), Some(&Value::Timestamp(TimestampMs(4))));
        // a_kind, a_v, b_kind, b_v, c_kind, c_v
        assert_eq!(p.get(2), Some(&Value::from("A")));
        assert_eq!(p.get(5), Some(&Value::Float(2.0)));
        assert_eq!(p.get(6), Some(&Value::from("C")));
    }

    #[test]
    fn strict_contiguity_requires_adjacency() {
        let mut m = PatternMatcher::new(
            seq_abc(1_000),
            &schema(),
            SkipStrategy::StrictContiguity,
        )
        .unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "X", 0.0)).unwrap(); // kills the run
        m.push(&ev(3, "B", 2.0)).unwrap();
        assert!(m.push(&ev(4, "C", 3.0)).unwrap().is_empty());

        let mut m = PatternMatcher::new(
            seq_abc(1_000),
            &schema(),
            SkipStrategy::StrictContiguity,
        )
        .unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 2.0)).unwrap();
        assert_eq!(m.push(&ev(3, "C", 3.0)).unwrap().len(), 1);
    }

    #[test]
    fn skip_till_any_enumerates_subsequences() {
        // Both strategies start one run per candidate first event; they
        // differ on *mid-pattern* choices. With A B B C, the B step can
        // bind to either B under SkipTillAny (2 matches) but only to the
        // first B under SkipTillNext (1 match).
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillAny).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 1.0)).unwrap();
        m.push(&ev(3, "B", 2.0)).unwrap();
        let matches = m.push(&ev(4, "C", 4.0)).unwrap();
        assert_eq!(matches.len(), 2);

        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 1.0)).unwrap();
        m.push(&ev(3, "B", 2.0)).unwrap();
        assert_eq!(m.push(&ev(4, "C", 4.0)).unwrap().len(), 1);

        // Two candidate first events start two runs under either strategy.
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "A", 2.0)).unwrap();
        m.push(&ev(3, "B", 3.0)).unwrap();
        assert_eq!(m.push(&ev(4, "C", 4.0)).unwrap().len(), 2);
    }

    #[test]
    fn within_bound_expires_runs() {
        let mut m =
            PatternMatcher::new(seq_abc(100), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(50, "B", 2.0)).unwrap();
        assert!(m.push(&ev(200, "C", 3.0)).unwrap().is_empty()); // expired
        assert_eq!(m.active_runs(), 0);
    }

    #[test]
    fn negation_guard_kills() {
        let p = Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("no_x", parse("kind = 'X'").unwrap()).negation(),
                Step::new("b", parse("kind = 'B'").unwrap()),
            ],
            1_000,
        )
        .unwrap();
        let mut m = PatternMatcher::new(p.clone(), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "X", 0.0)).unwrap(); // guard hit
        assert!(m.push(&ev(3, "B", 2.0)).unwrap().is_empty());

        let mut m = PatternMatcher::new(p, &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "Y", 0.0)).unwrap(); // harmless
        assert_eq!(m.push(&ev(3, "B", 2.0)).unwrap().len(), 1);
    }

    #[test]
    fn optional_steps_may_be_skipped() {
        let p = Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("m", parse("kind = 'M'").unwrap()).optional(),
                Step::new("b", parse("kind = 'B'").unwrap()),
            ],
            1_000,
        )
        .unwrap();
        // Skipped: A then B directly.
        let mut m = PatternMatcher::new(p.clone(), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        let out = m.push(&ev(2, "B", 2.0)).unwrap();
        assert_eq!(out.len(), 1);
        // m_kind column is NULL.
        let m_kind = out[0].payload.get(4).unwrap();
        assert!(m_kind.is_null());

        // Taken: A M B.
        let mut m = PatternMatcher::new(p, &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "M", 5.0)).unwrap();
        let out = m.push(&ev(3, "B", 2.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(4), Some(&Value::from("M")));
    }

    #[test]
    fn kleene_counts_and_extends() {
        let p = Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()).one_or_more(),
                Step::new("b", parse("kind = 'B'").unwrap()),
            ],
            1_000,
        )
        .unwrap();
        let mut m = PatternMatcher::new(p, &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "A", 2.0)).unwrap();
        m.push(&ev(3, "A", 3.0)).unwrap();
        let out = m.push(&ev(4, "B", 9.0)).unwrap();
        // Greedy run absorbed all three A's; SkipTillNext also tracked the
        // shorter suffix runs started by later A's.
        assert!(!out.is_empty());
        // The first (longest) match carries count 3 and last A value 3.0.
        let p0 = &out[0].payload;
        let count_idx = out[0].schema.index_of("a_count").unwrap();
        let av_idx = out[0].schema.index_of("a_v").unwrap();
        let counts: Vec<i64> = out
            .iter()
            .map(|e| e.payload.get(count_idx).unwrap().as_int().unwrap())
            .collect();
        assert!(counts.contains(&3));
        let _ = (p0, av_idx);
    }

    #[test]
    fn pattern_validation() {
        assert!(Pattern::new(vec![], 100).is_err());
        assert!(Pattern::new(
            vec![Step::new("a", parse("kind = 'A'").unwrap())],
            0
        )
        .is_err());
        assert!(Pattern::new(
            vec![Step::new("a", parse("kind = 'A'").unwrap()).negation()],
            100
        )
        .is_err());
        assert!(Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("b", parse("kind = 'B'").unwrap())
                    .negation()
                    .optional(),
            ],
            100
        )
        .is_err());
    }

    #[test]
    fn naive_matcher_agrees_with_skip_till_any() {
        let pattern = seq_abc(500);
        let mut nfa =
            PatternMatcher::new(pattern.clone(), &schema(), SkipStrategy::SkipTillAny).unwrap();
        let mut naive = NaiveMatcher::new(&pattern, &schema()).unwrap();

        let mut state = 7u64;
        let mut nfa_total = 0u64;
        let mut naive_total = 0u64;
        for i in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let kind = ["A", "B", "C", "X"][(state % 4) as usize];
            let e = ev(i * 10, kind, 1.0);
            nfa_total += nfa.push(&e).unwrap().len() as u64;
            naive_total += naive.push(&e).unwrap();
        }
        assert!(nfa_total > 0, "workload produced no matches");
        assert_eq!(nfa_total, naive_total);
    }
}
