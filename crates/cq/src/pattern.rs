//! CEP pattern matching: SEQ patterns compiled to an NFA.
//!
//! A [`Pattern`] is an ordered list of [`Step`]s over one event schema,
//! with a `WITHIN` time bound. Steps may be:
//!
//! * plain — match exactly one event satisfying the predicate,
//! * `optional` — may be skipped,
//! * `kleene` — match one or more events (greedy),
//! * `negated` — a guard: no event satisfying the predicate may occur
//!   between the neighbouring matched steps; a guard hit kills the
//!   partial match.
//!
//! Three **skip strategies** control what happens to a partial match when
//! an event fails to advance it ([`SkipStrategy`]):
//! `StrictContiguity` kills it, `SkipTillNext` ignores the event,
//! `SkipTillAny` additionally *branches* when an event could either be
//! consumed or skipped — enumerating every matching subsequence (bounded
//! by `max_runs`).
//!
//! [`NaiveMatcher`] is the E6 baseline: it buffers the window and
//! enumerates subsequences by nested scanning — semantically equal to
//! `SkipTillAny` for plain SEQ patterns (property-tested), and
//! super-linearly slower.
//!
//! [`RevisablePatternMatcher`] wraps the NFA for out-of-order streams
//! (DESIGN.md D12): at the Watermark level it sorts events up to the
//! watermark before feeding the NFA (final, retraction-free output); at
//! the Speculative level it matches eagerly and, when a late event or a
//! retraction revises the input, replays its bounded history to emit
//! retractions for invalidated matches and inserts for new ones.

use std::collections::HashMap;
use std::sync::Arc;

use evdb_expr::{CompiledExpr, Expr};
use evdb_types::{
    DataType, Error, Event, EventId, FieldDef, Record, Result, Schema, TimestampMs, Value,
};

use crate::delta::ConsistencyLevel;
use crate::op::{OpStats, Operator};

/// One step of a pattern.
#[derive(Debug, Clone)]
pub struct Step {
    /// Step name; prefixes the step's columns in match output.
    pub name: String,
    /// Predicate over the input schema.
    pub predicate: Expr,
    /// May be skipped entirely.
    pub optional: bool,
    /// Matches one or more events (greedy).
    pub kleene: bool,
    /// Guard: events matching this predicate kill partial matches
    /// currently between the neighbouring steps.
    pub negated: bool,
}

impl Step {
    /// A plain step.
    pub fn new(name: impl Into<String>, predicate: Expr) -> Step {
        Step {
            name: name.into(),
            predicate,
            optional: false,
            kleene: false,
            negated: false,
        }
    }

    /// Make the step optional.
    pub fn optional(mut self) -> Step {
        self.optional = true;
        self
    }

    /// Make the step Kleene-plus.
    pub fn one_or_more(mut self) -> Step {
        self.kleene = true;
        self
    }

    /// Make the step a negation guard.
    pub fn negation(mut self) -> Step {
        self.negated = true;
        self
    }
}

/// A SEQ pattern with a WITHIN bound.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// The ordered steps.
    pub steps: Vec<Step>,
    /// Max distance (ms, event time) between the first and last matched
    /// event.
    pub within_ms: i64,
}

impl Pattern {
    /// Build a pattern; validates step structure.
    pub fn new(steps: Vec<Step>, within_ms: i64) -> Result<Pattern> {
        if steps.is_empty() {
            return Err(Error::Invalid("pattern needs at least one step".into()));
        }
        if within_ms <= 0 {
            return Err(Error::Invalid("WITHIN must be positive".into()));
        }
        if steps.iter().all(|s| s.negated || s.optional) {
            return Err(Error::Invalid(
                "pattern needs at least one mandatory positive step".into(),
            ));
        }
        for s in &steps {
            if s.negated && (s.optional || s.kleene) {
                return Err(Error::Invalid(format!(
                    "step '{}': negation cannot combine with optional/kleene",
                    s.name
                )));
            }
        }
        if steps.first().map(|s| s.negated).unwrap_or(false) {
            return Err(Error::Invalid(
                "pattern cannot start with a negation".into(),
            ));
        }
        Ok(Pattern { steps, within_ms })
    }
}

/// Skip strategy (match selection policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipStrategy {
    /// Every event must advance a partial match or it dies.
    StrictContiguity,
    /// Irrelevant events are ignored; each step consumes the first event
    /// that matches it.
    SkipTillNext,
    /// Like SkipTillNext, but also branch on every consumable event —
    /// enumerates all matching subsequences.
    SkipTillAny,
}

#[derive(Debug, Clone)]
struct Binding {
    step: usize,
    last: Record,
    count: u32,
    last_ts: TimestampMs,
}

#[derive(Debug, Clone)]
struct Run {
    /// Index of the next unmatched (non-guard) step to try.
    pos: usize,
    /// True when the previously matched step was kleene and may absorb
    /// more events.
    kleene_open: bool,
    started_at: TimestampMs,
    bindings: Vec<Binding>,
}

/// The NFA pattern matcher. Also usable as a pipeline [`Operator`].
pub struct PatternMatcher {
    steps: Vec<CompiledStep>,
    within_ms: i64,
    strategy: SkipStrategy,
    runs: Vec<Run>,
    input_width: usize,
    out_schema: Arc<Schema>,
    emit_seq: u64,
    /// Runs dropped because `max_runs` was hit (observability).
    pub overflow_drops: u64,
    /// Cap on simultaneous partial matches.
    pub max_runs: usize,
    label: String,
}

struct CompiledStep {
    meta: Step,
    /// Step guard, compiled to bytecode at pattern-compile time.
    pred: CompiledExpr,
}

impl PatternMatcher {
    /// Compile a pattern against the input schema.
    pub fn new(
        pattern: Pattern,
        input: &Arc<Schema>,
        strategy: SkipStrategy,
    ) -> Result<PatternMatcher> {
        let mut steps = Vec::with_capacity(pattern.steps.len());
        for s in &pattern.steps {
            steps.push(CompiledStep {
                pred: CompiledExpr::compile(&s.predicate.bind_predicate(input)?),
                meta: s.clone(),
            });
        }
        // Output schema: start/end timestamps, then per positive step the
        // input fields prefixed with the step name (last matched event),
        // plus a count column for kleene steps.
        let mut fields = vec![
            FieldDef::required("start_ts", DataType::Timestamp),
            FieldDef::required("end_ts", DataType::Timestamp),
        ];
        for s in &pattern.steps {
            if s.negated {
                continue;
            }
            for f in input.fields() {
                fields.push(FieldDef::nullable(
                    format!("{}_{}", s.name, f.name),
                    f.dtype,
                ));
            }
            if s.kleene {
                fields.push(FieldDef::required(
                    format!("{}_count", s.name),
                    DataType::Int,
                ));
            }
        }
        Ok(PatternMatcher {
            steps,
            within_ms: pattern.within_ms,
            strategy,
            runs: Vec::new(),
            input_width: input.len(),
            out_schema: Schema::new(fields)?,
            emit_seq: 0,
            overflow_drops: 0,
            max_runs: 10_000,
            label: "pattern".to_string(),
        })
    }

    /// Live partial matches (observability / leak tests).
    pub fn active_runs(&self) -> usize {
        self.runs.len()
    }

    /// Feed one event; returns completed matches.
    pub fn push(&mut self, event: &Event) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        self.on_event(event, &mut out)?;
        Ok(out)
    }

    /// Steps reachable from `pos` (skipping optionals), with the guard
    /// steps crossed to reach each.
    fn reachable(&self, pos: usize) -> Vec<(usize, Vec<usize>)> {
        let mut out = Vec::new();
        let mut guards = Vec::new();
        let mut j = pos;
        while j < self.steps.len() {
            let s = &self.steps[j].meta;
            if s.negated {
                guards.push(j);
                j += 1;
                continue;
            }
            out.push((j, guards.clone()));
            if s.optional {
                j += 1;
            } else {
                break;
            }
        }
        out
    }

    /// Active guards for a waiting run: negation steps crossed before any
    /// reachable positive step.
    fn active_guards(&self, pos: usize) -> Vec<usize> {
        let mut guards = Vec::new();
        let mut j = pos;
        while j < self.steps.len() {
            let s = &self.steps[j].meta;
            if s.negated {
                guards.push(j);
                j += 1;
            } else if s.optional {
                j += 1;
            } else {
                break;
            }
        }
        guards
    }

    fn emit_match(&mut self, run: &Run, end_ts: TimestampMs, out: &mut Vec<Event>) {
        let mut values = vec![
            Value::Timestamp(run.started_at),
            Value::Timestamp(end_ts),
        ];
        for (i, cs) in self.steps.iter().enumerate() {
            if cs.meta.negated {
                continue;
            }
            match run.bindings.iter().find(|b| b.step == i) {
                Some(b) => {
                    for v in b.last.values() {
                        values.push(v.clone());
                    }
                    if cs.meta.kleene {
                        values.push(Value::Int(b.count as i64));
                    }
                }
                None => {
                    // Skipped optional step → NULL columns.
                    for _ in 0..self.input_width {
                        values.push(Value::Null);
                    }
                    if cs.meta.kleene {
                        values.push(Value::Int(0));
                    }
                }
            }
        }
        self.emit_seq += 1;
        out.push(Event::new(
            EventId(self.emit_seq),
            "pattern",
            end_ts,
            Record::new(values),
            Arc::clone(&self.out_schema),
        ));
    }
}

impl Operator for PatternMatcher {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        let ts = event.timestamp;
        // Expire runs beyond the WITHIN horizon.
        let within = self.within_ms;
        self.runs.retain(|r| ts.since(r.started_at) <= within);

        // Seed a fresh run so the event can start a new match.
        let mut next_runs: Vec<Run> = Vec::with_capacity(self.runs.len() + 1);
        let mut candidates: Vec<Run> = std::mem::take(&mut self.runs);
        candidates.push(Run {
            pos: 0,
            kleene_open: false,
            started_at: ts,
            bindings: Vec::new(),
        });

        let mut completed: Vec<Run> = Vec::new();
        for run in candidates {
            let is_seed = run.bindings.is_empty();
            // 1. Guard check (only meaningful for in-flight runs).
            if !is_seed {
                let guards = self.active_guards(run.pos);
                let mut killed = false;
                for g in guards {
                    if self.steps[g].pred.matches(&event.payload)? {
                        killed = true;
                        break;
                    }
                }
                if killed {
                    continue; // run dies
                }
            }

            // 2. Kleene continuation: previous step may absorb the event.
            let mut consumed_by_kleene = false;
            if run.kleene_open {
                let prev = run.pos - 1;
                if self.steps[prev].pred.matches(&event.payload)? {
                    consumed_by_kleene = true;
                    let mut extended = run.clone();
                    let b = extended
                        .bindings
                        .iter_mut()
                        .rev()
                        .find(|b| b.step == prev)
                        .expect("kleene binding exists");
                    b.last = event.payload.clone();
                    b.last_ts = ts;
                    b.count += 1;
                    next_runs.push(extended);
                    // With SkipTillAny, also branch: a run that does NOT
                    // absorb this event survives below.
                }
            }

            // 3. Try to advance to a reachable step.
            let mut advanced = false;
            for (idx, _) in self.reachable(run.pos) {
                if self.steps[idx].pred.matches(&event.payload)? {
                    advanced = true;
                    let mut adv = run.clone();
                    adv.bindings.push(Binding {
                        step: idx,
                        last: event.payload.clone(),
                        count: 1,
                        last_ts: ts,
                    });
                    adv.pos = idx + 1;
                    adv.kleene_open = self.steps[idx].meta.kleene;
                    if is_seed {
                        adv.started_at = ts;
                    }
                    // Completed? (No mandatory positive steps remain.)
                    let rest_all_skippable = (adv.pos..self.steps.len()).all(|j| {
                        self.steps[j].meta.negated || self.steps[j].meta.optional
                    }) && !adv.kleene_open;
                    let could_complete = (adv.pos..self.steps.len())
                        .all(|j| self.steps[j].meta.negated || self.steps[j].meta.optional);
                    if rest_all_skippable {
                        completed.push(adv);
                    } else if could_complete && adv.kleene_open {
                        // A kleene step at the end: the run is complete
                        // but may also keep absorbing. Emit now AND keep
                        // the run only under SkipTillAny (all matches);
                        // under SkipTillNext keep absorbing greedily and
                        // emit only when the run dies? Simplest sound
                        // choice: emit the minimal match, and keep the
                        // run open for extension under SkipTillAny.
                        completed.push(adv.clone());
                        if self.strategy == SkipStrategy::SkipTillAny {
                            next_runs.push(adv);
                        }
                    } else {
                        next_runs.push(adv);
                    }
                    break; // advance to the first matching reachable step
                }
            }

            // 4. Decide whether the un-advanced original survives.
            let survives = if is_seed {
                false // seeds only live if they matched
            } else {
                match self.strategy {
                    // Strict: the event either extended/advanced this run
                    // (the successor was pushed) or the run dies.
                    SkipStrategy::StrictContiguity => false,
                    SkipStrategy::SkipTillNext => !advanced && !consumed_by_kleene,
                    SkipStrategy::SkipTillAny => true,
                }
            };
            if survives {
                next_runs.push(run);
            }
        }

        // Emit matches in a deterministic order (by start then bindings).
        for run in &completed {
            let end_ts = run
                .bindings
                .iter()
                .map(|b| b.last_ts)
                .max()
                .unwrap_or(ts);
            self.emit_match(run, end_ts, out);
        }

        if next_runs.len() > self.max_runs {
            self.overflow_drops += (next_runs.len() - self.max_runs) as u64;
            next_runs.truncate(self.max_runs);
        }
        self.runs = next_runs;
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, _out: &mut Vec<Event>) -> Result<()> {
        let within = self.within_ms;
        self.runs.retain(|r| wm.since(r.started_at) <= within);
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        Arc::clone(&self.out_schema)
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn state_size(&self) -> usize {
        self.runs.len()
    }
}

/// Out-of-order-safe pattern matching with per-query consistency
/// (DESIGN.md D12).
///
/// The core [`PatternMatcher`] is strictly arrival-ordered: feeding it a
/// shuffled stream produces different matches. This wrapper restores
/// event-time semantics:
///
/// * [`ConsistencyLevel::Watermark`] — events are buffered and released
///   to the NFA in `(timestamp, id)` order once the watermark passes
///   them. Output is final; no retractions.
/// * [`ConsistencyLevel::Speculative`] — events are matched eagerly. A
///   late (out-of-order) event or a retraction of a constituent event
///   triggers a replay of the bounded history (events newer than
///   `watermark − within`): matches that vanish are retracted, matches
///   that appear are inserted. Matches ending at or before the watermark
///   are final and never revised.
pub struct RevisablePatternMatcher {
    pattern: Pattern,
    input: Arc<Schema>,
    strategy: SkipStrategy,
    consistency: ConsistencyLevel,
    /// The live NFA; invariant: its state equals a fresh NFA fed
    /// `history` in `(timestamp, id)` order.
    inner: PatternMatcher,
    /// Speculative: net insert history within the revision horizon.
    /// Watermark: events buffered until the watermark releases them.
    history: Vec<Event>,
    /// Speculative: emitted matches not yet final (subject to retraction).
    live: Vec<Event>,
    /// Finality horizon (highest watermark seen).
    final_wm: i64,
    emit_seq: u64,
    /// Events beyond the finality horizon, dropped (D9).
    pub late_events: u64,
    /// Out-of-order events / retractions admitted as revisions.
    pub late_admitted: u64,
    /// Retraction matches emitted.
    pub retractions: u64,
    label: String,
}

impl RevisablePatternMatcher {
    /// Compile the pattern; `consistency` picks the out-of-order policy.
    pub fn new(
        pattern: Pattern,
        input: &Arc<Schema>,
        strategy: SkipStrategy,
        consistency: ConsistencyLevel,
    ) -> Result<RevisablePatternMatcher> {
        let inner = PatternMatcher::new(pattern.clone(), input, strategy)?;
        Ok(RevisablePatternMatcher {
            pattern,
            input: Arc::clone(input),
            strategy,
            consistency,
            inner,
            history: Vec::new(),
            live: Vec::new(),
            final_wm: i64::MIN,
            emit_seq: 0,
            late_events: 0,
            late_admitted: 0,
            retractions: 0,
            label: "revisable_pattern".to_string(),
        })
    }

    /// The configured consistency level.
    pub fn consistency(&self) -> ConsistencyLevel {
        self.consistency
    }

    /// Feed one event; returns emitted deltas.
    pub fn push(&mut self, event: &Event) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        self.on_event(event, &mut out)?;
        Ok(out)
    }

    /// Deliver a watermark; returns emitted (now final) matches.
    pub fn advance_watermark(&mut self, wm: TimestampMs) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        self.on_watermark(wm, &mut out)?;
        Ok(out)
    }

    fn fresh_id(&mut self, mut e: Event) -> Event {
        self.emit_seq += 1;
        e.id = EventId(self.emit_seq);
        e
    }

    /// Replay the sorted history through a fresh NFA and reconcile the
    /// resulting match multiset with what was already emitted.
    fn rebuild(&mut self, out: &mut Vec<Event>) -> Result<()> {
        self.history.sort_by_key(|e| (e.timestamp, e.id));
        let mut fresh = PatternMatcher::new(self.pattern.clone(), &self.input, self.strategy)?;
        fresh.max_runs = self.inner.max_runs;
        let mut replayed = Vec::new();
        for e in &self.history {
            replayed.extend(fresh.push(e)?);
        }
        self.inner = fresh;
        // Matches ending at or before the watermark are final: they were
        // either already emitted (and pruned from `live`) or can no
        // longer be revised — exclude them from reconciliation.
        replayed.retain(|m| m.timestamp.0 > self.final_wm);

        // Multiset diff by payload (the payload embeds start/end bounds).
        let key = |e: &Event| e.payload.to_string();
        let mut counts: HashMap<String, usize> = HashMap::new();
        for m in &replayed {
            *counts.entry(key(m)).or_default() += 1;
        }
        // Old matches still produced survive; the rest are retracted.
        let mut survivors = Vec::new();
        for old in std::mem::take(&mut self.live) {
            match counts.get_mut(&key(&old)) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    survivors.push(old);
                }
                _ => {
                    self.retractions += 1;
                    let r = old.to_retraction();
                    out.push(self.fresh_id(r));
                }
            }
        }
        // New matches beyond the old multiset are fresh inserts.
        for m in replayed {
            let c = counts.get_mut(&key(&m)).expect("counted above");
            if *c > 0 {
                *c -= 1;
                let e = self.fresh_id(m);
                survivors.push(e.clone());
                out.push(e);
            }
        }
        self.live = survivors;
        Ok(())
    }
}

impl Operator for RevisablePatternMatcher {
    fn on_event(&mut self, event: &Event, out: &mut Vec<Event>) -> Result<()> {
        match self.consistency {
            ConsistencyLevel::Watermark => {
                if event.timestamp.0 <= self.final_wm {
                    self.late_events += 1;
                    return Ok(());
                }
                if event.is_retraction() {
                    // The original insert is still buffered (anything
                    // released is ≤ the watermark, where retractions are
                    // dropped as late) — cancel it in place.
                    if let Some(i) = self.history.iter().position(|e| {
                        e.timestamp == event.timestamp
                            && e.id == event.id
                            && e.payload == event.payload
                    }) {
                        self.history.remove(i);
                    }
                } else {
                    self.history.push(event.clone());
                }
            }
            ConsistencyLevel::Speculative => {
                // An event can only affect matches ending after itself
                // and within `within` of it; beyond that it is final.
                if event.timestamp.0.saturating_add(self.pattern.within_ms) <= self.final_wm {
                    self.late_events += 1;
                    return Ok(());
                }
                let in_order = !event.is_retraction()
                    && self
                        .history
                        .last()
                        .is_none_or(|l| (l.timestamp, l.id) <= (event.timestamp, event.id));
                if in_order {
                    // Fast path: the NFA state already reflects every
                    // earlier event, so feed it incrementally.
                    self.history.push(event.clone());
                    let matches = self.inner.push(event)?;
                    for m in matches {
                        let e = self.fresh_id(m);
                        self.live.push(e.clone());
                        out.push(e);
                    }
                } else {
                    self.late_admitted += 1;
                    if event.is_retraction() {
                        match self.history.iter().position(|e| {
                            e.timestamp == event.timestamp
                                && e.id == event.id
                                && e.payload == event.payload
                        }) {
                            Some(i) => {
                                self.history.remove(i);
                            }
                            // Unknown (or already-final) event: no-op.
                            None => return Ok(()),
                        }
                    } else {
                        self.history.push(event.clone());
                    }
                    self.rebuild(out)?;
                }
            }
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: TimestampMs, out: &mut Vec<Event>) -> Result<()> {
        self.final_wm = self.final_wm.max(wm.0);
        match self.consistency {
            ConsistencyLevel::Watermark => {
                // Release buffered events ≤ wm to the NFA in event-time
                // order; their matches are final.
                self.history
                    .sort_by_key(|e| (e.timestamp, e.id));
                let rest = self
                    .history
                    .iter()
                    .position(|e| e.timestamp.0 > wm.0)
                    .unwrap_or(self.history.len());
                let release: Vec<Event> = self.history.drain(..rest).collect();
                for e in release {
                    for m in self.inner.push(&e)? {
                        let e = self.fresh_id(m);
                        out.push(e);
                    }
                }
                self.inner.on_watermark(wm, out)?;
            }
            ConsistencyLevel::Speculative => {
                // Finalize matches ending ≤ wm and shed history that can
                // no longer participate in a revisable match.
                self.live.retain(|m| m.timestamp.0 > wm.0);
                let horizon = wm.0.saturating_sub(self.pattern.within_ms);
                self.history.retain(|e| e.timestamp.0 >= horizon);
                self.inner.on_watermark(wm, out)?;
            }
        }
        Ok(())
    }

    fn output_schema(&self) -> Arc<Schema> {
        self.inner.output_schema()
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn state_size(&self) -> usize {
        self.history.len() + self.live.len() + self.inner.state_size()
    }

    fn op_stats(&self) -> OpStats {
        OpStats {
            late_events: self.late_events,
            late_admitted: self.late_admitted,
            pane_reopens: 0,
            retractions: self.retractions,
        }
    }
}

/// E6 baseline: enumerate subsequences by nested scanning over a buffer.
/// Supports plain SEQ patterns (no optional/kleene/negation) with
/// `SkipTillAny` semantics.
pub struct NaiveMatcher {
    preds: Vec<CompiledExpr>,
    within_ms: i64,
    buffer: Vec<(TimestampMs, Record)>,
}

impl NaiveMatcher {
    /// Compile the baseline matcher.
    pub fn new(pattern: &Pattern, input: &Arc<Schema>) -> Result<NaiveMatcher> {
        if pattern
            .steps
            .iter()
            .any(|s| s.optional || s.kleene || s.negated)
        {
            return Err(Error::Invalid(
                "naive matcher supports plain SEQ patterns only".into(),
            ));
        }
        Ok(NaiveMatcher {
            preds: pattern
                .steps
                .iter()
                .map(|s| Ok(CompiledExpr::compile(&s.predicate.bind_predicate(input)?)))
                .collect::<Result<_>>()?,
            within_ms: pattern.within_ms,
            buffer: Vec::new(),
        })
    }

    /// Feed one event; returns the number of completed matches ending at
    /// this event (the count is what E6 compares — materializing records
    /// would only slow the baseline further).
    pub fn push(&mut self, event: &Event) -> Result<u64> {
        let ts = event.timestamp;
        let horizon = ts.minus(self.within_ms);
        self.buffer.retain(|(t, _)| *t >= horizon);
        self.buffer.push((ts, event.payload.clone()));

        // The new event can only complete matches as the LAST step.
        let k = self.preds.len();
        if !self.preds[k - 1].matches(&event.payload)? {
            return Ok(0);
        }
        // Count subsequences for steps 0..k-1 ending strictly before the
        // last buffer element, with dynamic counting (still O(n·k) per
        // event — the quadratic blowup is over the window, which is the
        // point of the baseline).
        let n = self.buffer.len();
        // ways[j] = number of ways to match steps 0..=j using events seen
        // so far (prefix), constrained to the within window from each
        // start — approximated by the buffer horizon (events outside the
        // window were dropped above).
        let mut ways = vec![0u64; k];
        for i in 0..n - 1 {
            let rec = &self.buffer[i].1;
            for j in (0..k - 1).rev() {
                if self.preds[j].matches(rec)? {
                    let add = if j == 0 { 1 } else { ways[j - 1] };
                    ways[j] += add;
                }
            }
        }
        Ok(if k == 1 { 1 } else { ways[k - 2] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evdb_expr::parse;

    fn schema() -> Arc<Schema> {
        Schema::of(&[("kind", DataType::Str), ("v", DataType::Float)])
    }

    fn ev(ts: i64, kind: &str, v: f64) -> Event {
        Event::new(
            EventId(ts as u64),
            "s",
            TimestampMs(ts),
            Record::from_iter([Value::from(kind), Value::Float(v)]),
            schema(),
        )
    }

    fn seq_abc(within: i64) -> Pattern {
        Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("b", parse("kind = 'B'").unwrap()),
                Step::new("c", parse("kind = 'C'").unwrap()),
            ],
            within,
        )
        .unwrap()
    }

    #[test]
    fn basic_seq_skip_till_next() {
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        assert!(m.push(&ev(1, "A", 1.0)).unwrap().is_empty());
        assert!(m.push(&ev(2, "X", 0.0)).unwrap().is_empty()); // ignored
        assert!(m.push(&ev(3, "B", 2.0)).unwrap().is_empty());
        let matches = m.push(&ev(4, "C", 3.0)).unwrap();
        assert_eq!(matches.len(), 1);
        let p = &matches[0].payload;
        assert_eq!(p.get(0), Some(&Value::Timestamp(TimestampMs(1))));
        assert_eq!(p.get(1), Some(&Value::Timestamp(TimestampMs(4))));
        // a_kind, a_v, b_kind, b_v, c_kind, c_v
        assert_eq!(p.get(2), Some(&Value::from("A")));
        assert_eq!(p.get(5), Some(&Value::Float(2.0)));
        assert_eq!(p.get(6), Some(&Value::from("C")));
    }

    #[test]
    fn strict_contiguity_requires_adjacency() {
        let mut m = PatternMatcher::new(
            seq_abc(1_000),
            &schema(),
            SkipStrategy::StrictContiguity,
        )
        .unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "X", 0.0)).unwrap(); // kills the run
        m.push(&ev(3, "B", 2.0)).unwrap();
        assert!(m.push(&ev(4, "C", 3.0)).unwrap().is_empty());

        let mut m = PatternMatcher::new(
            seq_abc(1_000),
            &schema(),
            SkipStrategy::StrictContiguity,
        )
        .unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 2.0)).unwrap();
        assert_eq!(m.push(&ev(3, "C", 3.0)).unwrap().len(), 1);
    }

    #[test]
    fn skip_till_any_enumerates_subsequences() {
        // Both strategies start one run per candidate first event; they
        // differ on *mid-pattern* choices. With A B B C, the B step can
        // bind to either B under SkipTillAny (2 matches) but only to the
        // first B under SkipTillNext (1 match).
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillAny).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 1.0)).unwrap();
        m.push(&ev(3, "B", 2.0)).unwrap();
        let matches = m.push(&ev(4, "C", 4.0)).unwrap();
        assert_eq!(matches.len(), 2);

        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 1.0)).unwrap();
        m.push(&ev(3, "B", 2.0)).unwrap();
        assert_eq!(m.push(&ev(4, "C", 4.0)).unwrap().len(), 1);

        // Two candidate first events start two runs under either strategy.
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "A", 2.0)).unwrap();
        m.push(&ev(3, "B", 3.0)).unwrap();
        assert_eq!(m.push(&ev(4, "C", 4.0)).unwrap().len(), 2);
    }

    #[test]
    fn within_bound_expires_runs() {
        let mut m =
            PatternMatcher::new(seq_abc(100), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(50, "B", 2.0)).unwrap();
        assert!(m.push(&ev(200, "C", 3.0)).unwrap().is_empty()); // expired
        assert_eq!(m.active_runs(), 0);
    }

    #[test]
    fn negation_guard_kills() {
        let p = Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("no_x", parse("kind = 'X'").unwrap()).negation(),
                Step::new("b", parse("kind = 'B'").unwrap()),
            ],
            1_000,
        )
        .unwrap();
        let mut m = PatternMatcher::new(p.clone(), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "X", 0.0)).unwrap(); // guard hit
        assert!(m.push(&ev(3, "B", 2.0)).unwrap().is_empty());

        let mut m = PatternMatcher::new(p, &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "Y", 0.0)).unwrap(); // harmless
        assert_eq!(m.push(&ev(3, "B", 2.0)).unwrap().len(), 1);
    }

    #[test]
    fn optional_steps_may_be_skipped() {
        let p = Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("m", parse("kind = 'M'").unwrap()).optional(),
                Step::new("b", parse("kind = 'B'").unwrap()),
            ],
            1_000,
        )
        .unwrap();
        // Skipped: A then B directly.
        let mut m = PatternMatcher::new(p.clone(), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        let out = m.push(&ev(2, "B", 2.0)).unwrap();
        assert_eq!(out.len(), 1);
        // m_kind column is NULL.
        let m_kind = out[0].payload.get(4).unwrap();
        assert!(m_kind.is_null());

        // Taken: A M B.
        let mut m = PatternMatcher::new(p, &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "M", 5.0)).unwrap();
        let out = m.push(&ev(3, "B", 2.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload.get(4), Some(&Value::from("M")));
    }

    #[test]
    fn kleene_counts_and_extends() {
        let p = Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()).one_or_more(),
                Step::new("b", parse("kind = 'B'").unwrap()),
            ],
            1_000,
        )
        .unwrap();
        let mut m = PatternMatcher::new(p, &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "A", 2.0)).unwrap();
        m.push(&ev(3, "A", 3.0)).unwrap();
        let out = m.push(&ev(4, "B", 9.0)).unwrap();
        // Greedy run absorbed all three A's; SkipTillNext also tracked the
        // shorter suffix runs started by later A's.
        assert!(!out.is_empty());
        // The first (longest) match carries count 3 and last A value 3.0.
        let p0 = &out[0].payload;
        let count_idx = out[0].schema.index_of("a_count").unwrap();
        let av_idx = out[0].schema.index_of("a_v").unwrap();
        let counts: Vec<i64> = out
            .iter()
            .map(|e| e.payload.get(count_idx).unwrap().as_int().unwrap())
            .collect();
        assert!(counts.contains(&3));
        let _ = (p0, av_idx);
    }

    #[test]
    fn pattern_validation() {
        assert!(Pattern::new(vec![], 100).is_err());
        assert!(Pattern::new(
            vec![Step::new("a", parse("kind = 'A'").unwrap())],
            0
        )
        .is_err());
        assert!(Pattern::new(
            vec![Step::new("a", parse("kind = 'A'").unwrap()).negation()],
            100
        )
        .is_err());
        assert!(Pattern::new(
            vec![
                Step::new("a", parse("kind = 'A'").unwrap()),
                Step::new("b", parse("kind = 'B'").unwrap())
                    .negation()
                    .optional(),
            ],
            100
        )
        .is_err());
    }

    // ---- watermark behavior of the core NFA (satellite: pins the
    // previously-untested on_watermark path) ----

    #[test]
    fn watermark_prunes_timed_out_partial_runs_silently() {
        let mut m =
            PatternMatcher::new(seq_abc(100), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(50, "B", 2.0)).unwrap();
        assert_eq!(m.active_runs(), 1);
        // The watermark passes the WITHIN horizon: the partial match can
        // never complete. It is pruned and emits NOTHING — timed-out
        // partials are not matches.
        let mut out = Vec::new();
        m.on_watermark(TimestampMs(500), &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.active_runs(), 0);
        // Even a C now arrives too late to resurrect it.
        assert!(m.push(&ev(501, "C", 3.0)).unwrap().is_empty());
    }

    #[test]
    fn watermark_keeps_runs_inside_the_within_bound() {
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(100, "A", 1.0)).unwrap();
        let mut out = Vec::new();
        m.on_watermark(TimestampMs(900), &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(m.active_runs(), 1); // 900 − 100 ≤ 1000: still viable
        m.push(&ev(950, "B", 2.0)).unwrap();
        assert_eq!(m.push(&ev(1_000, "C", 3.0)).unwrap().len(), 1);
    }

    #[test]
    fn completed_match_emits_exactly_once_across_watermarks() {
        let mut m =
            PatternMatcher::new(seq_abc(1_000), &schema(), SkipStrategy::SkipTillNext).unwrap();
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 2.0)).unwrap();
        let matches = m.push(&ev(3, "C", 3.0)).unwrap();
        assert_eq!(matches.len(), 1); // emitted at completion…
        let mut out = Vec::new();
        m.on_watermark(TimestampMs(5_000), &mut out).unwrap();
        m.on_watermark(TimestampMs(10_000), &mut out).unwrap();
        assert!(out.is_empty()); // …and never again
    }

    // ---- revisable wrapper (D12) ----

    fn rev(
        within: i64,
        strategy: SkipStrategy,
        level: ConsistencyLevel,
    ) -> RevisablePatternMatcher {
        RevisablePatternMatcher::new(seq_abc(within), &schema(), strategy, level).unwrap()
    }

    #[test]
    fn watermark_level_reorders_before_matching() {
        let mut m = rev(1_000, SkipStrategy::SkipTillNext, ConsistencyLevel::Watermark);
        // Arrival order B, A, C — event-time order A, B, C.
        assert!(m.push(&ev(2, "B", 2.0)).unwrap().is_empty());
        assert!(m.push(&ev(1, "A", 1.0)).unwrap().is_empty());
        assert!(m.push(&ev(3, "C", 3.0)).unwrap().is_empty());
        let out = m.advance_watermark(TimestampMs(10)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.iter().all(|e| !e.is_retraction()));
        // Late event behind the watermark is dropped and counted.
        assert!(m.push(&ev(5, "A", 9.0)).unwrap().is_empty());
        assert_eq!(m.late_events, 1);
    }

    #[test]
    fn speculative_level_retracts_matches_invalidated_by_retraction() {
        let mut m = rev(1_000, SkipStrategy::SkipTillNext, ConsistencyLevel::Speculative);
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 2.0)).unwrap();
        let out = m.push(&ev(3, "C", 3.0)).unwrap();
        assert_eq!(out.len(), 1); // speculative match emitted immediately
        // The B is revised away: the match loses a constituent event.
        let deltas = m.push(&ev(2, "B", 2.0).to_retraction()).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].is_retraction());
        assert_eq!(deltas[0].payload, out[0].payload);
        assert_eq!(m.retractions, 1);
        assert_eq!(m.op_stats().retractions, 1);
    }

    #[test]
    fn speculative_level_revises_on_late_events() {
        let mut m = rev(1_000, SkipStrategy::SkipTillNext, ConsistencyLevel::Speculative);
        m.push(&ev(10, "A", 1.0)).unwrap();
        let out = m.push(&ev(30, "C", 3.0)).unwrap();
        assert!(out.is_empty()); // no B yet
        // The missing B arrives late → the match now exists.
        let deltas = m.push(&ev(20, "B", 2.0)).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].is_retraction());
        assert_eq!(m.late_admitted, 1);
        // Convergence: same match an in-order run would produce.
        let mut ordered = rev(1_000, SkipStrategy::SkipTillNext, ConsistencyLevel::Speculative);
        ordered.push(&ev(10, "A", 1.0)).unwrap();
        ordered.push(&ev(20, "B", 2.0)).unwrap();
        let expect = ordered.push(&ev(30, "C", 3.0)).unwrap();
        assert_eq!(deltas[0].payload, expect[0].payload);
    }

    #[test]
    fn speculative_finalized_matches_survive_replay_unrepeated() {
        let mut m = rev(100, SkipStrategy::SkipTillNext, ConsistencyLevel::Speculative);
        m.push(&ev(1, "A", 1.0)).unwrap();
        m.push(&ev(2, "B", 2.0)).unwrap();
        assert_eq!(m.push(&ev(3, "C", 3.0)).unwrap().len(), 1);
        // Watermark finalizes the match and sheds history.
        assert!(m.advance_watermark(TimestampMs(200)).unwrap().is_empty());
        assert_eq!(m.state_size(), 0);
        // A late revision attempt beyond finality is dropped, NOT replayed
        // (a replay would re-emit the finalized match).
        assert!(m.push(&ev(2, "B", 2.0).to_retraction()).unwrap().is_empty());
        assert_eq!(m.late_events, 1);
    }

    #[test]
    fn naive_matcher_agrees_with_skip_till_any() {
        let pattern = seq_abc(500);
        let mut nfa =
            PatternMatcher::new(pattern.clone(), &schema(), SkipStrategy::SkipTillAny).unwrap();
        let mut naive = NaiveMatcher::new(&pattern, &schema()).unwrap();

        let mut state = 7u64;
        let mut nfa_total = 0u64;
        let mut naive_total = 0u64;
        for i in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let kind = ["A", "B", "C", "X"][(state % 4) as usize];
            let e = ev(i * 10, kind, 1.0);
            nfa_total += nfa.push(&e).unwrap().len() as u64;
            naive_total += naive.push(&e).unwrap();
        }
        assert!(nfa_total > 0, "workload produced no matches");
        assert_eq!(nfa_total, naive_total);
    }
}
